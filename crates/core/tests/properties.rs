//! Property-based tests of the CMD kernel's core invariants:
//!
//! 1. **Atomicity** — an aborted rule leaves no trace, no matter where in
//!    its body the guard failed.
//! 2. **One-rule-at-a-time semantics** — a cycle's net effect on `Ehr`
//!    state equals executing exactly the fired rules sequentially.
//! 3. **FIFO conformance** — each FIFO flavor refines a simple queue model
//!    under arbitrary legal operation sequences.
//! 4. **Conflict-matrix consistency** — builders always produce symmetric
//!    matrices, and CM enforcement never lets a forbidden pair share a
//!    cycle.

use cmd_core::cm::Rel;
use cmd_core::prelude::*;
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// 1. Atomicity
// ---------------------------------------------------------------------------

proptest! {
    /// A rule that writes a random subset of cells and then stalls must
    /// leave every cell untouched.
    #[test]
    fn aborted_rules_leave_no_trace(
        writes in proptest::collection::vec((0usize..8, any::<u64>()), 0..16),
        fail_at in 0usize..16,
    ) {
        let clk = Clock::new();
        let cells: Vec<Ehr<u64>> = (0..8).map(|i| Ehr::new(&clk, i as u64)).collect();
        let before: Vec<u64> = cells.iter().map(Ehr::read).collect();

        clk.begin_rule();
        for (k, (i, v)) in writes.iter().enumerate() {
            if k == fail_at {
                break;
            }
            cells[*i].write(*v);
        }
        clk.abort_rule();

        let after: Vec<u64> = cells.iter().map(Ehr::read).collect();
        prop_assert_eq!(before, after);
    }

    /// Mixed commit/abort sequences: only committed rules' writes survive.
    #[test]
    fn only_committed_writes_survive(
        ops in proptest::collection::vec((0usize..4, any::<u64>(), any::<bool>()), 1..24),
    ) {
        let clk = Clock::new();
        let cells: Vec<Ehr<u64>> = (0..4).map(|_| Ehr::new(&clk, 0)).collect();
        let mut model = [0u64; 4];
        for (i, v, commit) in &ops {
            clk.begin_rule();
            cells[*i].write(*v);
            if *commit {
                clk.commit_rule();
                model[*i] = *v;
            } else {
                clk.abort_rule();
            }
        }
        clk.end_cycle();
        for (i, m) in model.iter().enumerate() {
            prop_assert_eq!(cells[i].read(), *m);
        }
    }
}

// ---------------------------------------------------------------------------
// 2. One-rule-at-a-time semantics
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
enum RuleKind {
    AddTo(usize, u64),
    CopyThenBump(usize, usize),
    GuardedDouble(usize, u64),
}

fn rule_kind() -> impl Strategy<Value = RuleKind> {
    prop_oneof![
        (0usize..4, 1u64..100).prop_map(|(i, v)| RuleKind::AddTo(i, v)),
        (0usize..4, 0usize..4).prop_map(|(a, b)| RuleKind::CopyThenBump(a, b)),
        (0usize..4, 0u64..50).prop_map(|(i, t)| RuleKind::GuardedDouble(i, t)),
    ]
}

fn apply_kind(k: RuleKind, state: &mut [u64; 4]) -> bool {
    match k {
        RuleKind::AddTo(i, v) => {
            state[i] = state[i].wrapping_add(v);
            true
        }
        RuleKind::CopyThenBump(a, b) => {
            state[a] = state[b].wrapping_add(1);
            true
        }
        RuleKind::GuardedDouble(i, threshold) => {
            if state[i] < threshold {
                return false; // guard fails: no effect
            }
            state[i] = state[i].wrapping_mul(2);
            true
        }
    }
}

proptest! {
    /// Running a schedule of random rules for several cycles produces the
    /// same state as applying the rules one-by-one (in schedule order,
    /// skipping stalled ones) — the paper's central semantic claim.
    #[test]
    fn cycles_linearize_to_sequential_rule_execution(
        kinds in proptest::collection::vec(rule_kind(), 1..8),
        cycles in 1u64..6,
    ) {
        let clk = Clock::new();
        struct St {
            cells: Vec<Ehr<u64>>,
        }
        let st = St {
            cells: (0..4).map(|i| Ehr::new(&clk, 10 + i as u64)).collect(),
        };
        let mut sim = Sim::new(clk, st);
        for k in kinds.clone() {
            sim.rule(format!("{k:?}"), move |s: &mut St| match k {
                RuleKind::AddTo(i, v) => {
                    s.cells[i].update(|x| *x = x.wrapping_add(v));
                    Ok(())
                }
                RuleKind::CopyThenBump(a, b) => {
                    let v = s.cells[b].read();
                    s.cells[a].write(v.wrapping_add(1));
                    Ok(())
                }
                RuleKind::GuardedDouble(i, t) => {
                    let v = s.cells[i].read();
                    if v < t {
                        return Err(Stall::new("below threshold"));
                    }
                    s.cells[i].write(v.wrapping_mul(2));
                    Ok(())
                }
            });
        }
        sim.run(cycles);

        // Reference: pure-Rust sequential execution.
        let mut model = [10u64, 11, 12, 13];
        for _ in 0..cycles {
            for &k in &kinds {
                apply_kind(k, &mut model);
            }
        }
        for i in 0..4 {
            prop_assert_eq!(sim.state().cells[i].read(), model[i]);
        }
    }
}

// ---------------------------------------------------------------------------
// 3. FIFO conformance
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
enum FifoOp {
    Enq(u32),
    Deq,
    EndCycle,
}

fn fifo_ops() -> impl Strategy<Value = Vec<FifoOp>> {
    proptest::collection::vec(
        prop_oneof![
            any::<u32>().prop_map(FifoOp::Enq),
            Just(FifoOp::Deq),
            Just(FifoOp::EndCycle),
        ],
        1..60,
    )
}

/// Drives a FIFO with each op in its own rule-cycle (so every flavor's CM
/// permits it), checking against a VecDeque model.
fn check_fifo_against_model<F: Fifo<u32>>(clk: &Clock, f: &F, ops: &[FifoOp]) {
    let cap = f.capacity();
    let mut model = std::collections::VecDeque::new();
    for op in ops {
        match op {
            FifoOp::Enq(v) => {
                clk.begin_rule();
                let r = f.enq(*v);
                if model.len() < cap {
                    assert!(r.is_ok(), "model has room");
                    model.push_back(*v);
                    clk.commit_rule();
                } else {
                    assert!(r.is_err(), "model is full");
                    clk.abort_rule();
                }
                clk.end_cycle();
            }
            FifoOp::Deq => {
                clk.begin_rule();
                let r = f.deq();
                match model.pop_front() {
                    Some(expect) => {
                        assert_eq!(r, Ok(expect));
                        clk.commit_rule();
                    }
                    None => {
                        assert!(r.is_err(), "model is empty");
                        clk.abort_rule();
                    }
                }
                clk.end_cycle();
            }
            FifoOp::EndCycle => clk.end_cycle(),
        }
        assert_eq!(f.len(), model.len());
    }
}

proptest! {
    #[test]
    fn pipeline_fifo_refines_queue(ops in fifo_ops(), cap in 1usize..6) {
        let clk = Clock::new();
        let f: PipelineFifo<u32> = PipelineFifo::new(&clk, cap);
        check_fifo_against_model(&clk, &f, &ops);
    }

    #[test]
    fn bypass_fifo_refines_queue(ops in fifo_ops(), cap in 1usize..6) {
        let clk = Clock::new();
        let f: BypassFifo<u32> = BypassFifo::new(&clk, cap);
        check_fifo_against_model(&clk, &f, &ops);
    }

    #[test]
    fn cf_fifo_refines_queue(ops in fifo_ops(), cap in 1usize..6) {
        let clk = Clock::new();
        let f: CfFifo<u32> = CfFifo::new(&clk, cap);
        check_fifo_against_model(&clk, &f, &ops);
    }
}

// ---------------------------------------------------------------------------
// 4. Conflict matrices
// ---------------------------------------------------------------------------

proptest! {
    /// Any sequence of builder operations yields a symmetric matrix.
    #[test]
    fn built_matrices_are_always_consistent(
        n in 1usize..8,
        pairs in proptest::collection::vec((0usize..8, 0usize..8, 0u8..4), 0..20),
    ) {
        let mut b = ConflictMatrix::builder(n);
        for (a, c, r) in pairs {
            if a < n && c < n {
                let rel = [Rel::Conflict, Rel::Before, Rel::After, Rel::Free][r as usize];
                // Directional self-relations are rejected by the builder.
                if a == c && !matches!(rel, Rel::Conflict | Rel::Free) {
                    continue;
                }
                b = b.pair(a, c, rel);
            }
        }
        let cm = b.build();
        prop_assert!(cm.validate().is_ok());
        for a in 0..n {
            for c in 0..n {
                prop_assert_eq!(cm.rel(a, c), cm.rel(c, a).flipped());
            }
        }
    }

    /// Under the scheduler, two rules calling a conflicting method pair
    /// never both fire in one cycle, for any declared relation.
    #[test]
    fn enforcement_matches_declaration(rel_code in 0u8..4, cycles in 1u64..8) {
        let rel = [Rel::Conflict, Rel::Before, Rel::After, Rel::Free][rel_code as usize];
        let clk = Clock::new();
        let cm = ConflictMatrix::builder(2)
            .pair(0, 1, rel)
            .self_free(0)
            .self_free(1)
            .build();
        let ifc = clk.module("m", &["a", "b"], cm);
        struct St {
            ifc: ModuleIfc,
        }
        let mut sim = Sim::new(clk, St { ifc });
        let ra = sim.rule("callA", |s: &mut St| {
            s.ifc.record(0);
            Ok(())
        });
        let rb = sim.rule("callB", |s: &mut St| {
            s.ifc.record(1);
            Ok(())
        });
        sim.run(cycles);
        let (fa, fb) = (sim.rule_stats(ra), sim.rule_stats(rb));
        prop_assert_eq!(fa.fired, cycles, "first rule always fires");
        match rel {
            // callA fires first in the schedule; b-after-a is legal iff
            // rel(a, b) ∈ {<, CF}.
            Rel::Before | Rel::Free => prop_assert_eq!(fb.fired, cycles),
            Rel::After | Rel::Conflict => {
                prop_assert_eq!(fb.fired, 0);
                prop_assert_eq!(fb.cm_stalls, cycles);
            }
        }
    }
}
