//! Golden-file test for the Chrome trace-event exporter: a fixed little
//! design must serialize to byte-identical JSON on every run and platform.
//! The exporter keys everything off simulated cycles (never host time), so
//! the output is fully deterministic — any byte change is a schema change
//! and must be made deliberately, updating this golden alongside
//! docs/OBSERVABILITY.md.

use std::cell::RefCell;
use std::rc::Rc;

use cmd_core::prelude::*;

struct St {
    q: BypassFifo<u64>,
    got: Ehr<u64>,
}

/// Two rules over a bypass FIFO: `produce` fires every cycle, `consume`
/// fires from cycle 0 too (bypass), so both tracks coalesce into single
/// duration events.
fn run_traced(cycles: u64) -> String {
    let clk = Clock::new();
    let st = St {
        q: BypassFifo::new(&clk, 2),
        got: Ehr::new(&clk, 0),
    };
    let mut sim = Sim::new(clk, st);
    sim.rule("produce", |s: &mut St| s.q.enq(7));
    sim.rule("consume", |s: &mut St| {
        let v = s.q.deq()?;
        s.got.update(|g| *g += v);
        Ok(())
    });
    let trace = Rc::new(RefCell::new(ChromeTrace::new()));
    sim.set_tracer(Tracer::new(trace.clone()));
    sim.run(cycles);
    let mut t = trace.borrow_mut();
    t.set_inst_track(0, "core0");
    t.add_span(0, "alu", 1, 4, 0x8000_0000, 42);
    t.finish_json()
}

#[test]
fn chrome_trace_json_is_byte_stable() {
    let golden = concat!(
        "{\"traceEvents\":[",
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,",
        "\"args\":{\"name\":\"rules\"}},",
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,",
        "\"args\":{\"name\":\"instructions\"}},",
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,",
        "\"args\":{\"name\":\"produce\"}},",
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":1,",
        "\"args\":{\"name\":\"consume\"}},",
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,",
        "\"args\":{\"name\":\"core0\"}},",
        "{\"name\":\"alu\",\"cat\":\"inst\",\"ph\":\"X\",\"ts\":1,\"dur\":4,",
        "\"pid\":1,\"tid\":0,\"args\":{\"pc\":\"0x80000000\",\"seq\":42}},",
        "{\"name\":\"produce\",\"cat\":\"rule\",\"ph\":\"X\",\"ts\":0,\"dur\":3,",
        "\"pid\":0,\"tid\":0},",
        "{\"name\":\"consume\",\"cat\":\"rule\",\"ph\":\"X\",\"ts\":0,\"dur\":3,",
        "\"pid\":0,\"tid\":1}",
        "],\"displayTimeUnit\":\"ms\",",
        "\"otherData\":{\"schema_version\":1,",
        "\"time_unit\":\"1us = 1 cycle\",\"dropped_events\":0}}"
    );
    let json = run_traced(3);
    assert_eq!(json, golden, "exporter output drifted from the golden");
    // Re-running is also byte-identical (no host-time or hash-order leaks).
    assert_eq!(run_traced(3), json);
}
