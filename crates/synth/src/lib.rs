//! # riscy-synth — analytic ASIC synthesis model (paper Fig. 21)
//!
//! The paper synthesizes single cores of RiscyOO-T+ and RiscyOO-T+R+ with
//! Synopsys DC in 32 nm SOI, reporting maximum frequency and NAND2-
//! equivalent gate count (logic only, SRAMs excluded via CACTI
//! black-boxes). Physical synthesis is unavailable here, so this crate
//! substitutes an *analytic model*: per-module gate costs as functions of
//! the configuration parameters, and a critical-path delay model. It is
//! calibrated to the paper's two published data points and documents its
//! own calibration (see DESIGN.md). What the model preserves is the
//! *scaling relation* the paper highlights: growing the ROB from 64 to 80
//! entries costs ~6% area and ~10% frequency, and the branch predictor
//! dominates the logic-only gate count.
//!
//! # Examples
//!
//! ```
//! use riscy_ooo::config::CoreConfig;
//! use riscy_synth::synthesize;
//!
//! let t_plus = synthesize(&CoreConfig::riscyoo_t_plus());
//! assert!((t_plus.max_freq_ghz - 1.1).abs() < 0.05);
//! assert!((t_plus.nand2_gates_m - 1.78).abs() < 0.05);
//! ```

use riscy_ooo::config::CoreConfig;

/// Gate-count calibration: scales the raw structural estimate onto the
/// paper's 1.78 M-gate RiscyOO-T+ data point.
const GATE_CAL: f64 = 0.961_3;

/// Per-module NAND2-equivalent estimates and the frequency result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SynthesisResult {
    /// Maximum frequency in GHz.
    pub max_freq_ghz: f64,
    /// Total NAND2-equivalent gates, in millions (logic only).
    pub nand2_gates_m: f64,
    /// Branch-prediction structures (the dominant logic block, per §VI-C).
    pub bp_gates: f64,
    /// Reorder buffer.
    pub rob_gates: f64,
    /// Issue queues.
    pub iq_gates: f64,
    /// Rename + speculation manager.
    pub rename_gates: f64,
    /// Physical register file logic (presence/scoreboard/bypass).
    pub prf_gates: f64,
    /// Load-store queue + store buffer.
    pub lsq_gates: f64,
    /// Execution units.
    pub exec_gates: f64,
    /// TLB control logic (SRAM arrays excluded).
    pub tlb_gates: f64,
    /// Fixed control/decode overhead.
    pub fixed_gates: f64,
}

/// Bits held by the branch-prediction structures.
fn bp_bits(cfg: &CoreConfig) -> f64 {
    let local_hist = (cfg.bp.local_hist_entries as f64) * f64::from(cfg.bp.local_hist_bits);
    let local_pred = f64::powi(2.0, cfg.bp.local_hist_bits as i32) * 3.0;
    let global = cfg.bp.global_entries as f64 * 2.0;
    let choice = cfg.bp.global_entries as f64 * 2.0;
    let btb = cfg.bp.btb_entries as f64 * 100.0;
    let ras = cfg.bp.ras_entries as f64 * 64.0;
    local_hist + local_pred + global + choice + btb + ras
}

/// Estimates NAND2 gates and critical-path frequency for one core
/// configuration.
#[must_use]
pub fn synthesize(cfg: &CoreConfig) -> SynthesisResult {
    // --- Area: structural gate estimates (flop ≈ 8 NAND2 + mux ≈ 2). ---
    let bp_gates = bp_bits(cfg) * 10.0;
    let rob_gates = cfg.rob_entries as f64 * 5_500.0 + (cfg.rob_entries * cfg.width) as f64 * 180.0;
    let n_iqs = cfg.alu_pipes + 2;
    let iq_gates = (n_iqs * cfg.iq_entries) as f64 * 4_000.0;
    let rename_gates = cfg.width as f64 * 25_000.0 + cfg.spec_tags as f64 * 3_000.0;
    let prf_gates = cfg.phys_regs as f64 * 800.0 + (cfg.alu_pipes + 3) as f64 * 6_000.0;
    let lsq_gates = cfg.lq_entries as f64 * 5_000.0
        + cfg.sq_entries as f64 * 5_500.0
        + cfg.sb_entries as f64 * 3_000.0;
    let exec_gates = cfg.alu_pipes as f64 * 30_000.0 + 45_000.0;
    let tlb_gates = cfg.tlb.walk_cache_entries as f64 * 2.0 * 400.0
        + (cfg.tlb.l1d_miss_slots + cfg.tlb.l2_miss_slots) as f64 * 2_000.0
        + 8_000.0;
    let fixed_gates = 120_000.0 + cfg.width as f64 * 15_000.0;

    let raw = bp_gates
        + rob_gates
        + iq_gates
        + rename_gates
        + prf_gates
        + lsq_gates
        + exec_gates
        + tlb_gates
        + fixed_gates;
    let gates = raw * GATE_CAL;

    // --- Frequency: critical path through wakeup/select and ROB
    // management, calibrated to (64-entry → 1.1 GHz, 80-entry → 1.0 GHz).
    let delay_ps = 385.0
        + 40.0 * (cfg.iq_entries as f64).log2()
        + 5.69 * cfg.rob_entries as f64
        + 60.0 * (cfg.width as f64 - 2.0)
        + 8.0 * (cfg.spec_tags as f64 - 12.0);
    let max_freq_ghz = 1000.0 / delay_ps;

    SynthesisResult {
        max_freq_ghz,
        nand2_gates_m: gates / 1.0e6,
        bp_gates,
        rob_gates,
        iq_gates,
        rename_gates,
        prf_gates,
        lsq_gates,
        exec_gates,
        tlb_gates,
        fixed_gates,
    }
}

/// Formats the Fig. 21 table rows for a set of named configurations.
#[must_use]
pub fn fig21_table(rows: &[(&str, CoreConfig)]) -> String {
    let mut out = String::new();
    out.push_str("Core Configuration        | Max Frequency | NAND2-Equivalent Gates\n");
    out.push_str("--------------------------+---------------+-----------------------\n");
    for (name, cfg) in rows {
        let r = synthesize(cfg);
        out.push_str(&format!(
            "{name:<25} | {:>10.2} GHz | {:>10.2} M\n",
            r.max_freq_ghz, r.nand2_gates_m
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_fig21_t_plus() {
        let r = synthesize(&CoreConfig::riscyoo_t_plus());
        assert!(
            (r.max_freq_ghz - 1.1).abs() < 0.05,
            "T+ frequency {:.3} GHz (paper: 1.1)",
            r.max_freq_ghz
        );
        assert!(
            (r.nand2_gates_m - 1.78).abs() < 0.05,
            "T+ gates {:.3} M (paper: 1.78)",
            r.nand2_gates_m
        );
    }

    #[test]
    fn matches_paper_fig21_t_plus_r_plus() {
        let r = synthesize(&CoreConfig::riscyoo_t_plus_r_plus());
        assert!(
            (r.max_freq_ghz - 1.0).abs() < 0.05,
            "T+R+ frequency {:.3} GHz (paper: 1.0)",
            r.max_freq_ghz
        );
        assert!(
            (r.nand2_gates_m - 1.89).abs() < 0.07,
            "T+R+ gates {:.3} M (paper: 1.89)",
            r.nand2_gates_m
        );
    }

    #[test]
    fn rob_growth_costs_about_six_percent_area() {
        let a = synthesize(&CoreConfig::riscyoo_t_plus()).nand2_gates_m;
        let b = synthesize(&CoreConfig::riscyoo_t_plus_r_plus()).nand2_gates_m;
        let pct = 100.0 * (b - a) / a;
        assert!(
            (pct - 6.2).abs() < 1.5,
            "area growth {pct:.1}% (paper: 6.2%)"
        );
    }

    #[test]
    fn predictor_dominates_logic_area() {
        let r = synthesize(&CoreConfig::riscyoo_t_plus());
        let others = [
            r.rob_gates,
            r.iq_gates,
            r.rename_gates,
            r.prf_gates,
            r.lsq_gates,
            r.exec_gates,
            r.tlb_gates,
        ];
        for o in others {
            assert!(
                r.bp_gates > o,
                "predictor ({:.0}) must dominate every block ({o:.0}) — §VI-C",
                r.bp_gates
            );
        }
    }

    #[test]
    fn wider_cores_are_bigger_and_slower() {
        let base = synthesize(&CoreConfig::riscyoo_t_plus());
        let wide = synthesize(&CoreConfig::denver_proxy());
        assert!(wide.nand2_gates_m > base.nand2_gates_m * 1.3);
        assert!(wide.max_freq_ghz < base.max_freq_ghz);
    }

    #[test]
    fn table_formatting() {
        let t = fig21_table(&[
            ("RiscyOO-T+", CoreConfig::riscyoo_t_plus()),
            ("RiscyOO-T+R+", CoreConfig::riscyoo_t_plus_r_plus()),
        ]);
        assert!(t.contains("RiscyOO-T+"));
        assert!(t.contains("GHz"));
    }
}
