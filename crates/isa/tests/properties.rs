//! Property-style tests of the ISA layer: encode/decode round trips,
//! decoder totality, and `li` correctness. Randomized cases come from the
//! in-tree deterministic PRNG (`cmd_core::rng`); each loop iteration is
//! reproducible from its printed seed.

use cmd_core::rng::SplitMix64;
use riscy_isa::asm::Assembler;
use riscy_isa::inst::{
    decode, AluOp, AmoOp, BranchCond, CsrOp, CsrSrc, Instr, MemWidth, MulDivOp, Rhs,
};
use riscy_isa::interp::Machine;
use riscy_isa::mem::{DRAM_BASE, MMIO_EXIT};
use riscy_isa::reg::Gpr;

fn gpr(rng: &mut SplitMix64) -> Gpr {
    Gpr::new(rng.below(32) as u8)
}

fn mem_width(rng: &mut SplitMix64) -> MemWidth {
    *rng.pick(&[MemWidth::B, MemWidth::H, MemWidth::W, MemWidth::D])
}

/// Generates (almost) every representable instruction, uniformly over the
/// same variant families the old proptest strategy covered.
fn instr(rng: &mut SplitMix64) -> Instr {
    const ALU_OPS: [AluOp; 9] = [
        AluOp::Add,
        AluOp::Sll,
        AluOp::Slt,
        AluOp::Sltu,
        AluOp::Xor,
        AluOp::Srl,
        AluOp::Sra,
        AluOp::Or,
        AluOp::And,
    ];
    const MULDIV_OPS: [MulDivOp; 8] = [
        MulDivOp::Mul,
        MulDivOp::Mulh,
        MulDivOp::Mulhsu,
        MulDivOp::Mulhu,
        MulDivOp::Div,
        MulDivOp::Divu,
        MulDivOp::Rem,
        MulDivOp::Remu,
    ];
    const AMO_OPS: [AmoOp; 9] = [
        AmoOp::Swap,
        AmoOp::Add,
        AmoOp::Xor,
        AmoOp::And,
        AmoOp::Or,
        AmoOp::Min,
        AmoOp::Max,
        AmoOp::Minu,
        AmoOp::Maxu,
    ];
    match rng.below(14) {
        0 => Instr::Lui {
            rd: gpr(rng),
            imm: rng.range_i64(-(1 << 19), 1 << 19) << 12,
        },
        1 => Instr::Auipc {
            rd: gpr(rng),
            imm: rng.range_i64(-(1 << 19), 1 << 19) << 12,
        },
        2 => Instr::Jal {
            rd: gpr(rng),
            offset: rng.range_i64(-(1 << 19), 1 << 19) as i32 * 2,
        },
        3 => Instr::Jalr {
            rd: gpr(rng),
            rs1: gpr(rng),
            offset: rng.range_i64(-2048, 2048) as i32,
        },
        4 => Instr::Branch {
            cond: *rng.pick(&[
                BranchCond::Eq,
                BranchCond::Ne,
                BranchCond::Lt,
                BranchCond::Ge,
                BranchCond::Ltu,
                BranchCond::Geu,
            ]),
            rs1: gpr(rng),
            rs2: gpr(rng),
            offset: rng.range_i64(-2048, 2047) as i32 * 2,
        },
        5 => {
            let width = mem_width(rng);
            Instr::Load {
                width,
                signed: rng.chance(0.5) || width == MemWidth::D,
                rd: gpr(rng),
                rs1: gpr(rng),
                offset: rng.range_i64(-2048, 2048) as i32,
            }
        }
        6 => Instr::Store {
            width: mem_width(rng),
            rs2: gpr(rng),
            rs1: gpr(rng),
            offset: rng.range_i64(-2048, 2048) as i32,
        },
        7 => {
            let op = *rng.pick(&ALU_OPS);
            let word =
                rng.chance(0.5) && matches!(op, AluOp::Add | AluOp::Sll | AluOp::Srl | AluOp::Sra);
            Instr::Alu {
                op,
                word,
                rd: gpr(rng),
                rs1: gpr(rng),
                rhs: Rhs::Reg(gpr(rng)),
            }
        }
        8 => {
            let op = *rng.pick(&ALU_OPS);
            let word =
                rng.chance(0.5) && matches!(op, AluOp::Add | AluOp::Sll | AluOp::Srl | AluOp::Sra);
            let imm = rng.range_i64(-2048, 2048) as i32;
            let imm = match op {
                AluOp::Sll | AluOp::Srl | AluOp::Sra => imm.rem_euclid(if word { 32 } else { 64 }),
                _ => imm,
            };
            Instr::Alu {
                op,
                word,
                rd: gpr(rng),
                rs1: gpr(rng),
                rhs: Rhs::Imm(imm),
            }
        }
        9 => {
            let op = *rng.pick(&MULDIV_OPS);
            let word = rng.chance(0.5)
                && matches!(
                    op,
                    MulDivOp::Mul | MulDivOp::Div | MulDivOp::Divu | MulDivOp::Rem | MulDivOp::Remu
                );
            Instr::MulDiv {
                op,
                word,
                rd: gpr(rng),
                rs1: gpr(rng),
                rs2: gpr(rng),
            }
        }
        10 => Instr::Amo {
            op: *rng.pick(&AMO_OPS),
            width: *rng.pick(&[MemWidth::W, MemWidth::D]),
            rd: gpr(rng),
            rs1: gpr(rng),
            rs2: gpr(rng),
        },
        11 => Instr::Csr {
            op: *rng.pick(&[CsrOp::Rw, CsrOp::Rs, CsrOp::Rc]),
            rd: gpr(rng),
            src: if rng.chance(0.5) {
                CsrSrc::Reg(gpr(rng))
            } else {
                CsrSrc::Imm(rng.below(32) as u8)
            },
            csr: rng.below(4096) as u16,
        },
        12 => Instr::Fence,
        _ => *rng.pick(&[Instr::Ecall, Instr::Mret]),
    }
}

/// decode(encode(i)) == i for every representable instruction.
#[test]
fn encode_decode_roundtrip() {
    let mut rng = SplitMix64::seed_from_u64(0x15a_0001);
    for case in 0..4096 {
        let i = instr(&mut rng);
        let w = i.encode();
        assert_eq!(decode(w), Ok(i), "case {case}: {i:?}");
    }
}

/// The decoder is total: any 32-bit word either decodes or errors — and
/// re-encoding a successful decode reproduces semantics (checked via a
/// second decode; encodings may differ only in don't-care bits).
#[test]
fn decoder_never_panics_and_is_stable() {
    let mut rng = SplitMix64::seed_from_u64(0x15a_0002);
    for case in 0..16384 {
        let w = rng.next_u64() as u32;
        if let Ok(i) = decode(w) {
            let w2 = i.encode();
            assert_eq!(decode(w2), Ok(i), "case {case}: {w:#010x}");
        }
    }
}

/// The `li` pseudo-instruction materializes exactly its operand, for any
/// 64-bit value (executed on the golden interpreter).
#[test]
fn li_materializes_any_constant() {
    let mut rng = SplitMix64::seed_from_u64(0x15a_0003);
    // Edge values plus a uniform sweep.
    let mut cases = vec![
        0i64,
        1,
        -1,
        i64::MAX,
        i64::MIN,
        0x7ff,
        -0x800,
        1 << 31,
        -(1 << 31),
    ];
    cases.extend((0..192).map(|_| rng.next_u64() as i64));
    for v in cases {
        let mut a = Assembler::new(DRAM_BASE);
        a.li(Gpr::a(0), v);
        a.li(Gpr::t(6), MMIO_EXIT as i64);
        a.sd(Gpr::ZERO, 0, Gpr::t(6));
        let p = a.assemble();
        let mut m = Machine::with_program(1, &p);
        m.run(100).expect("halts");
        assert_eq!(m.hart(0).reg(Gpr::a(0)), v as u64, "value {v:#x}");
    }
}
