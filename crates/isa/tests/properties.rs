//! Property-based tests of the ISA layer: encode/decode round trips,
//! decoder totality, `li` correctness, and TLB-vs-walk agreement.

use proptest::prelude::*;
use riscy_isa::asm::Assembler;
use riscy_isa::inst::{
    decode, AluOp, AmoOp, BranchCond, CsrOp, CsrSrc, Instr, MemWidth, MulDivOp, Rhs,
};
use riscy_isa::interp::Machine;
use riscy_isa::mem::{DRAM_BASE, MMIO_EXIT};
use riscy_isa::reg::Gpr;

fn gpr() -> impl Strategy<Value = Gpr> {
    (0u8..32).prop_map(Gpr::new)
}

fn mem_width() -> impl Strategy<Value = MemWidth> {
    prop_oneof![
        Just(MemWidth::B),
        Just(MemWidth::H),
        Just(MemWidth::W),
        Just(MemWidth::D)
    ]
}

/// A strategy over (almost) every representable instruction.
fn instr() -> impl Strategy<Value = Instr> {
    let alu_op = prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sll),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
        Just(AluOp::Xor),
        Just(AluOp::Srl),
        Just(AluOp::Sra),
        Just(AluOp::Or),
        Just(AluOp::And),
    ];
    let muldiv_op = prop_oneof![
        Just(MulDivOp::Mul),
        Just(MulDivOp::Mulh),
        Just(MulDivOp::Mulhsu),
        Just(MulDivOp::Mulhu),
        Just(MulDivOp::Div),
        Just(MulDivOp::Divu),
        Just(MulDivOp::Rem),
        Just(MulDivOp::Remu),
    ];
    let amo_op = prop_oneof![
        Just(AmoOp::Swap),
        Just(AmoOp::Add),
        Just(AmoOp::Xor),
        Just(AmoOp::And),
        Just(AmoOp::Or),
        Just(AmoOp::Min),
        Just(AmoOp::Max),
        Just(AmoOp::Minu),
        Just(AmoOp::Maxu),
    ];
    prop_oneof![
        (gpr(), (-(1i64 << 19)..(1 << 19)))
            .prop_map(|(rd, v)| Instr::Lui { rd, imm: v << 12 }),
        (gpr(), (-(1i64 << 19)..(1 << 19)))
            .prop_map(|(rd, v)| Instr::Auipc { rd, imm: v << 12 }),
        (gpr(), (-(1i32 << 19)..(1 << 19)))
            .prop_map(|(rd, o)| Instr::Jal { rd, offset: o * 2 }),
        (gpr(), gpr(), -2048i32..2048)
            .prop_map(|(rd, rs1, offset)| Instr::Jalr { rd, rs1, offset }),
        (
            prop_oneof![
                Just(BranchCond::Eq),
                Just(BranchCond::Ne),
                Just(BranchCond::Lt),
                Just(BranchCond::Ge),
                Just(BranchCond::Ltu),
                Just(BranchCond::Geu)
            ],
            gpr(),
            gpr(),
            -2048i32..2047
        )
            .prop_map(|(cond, rs1, rs2, o)| Instr::Branch {
                cond,
                rs1,
                rs2,
                offset: o * 2,
            }),
        (mem_width(), any::<bool>(), gpr(), gpr(), -2048i32..2048).prop_map(
            |(width, signed, rd, rs1, offset)| Instr::Load {
                width,
                signed: signed || width == MemWidth::D,
                rd,
                rs1,
                offset,
            }
        ),
        (mem_width(), gpr(), gpr(), -2048i32..2048).prop_map(|(width, rs2, rs1, offset)| {
            Instr::Store {
                width,
                rs2,
                rs1,
                offset,
            }
        }),
        (alu_op.clone(), any::<bool>(), gpr(), gpr(), gpr()).prop_filter_map(
            "word forms exist only for add/sll/srl/sra",
            |(op, word, rd, rs1, rs2)| {
                let word = word
                    && matches!(op, AluOp::Add | AluOp::Sll | AluOp::Srl | AluOp::Sra);
                Some(Instr::Alu {
                    op,
                    word,
                    rd,
                    rs1,
                    rhs: Rhs::Reg(rs2),
                })
            }
        ),
        (alu_op, any::<bool>(), gpr(), gpr(), -2048i32..2048).prop_map(
            |(op, word, rd, rs1, imm)| {
                let word = word
                    && matches!(op, AluOp::Add | AluOp::Sll | AluOp::Srl | AluOp::Sra);
                let imm = match op {
                    AluOp::Sll | AluOp::Srl | AluOp::Sra => {
                        imm.rem_euclid(if word { 32 } else { 64 })
                    }
                    _ => imm,
                };
                Instr::Alu {
                    op,
                    word,
                    rd,
                    rs1,
                    rhs: Rhs::Imm(imm),
                }
            }
        ),
        (muldiv_op, any::<bool>(), gpr(), gpr(), gpr()).prop_map(|(op, word, rd, rs1, rs2)| {
            let word = word
                && matches!(
                    op,
                    MulDivOp::Mul | MulDivOp::Div | MulDivOp::Divu | MulDivOp::Rem | MulDivOp::Remu
                );
            Instr::MulDiv {
                op,
                word,
                rd,
                rs1,
                rs2,
            }
        }),
        (amo_op, prop_oneof![Just(MemWidth::W), Just(MemWidth::D)], gpr(), gpr(), gpr())
            .prop_map(|(op, width, rd, rs1, rs2)| Instr::Amo {
                op,
                width,
                rd,
                rs1,
                rs2
            }),
        (
            prop_oneof![Just(CsrOp::Rw), Just(CsrOp::Rs), Just(CsrOp::Rc)],
            gpr(),
            prop_oneof![gpr().prop_map(CsrSrc::Reg), (0u8..32).prop_map(CsrSrc::Imm)],
            0u16..4096
        )
            .prop_map(|(op, rd, src, csr)| Instr::Csr { op, rd, src, csr }),
        Just(Instr::Fence),
        Just(Instr::Ecall),
        Just(Instr::Mret),
    ]
}

proptest! {
    /// decode(encode(i)) == i for every representable instruction.
    #[test]
    fn encode_decode_roundtrip(i in instr()) {
        let w = i.encode();
        prop_assert_eq!(decode(w), Ok(i));
    }

    /// The decoder is total: any 32-bit word either decodes or errors —
    /// and re-encoding a successful decode reproduces semantics (checked
    /// via a second decode; encodings may differ only in don't-care bits).
    #[test]
    fn decoder_never_panics_and_is_stable(w in any::<u32>()) {
        if let Ok(i) = decode(w) {
            let w2 = i.encode();
            prop_assert_eq!(decode(w2), Ok(i));
        }
    }

    /// The `li` pseudo-instruction materializes exactly its operand, for
    /// any 64-bit value (executed on the golden interpreter).
    #[test]
    fn li_materializes_any_constant(v in any::<i64>()) {
        let mut a = Assembler::new(DRAM_BASE);
        a.li(Gpr::a(0), v);
        a.li(Gpr::t(6), MMIO_EXIT as i64);
        a.sd(Gpr::ZERO, 0, Gpr::t(6));
        let p = a.assemble();
        let mut m = Machine::with_program(1, &p);
        m.run(100).expect("halts");
        prop_assert_eq!(m.hart(0).reg(Gpr::a(0)), v as u64);
    }
}

