//! RV64IMA + Zicsr instruction definitions, binary encoding and decoding.
//!
//! [`Instr`] is the decoded form shared by the assembler, the golden
//! interpreter, and the processor front-ends. [`Instr::encode`] and
//! [`decode`] are exact inverses for every representable instruction
//! (property-tested).

use std::fmt;

use crate::reg::Gpr;

/// Branch comparison of the B-type instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchCond {
    /// `beq`
    Eq,
    /// `bne`
    Ne,
    /// `blt`
    Lt,
    /// `bge`
    Ge,
    /// `bltu`
    Ltu,
    /// `bgeu`
    Geu,
}

/// Access width of loads, stores and AMOs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemWidth {
    /// 1 byte
    B,
    /// 2 bytes
    H,
    /// 4 bytes
    W,
    /// 8 bytes
    D,
}

impl MemWidth {
    /// Size in bytes.
    #[must_use]
    pub const fn bytes(self) -> u64 {
        match self {
            MemWidth::B => 1,
            MemWidth::H => 2,
            MemWidth::W => 4,
            MemWidth::D => 8,
        }
    }
}

/// Integer ALU operations (shared by register and immediate forms).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// add / addi (sub in register form via `Sub`)
    Add,
    /// sub (register form only)
    Sub,
    /// sll / slli
    Sll,
    /// slt / slti
    Slt,
    /// sltu / sltiu
    Sltu,
    /// xor / xori
    Xor,
    /// srl / srli
    Srl,
    /// sra / srai
    Sra,
    /// or / ori
    Or,
    /// and / andi
    And,
}

/// M-extension operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MulDivOp {
    /// mul
    Mul,
    /// mulh
    Mulh,
    /// mulhsu
    Mulhsu,
    /// mulhu
    Mulhu,
    /// div
    Div,
    /// divu
    Divu,
    /// rem
    Rem,
    /// remu
    Remu,
}

/// A-extension atomic memory operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AmoOp {
    /// amoswap
    Swap,
    /// amoadd
    Add,
    /// amoxor
    Xor,
    /// amoand
    And,
    /// amoor
    Or,
    /// amomin
    Min,
    /// amomax
    Max,
    /// amominu
    Minu,
    /// amomaxu
    Maxu,
}

cmd_core::snap_enum!(AmoOp {
    0 => Swap,
    1 => Add,
    2 => Xor,
    3 => And,
    4 => Or,
    5 => Min,
    6 => Max,
    7 => Minu,
    8 => Maxu,
});

/// Zicsr operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CsrOp {
    /// csrrw / csrrwi
    Rw,
    /// csrrs / csrrsi
    Rs,
    /// csrrc / csrrci
    Rc,
}

/// Second operand of an ALU instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rhs {
    /// Register form (`add`, `sll`, ...).
    Reg(Gpr),
    /// Immediate form (`addi`, `slli`, ...). Shift amounts occupy the low
    /// 6 bits (5 for word forms).
    Imm(i32),
}

/// Source operand of a CSR instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CsrSrc {
    /// Register form.
    Reg(Gpr),
    /// 5-bit zero-extended immediate form.
    Imm(u8),
}

/// A decoded RV64IMA + Zicsr instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instr {
    /// `lui rd, imm` — imm is the already-shifted 32-bit value,
    /// sign-extended.
    Lui {
        /// destination
        rd: Gpr,
        /// upper-immediate value (`imm20 << 12`, sign-extended)
        imm: i64,
    },
    /// `auipc rd, imm`
    Auipc {
        /// destination
        rd: Gpr,
        /// upper-immediate value
        imm: i64,
    },
    /// `jal rd, offset`
    Jal {
        /// link register
        rd: Gpr,
        /// pc-relative byte offset (±1 MiB, even)
        offset: i32,
    },
    /// `jalr rd, offset(rs1)`
    Jalr {
        /// link register
        rd: Gpr,
        /// base
        rs1: Gpr,
        /// byte offset
        offset: i32,
    },
    /// Conditional branch.
    Branch {
        /// comparison
        cond: BranchCond,
        /// left operand
        rs1: Gpr,
        /// right operand
        rs2: Gpr,
        /// pc-relative byte offset (±4 KiB, even)
        offset: i32,
    },
    /// Load.
    Load {
        /// access width
        width: MemWidth,
        /// sign-extend the loaded value
        signed: bool,
        /// destination
        rd: Gpr,
        /// base
        rs1: Gpr,
        /// byte offset
        offset: i32,
    },
    /// Store.
    Store {
        /// access width
        width: MemWidth,
        /// data register
        rs2: Gpr,
        /// base
        rs1: Gpr,
        /// byte offset
        offset: i32,
    },
    /// Integer ALU operation, register or immediate form.
    Alu {
        /// operation
        op: AluOp,
        /// 32-bit word form (`addw`, `slliw`, ...)
        word: bool,
        /// destination
        rd: Gpr,
        /// first source
        rs1: Gpr,
        /// second operand
        rhs: Rhs,
    },
    /// M-extension multiply/divide.
    MulDiv {
        /// operation
        op: MulDivOp,
        /// 32-bit word form
        word: bool,
        /// destination
        rd: Gpr,
        /// first source
        rs1: Gpr,
        /// second source
        rs2: Gpr,
    },
    /// `lr.w` / `lr.d`
    Lr {
        /// access width (W or D only)
        width: MemWidth,
        /// destination
        rd: Gpr,
        /// address register
        rs1: Gpr,
    },
    /// `sc.w` / `sc.d`
    Sc {
        /// access width (W or D only)
        width: MemWidth,
        /// success flag destination (0 = success)
        rd: Gpr,
        /// address register
        rs1: Gpr,
        /// data register
        rs2: Gpr,
    },
    /// AMO read-modify-write.
    Amo {
        /// operation
        op: AmoOp,
        /// access width (W or D only)
        width: MemWidth,
        /// destination (old value)
        rd: Gpr,
        /// address register
        rs1: Gpr,
        /// data register
        rs2: Gpr,
    },
    /// Zicsr access.
    Csr {
        /// operation
        op: CsrOp,
        /// destination (old CSR value)
        rd: Gpr,
        /// source operand
        src: CsrSrc,
        /// CSR address (12 bits)
        csr: u16,
    },
    /// `fence` (all orderings — treated as a full fence).
    Fence,
    /// `fence.i`
    FenceI,
    /// `ecall`
    Ecall,
    /// `ebreak`
    Ebreak,
    /// `mret`
    Mret,
    /// `sret`
    Sret,
    /// `wfi`
    Wfi,
    /// `sfence.vma rs1, rs2`
    SfenceVma {
        /// address register (x0 = all)
        rs1: Gpr,
        /// ASID register (x0 = all)
        rs2: Gpr,
    },
}

/// Error from [`decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The undecodable instruction word.
    pub raw: u32,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "illegal instruction {:#010x}", self.raw)
    }
}

impl std::error::Error for DecodeError {}

// Field extraction helpers -------------------------------------------------

fn rd_of(w: u32) -> Gpr {
    Gpr::new(((w >> 7) & 0x1f) as u8)
}
fn rs1_of(w: u32) -> Gpr {
    Gpr::new(((w >> 15) & 0x1f) as u8)
}
fn rs2_of(w: u32) -> Gpr {
    Gpr::new(((w >> 20) & 0x1f) as u8)
}
fn funct3(w: u32) -> u32 {
    (w >> 12) & 7
}
fn funct7(w: u32) -> u32 {
    w >> 25
}
fn imm_i(w: u32) -> i32 {
    (w as i32) >> 20
}
fn imm_s(w: u32) -> i32 {
    (((w & 0xfe00_0000) as i32) >> 20) | (((w >> 7) & 0x1f) as i32)
}
fn imm_b(w: u32) -> i32 {
    (((w & 0x8000_0000) as i32) >> 19)
        | ((((w >> 7) & 1) << 11) as i32)
        | ((((w >> 25) & 0x3f) << 5) as i32)
        | ((((w >> 8) & 0xf) << 1) as i32)
}
fn imm_j(w: u32) -> i32 {
    (((w & 0x8000_0000) as i32) >> 11)
        | (((w >> 12) & 0xff) << 12) as i32
        | (((w >> 20) & 1) << 11) as i32
        | (((w >> 21) & 0x3ff) << 1) as i32
}

// Encoding helpers ----------------------------------------------------------

fn enc_r(op: u32, f3: u32, f7: u32, rd: Gpr, rs1: Gpr, rs2: Gpr) -> u32 {
    op | (u32::from(rd) << 7)
        | (f3 << 12)
        | (u32::from(rs1) << 15)
        | (u32::from(rs2) << 20)
        | (f7 << 25)
}

fn enc_i(op: u32, f3: u32, rd: Gpr, rs1: Gpr, imm: i32) -> u32 {
    debug_assert!((-2048..=2047).contains(&imm), "I-imm out of range: {imm}");
    op | (u32::from(rd) << 7) | (f3 << 12) | (u32::from(rs1) << 15) | (((imm as u32) & 0xfff) << 20)
}

fn enc_s(op: u32, f3: u32, rs1: Gpr, rs2: Gpr, imm: i32) -> u32 {
    debug_assert!((-2048..=2047).contains(&imm), "S-imm out of range: {imm}");
    let imm = imm as u32;
    op | ((imm & 0x1f) << 7)
        | (f3 << 12)
        | (u32::from(rs1) << 15)
        | (u32::from(rs2) << 20)
        | (((imm >> 5) & 0x7f) << 25)
}

fn enc_b(op: u32, f3: u32, rs1: Gpr, rs2: Gpr, imm: i32) -> u32 {
    debug_assert!(
        (-4096..=4094).contains(&imm) && imm % 2 == 0,
        "B-imm out of range: {imm}"
    );
    let imm = imm as u32;
    op | (((imm >> 11) & 1) << 7)
        | (((imm >> 1) & 0xf) << 8)
        | (f3 << 12)
        | (u32::from(rs1) << 15)
        | (u32::from(rs2) << 20)
        | (((imm >> 5) & 0x3f) << 25)
        | (((imm >> 12) & 1) << 31)
}

fn enc_j(op: u32, rd: Gpr, imm: i32) -> u32 {
    debug_assert!(
        (-(1 << 20)..(1 << 20)).contains(&imm) && imm % 2 == 0,
        "J-imm out of range: {imm}"
    );
    let imm = imm as u32;
    op | (u32::from(rd) << 7)
        | (((imm >> 12) & 0xff) << 12)
        | (((imm >> 11) & 1) << 20)
        | (((imm >> 1) & 0x3ff) << 21)
        | (((imm >> 20) & 1) << 31)
}

fn enc_u(op: u32, rd: Gpr, imm: i64) -> u32 {
    debug_assert!(imm % (1 << 12) == 0, "U-imm must be 4KiB aligned");
    op | (u32::from(rd) << 7) | ((imm as u32) & 0xffff_f000)
}

const OP_LUI: u32 = 0x37;
const OP_AUIPC: u32 = 0x17;
const OP_JAL: u32 = 0x6f;
const OP_JALR: u32 = 0x67;
const OP_BRANCH: u32 = 0x63;
const OP_LOAD: u32 = 0x03;
const OP_STORE: u32 = 0x23;
const OP_IMM: u32 = 0x13;
const OP_IMM32: u32 = 0x1b;
const OP_REG: u32 = 0x33;
const OP_REG32: u32 = 0x3b;
const OP_AMO: u32 = 0x2f;
const OP_SYSTEM: u32 = 0x73;
const OP_MISC_MEM: u32 = 0x0f;

impl cmd_core::snap::Snap for Instr {
    /// An instruction's snapshot encoding *is* its canonical 32-bit RISC-V
    /// encoding — no second format to keep in sync with the decoder.
    fn save(&self, w: &mut cmd_core::snap::SnapWriter) {
        w.u32(self.encode());
    }

    fn load(r: &mut cmd_core::snap::SnapReader<'_>) -> Result<Self, cmd_core::snap::SnapError> {
        decode(r.u32()?)
            .map_err(|_| cmd_core::snap::SnapError::Corrupt("undecodable instruction word"))
    }
}

impl Instr {
    /// Encodes into the 32-bit RISC-V instruction word.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if an immediate is out of range for its
    /// encoding — the assembler guarantees ranges for generated code.
    #[must_use]
    #[allow(clippy::too_many_lines)]
    pub fn encode(self) -> u32 {
        use Instr::*;
        match self {
            Lui { rd, imm } => enc_u(OP_LUI, rd, imm),
            Auipc { rd, imm } => enc_u(OP_AUIPC, rd, imm),
            Jal { rd, offset } => enc_j(OP_JAL, rd, offset),
            Jalr { rd, rs1, offset } => enc_i(OP_JALR, 0, rd, rs1, offset),
            Branch {
                cond,
                rs1,
                rs2,
                offset,
            } => {
                let f3 = match cond {
                    BranchCond::Eq => 0,
                    BranchCond::Ne => 1,
                    BranchCond::Lt => 4,
                    BranchCond::Ge => 5,
                    BranchCond::Ltu => 6,
                    BranchCond::Geu => 7,
                };
                enc_b(OP_BRANCH, f3, rs1, rs2, offset)
            }
            Load {
                width,
                signed,
                rd,
                rs1,
                offset,
            } => {
                let f3 = match (width, signed) {
                    (MemWidth::B, true) => 0,
                    (MemWidth::H, true) => 1,
                    (MemWidth::W, true) => 2,
                    (MemWidth::D, _) => 3,
                    (MemWidth::B, false) => 4,
                    (MemWidth::H, false) => 5,
                    (MemWidth::W, false) => 6,
                };
                enc_i(OP_LOAD, f3, rd, rs1, offset)
            }
            Store {
                width,
                rs2,
                rs1,
                offset,
            } => {
                let f3 = match width {
                    MemWidth::B => 0,
                    MemWidth::H => 1,
                    MemWidth::W => 2,
                    MemWidth::D => 3,
                };
                enc_s(OP_STORE, f3, rs1, rs2, offset)
            }
            Alu {
                op,
                word,
                rd,
                rs1,
                rhs,
            } => {
                let (f3, f7) = match op {
                    AluOp::Add => (0, 0x00),
                    AluOp::Sub => (0, 0x20),
                    AluOp::Sll => (1, 0x00),
                    AluOp::Slt => (2, 0x00),
                    AluOp::Sltu => (3, 0x00),
                    AluOp::Xor => (4, 0x00),
                    AluOp::Srl => (5, 0x00),
                    AluOp::Sra => (5, 0x20),
                    AluOp::Or => (6, 0x00),
                    AluOp::And => (7, 0x00),
                };
                match rhs {
                    Rhs::Reg(rs2) => {
                        let opc = if word { OP_REG32 } else { OP_REG };
                        enc_r(opc, f3, f7, rd, rs1, rs2)
                    }
                    Rhs::Imm(imm) => {
                        let opc = if word { OP_IMM32 } else { OP_IMM };
                        match op {
                            AluOp::Sll | AluOp::Srl | AluOp::Sra => {
                                let shamt_mask = if word { 0x1f } else { 0x3f };
                                let shamt = (imm as u32) & shamt_mask;
                                enc_i(opc, f3, rd, rs1, ((f7 << 5) | shamt) as i32)
                            }
                            AluOp::Sub => panic!("subi does not exist; use addi with -imm"),
                            _ => enc_i(opc, f3, rd, rs1, imm),
                        }
                    }
                }
            }
            MulDiv {
                op,
                word,
                rd,
                rs1,
                rs2,
            } => {
                let f3 = match op {
                    MulDivOp::Mul => 0,
                    MulDivOp::Mulh => 1,
                    MulDivOp::Mulhsu => 2,
                    MulDivOp::Mulhu => 3,
                    MulDivOp::Div => 4,
                    MulDivOp::Divu => 5,
                    MulDivOp::Rem => 6,
                    MulDivOp::Remu => 7,
                };
                let opc = if word { OP_REG32 } else { OP_REG };
                enc_r(opc, f3, 0x01, rd, rs1, rs2)
            }
            Lr { width, rd, rs1 } => {
                let f3 = if width == MemWidth::W { 2 } else { 3 };
                enc_r(OP_AMO, f3, 0x02 << 2, rd, rs1, Gpr::ZERO)
            }
            Sc {
                width,
                rd,
                rs1,
                rs2,
            } => {
                let f3 = if width == MemWidth::W { 2 } else { 3 };
                enc_r(OP_AMO, f3, 0x03 << 2, rd, rs1, rs2)
            }
            Amo {
                op,
                width,
                rd,
                rs1,
                rs2,
            } => {
                let f3 = if width == MemWidth::W { 2 } else { 3 };
                let f5: u32 = match op {
                    AmoOp::Swap => 0x01,
                    AmoOp::Add => 0x00,
                    AmoOp::Xor => 0x04,
                    AmoOp::And => 0x0c,
                    AmoOp::Or => 0x08,
                    AmoOp::Min => 0x10,
                    AmoOp::Max => 0x14,
                    AmoOp::Minu => 0x18,
                    AmoOp::Maxu => 0x1c,
                };
                enc_r(OP_AMO, f3, f5 << 2, rd, rs1, rs2)
            }
            Csr { op, rd, src, csr } => {
                let base = match op {
                    CsrOp::Rw => 1,
                    CsrOp::Rs => 2,
                    CsrOp::Rc => 3,
                };
                match src {
                    CsrSrc::Reg(rs1) => {
                        OP_SYSTEM
                            | (u32::from(rd) << 7)
                            | (base << 12)
                            | (u32::from(rs1) << 15)
                            | (u32::from(csr) << 20)
                    }
                    CsrSrc::Imm(z) => {
                        OP_SYSTEM
                            | (u32::from(rd) << 7)
                            | ((base + 4) << 12)
                            | ((u32::from(z) & 0x1f) << 15)
                            | (u32::from(csr) << 20)
                    }
                }
            }
            Fence => OP_MISC_MEM | (0x0ff0 << 20),
            FenceI => OP_MISC_MEM | (1 << 12),
            Ecall => OP_SYSTEM,
            Ebreak => OP_SYSTEM | (1 << 20),
            Mret => OP_SYSTEM | (0x302 << 20),
            Sret => OP_SYSTEM | (0x102 << 20),
            Wfi => OP_SYSTEM | (0x105 << 20),
            SfenceVma { rs1, rs2 } => enc_r(OP_SYSTEM, 0, 0x09, Gpr::ZERO, rs1, rs2),
        }
    }

    /// Whether this instruction reads memory (loads, LR, AMOs).
    #[must_use]
    pub fn is_mem_read(&self) -> bool {
        matches!(
            self,
            Instr::Load { .. } | Instr::Lr { .. } | Instr::Amo { .. }
        )
    }

    /// Whether this instruction writes memory (stores, SC, AMOs).
    #[must_use]
    pub fn is_mem_write(&self) -> bool {
        matches!(
            self,
            Instr::Store { .. } | Instr::Sc { .. } | Instr::Amo { .. }
        )
    }

    /// Whether this is a control-flow instruction.
    #[must_use]
    pub fn is_branch_or_jump(&self) -> bool {
        matches!(
            self,
            Instr::Jal { .. } | Instr::Jalr { .. } | Instr::Branch { .. }
        )
    }
}

/// Decodes a 32-bit instruction word.
///
/// # Errors
///
/// Returns [`DecodeError`] for any word that is not a valid RV64IMA+Zicsr
/// instruction.
#[allow(clippy::too_many_lines)]
pub fn decode(w: u32) -> Result<Instr, DecodeError> {
    let err = Err(DecodeError { raw: w });
    let opc = w & 0x7f;
    let instr = match opc {
        OP_LUI => Instr::Lui {
            rd: rd_of(w),
            imm: i64::from((w & 0xffff_f000) as i32),
        },
        OP_AUIPC => Instr::Auipc {
            rd: rd_of(w),
            imm: i64::from((w & 0xffff_f000) as i32),
        },
        OP_JAL => Instr::Jal {
            rd: rd_of(w),
            offset: imm_j(w),
        },
        OP_JALR => {
            if funct3(w) != 0 {
                return err;
            }
            Instr::Jalr {
                rd: rd_of(w),
                rs1: rs1_of(w),
                offset: imm_i(w),
            }
        }
        OP_BRANCH => {
            let cond = match funct3(w) {
                0 => BranchCond::Eq,
                1 => BranchCond::Ne,
                4 => BranchCond::Lt,
                5 => BranchCond::Ge,
                6 => BranchCond::Ltu,
                7 => BranchCond::Geu,
                _ => return err,
            };
            Instr::Branch {
                cond,
                rs1: rs1_of(w),
                rs2: rs2_of(w),
                offset: imm_b(w),
            }
        }
        OP_LOAD => {
            let (width, signed) = match funct3(w) {
                0 => (MemWidth::B, true),
                1 => (MemWidth::H, true),
                2 => (MemWidth::W, true),
                3 => (MemWidth::D, true),
                4 => (MemWidth::B, false),
                5 => (MemWidth::H, false),
                6 => (MemWidth::W, false),
                _ => return err,
            };
            Instr::Load {
                width,
                signed,
                rd: rd_of(w),
                rs1: rs1_of(w),
                offset: imm_i(w),
            }
        }
        OP_STORE => {
            let width = match funct3(w) {
                0 => MemWidth::B,
                1 => MemWidth::H,
                2 => MemWidth::W,
                3 => MemWidth::D,
                _ => return err,
            };
            Instr::Store {
                width,
                rs2: rs2_of(w),
                rs1: rs1_of(w),
                offset: imm_s(w),
            }
        }
        OP_IMM | OP_IMM32 => {
            let word = opc == OP_IMM32;
            let imm = imm_i(w);
            let op = match funct3(w) {
                0 => AluOp::Add,
                1 => {
                    if word && (imm as u32) & !0x1f != 0 {
                        return err;
                    }
                    if !word && (imm as u32) & !0x3f != 0 {
                        return err;
                    }
                    AluOp::Sll
                }
                2 if !word => AluOp::Slt,
                3 if !word => AluOp::Sltu,
                4 if !word => AluOp::Xor,
                5 => {
                    let hi = (imm as u32 >> 6) & 0x3f;
                    match hi {
                        0x00 => AluOp::Srl,
                        0x10 => AluOp::Sra,
                        _ => return err,
                    }
                }
                6 if !word => AluOp::Or,
                7 if !word => AluOp::And,
                _ => return err,
            };
            let imm = match op {
                AluOp::Sll | AluOp::Srl | AluOp::Sra => imm & if word { 0x1f } else { 0x3f },
                _ => imm,
            };
            Instr::Alu {
                op,
                word,
                rd: rd_of(w),
                rs1: rs1_of(w),
                rhs: Rhs::Imm(imm),
            }
        }
        OP_REG | OP_REG32 => {
            let word = opc == OP_REG32;
            let (f3, f7) = (funct3(w), funct7(w));
            if f7 == 0x01 {
                let op = match f3 {
                    0 => MulDivOp::Mul,
                    1 if !word => MulDivOp::Mulh,
                    2 if !word => MulDivOp::Mulhsu,
                    3 if !word => MulDivOp::Mulhu,
                    4 => MulDivOp::Div,
                    5 => MulDivOp::Divu,
                    6 => MulDivOp::Rem,
                    7 => MulDivOp::Remu,
                    _ => return err,
                };
                Instr::MulDiv {
                    op,
                    word,
                    rd: rd_of(w),
                    rs1: rs1_of(w),
                    rs2: rs2_of(w),
                }
            } else {
                let op = match (f3, f7) {
                    (0, 0x00) => AluOp::Add,
                    (0, 0x20) => AluOp::Sub,
                    (1, 0x00) => AluOp::Sll,
                    (2, 0x00) if !word => AluOp::Slt,
                    (3, 0x00) if !word => AluOp::Sltu,
                    (4, 0x00) if !word => AluOp::Xor,
                    (5, 0x00) => AluOp::Srl,
                    (5, 0x20) => AluOp::Sra,
                    (6, 0x00) if !word => AluOp::Or,
                    (7, 0x00) if !word => AluOp::And,
                    _ => return err,
                };
                Instr::Alu {
                    op,
                    word,
                    rd: rd_of(w),
                    rs1: rs1_of(w),
                    rhs: Rhs::Reg(rs2_of(w)),
                }
            }
        }
        OP_AMO => {
            let width = match funct3(w) {
                2 => MemWidth::W,
                3 => MemWidth::D,
                _ => return err,
            };
            let f5 = funct7(w) >> 2;
            match f5 {
                0x02 => {
                    if rs2_of(w) != Gpr::ZERO {
                        return err;
                    }
                    Instr::Lr {
                        width,
                        rd: rd_of(w),
                        rs1: rs1_of(w),
                    }
                }
                0x03 => Instr::Sc {
                    width,
                    rd: rd_of(w),
                    rs1: rs1_of(w),
                    rs2: rs2_of(w),
                },
                _ => {
                    let op = match f5 {
                        0x01 => AmoOp::Swap,
                        0x00 => AmoOp::Add,
                        0x04 => AmoOp::Xor,
                        0x0c => AmoOp::And,
                        0x08 => AmoOp::Or,
                        0x10 => AmoOp::Min,
                        0x14 => AmoOp::Max,
                        0x18 => AmoOp::Minu,
                        0x1c => AmoOp::Maxu,
                        _ => return err,
                    };
                    Instr::Amo {
                        op,
                        width,
                        rd: rd_of(w),
                        rs1: rs1_of(w),
                        rs2: rs2_of(w),
                    }
                }
            }
        }
        OP_SYSTEM => {
            let f3 = funct3(w);
            if f3 == 0 {
                match w >> 7 {
                    0 => Instr::Ecall,
                    x if x == (1 << 13) => Instr::Ebreak,
                    _ => {
                        if funct7(w) == 0x09 && rd_of(w) == Gpr::ZERO {
                            Instr::SfenceVma {
                                rs1: rs1_of(w),
                                rs2: rs2_of(w),
                            }
                        } else {
                            match w >> 20 {
                                0x302 if rd_of(w) == Gpr::ZERO && rs1_of(w) == Gpr::ZERO => {
                                    Instr::Mret
                                }
                                0x102 if rd_of(w) == Gpr::ZERO && rs1_of(w) == Gpr::ZERO => {
                                    Instr::Sret
                                }
                                0x105 if rd_of(w) == Gpr::ZERO && rs1_of(w) == Gpr::ZERO => {
                                    Instr::Wfi
                                }
                                _ => return err,
                            }
                        }
                    }
                }
            } else {
                let op = match f3 & 3 {
                    1 => CsrOp::Rw,
                    2 => CsrOp::Rs,
                    3 => CsrOp::Rc,
                    _ => return err,
                };
                let csr = (w >> 20) as u16;
                let src = if f3 >= 4 {
                    CsrSrc::Imm(((w >> 15) & 0x1f) as u8)
                } else {
                    CsrSrc::Reg(rs1_of(w))
                };
                Instr::Csr {
                    op,
                    rd: rd_of(w),
                    src,
                    csr,
                }
            }
        }
        OP_MISC_MEM => match funct3(w) {
            0 => Instr::Fence,
            1 => Instr::FenceI,
            _ => return err,
        },
        _ => return err,
    };
    Ok(instr)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(i: Instr) {
        let w = i.encode();
        let back = decode(w).unwrap_or_else(|e| panic!("{e} while decoding {i:?}"));
        assert_eq!(back, i, "round trip failed for word {w:#010x}");
    }

    #[test]
    fn roundtrip_core_instructions() {
        let a0 = Gpr::a(0);
        let a1 = Gpr::a(1);
        let t0 = Gpr::t(0);
        roundtrip(Instr::Lui {
            rd: a0,
            imm: 0x12345 << 12,
        });
        roundtrip(Instr::Lui { rd: a0, imm: -4096 });
        roundtrip(Instr::Auipc {
            rd: t0,
            imm: 0x1000,
        });
        roundtrip(Instr::Jal {
            rd: Gpr::RA,
            offset: -2048,
        });
        roundtrip(Instr::Jalr {
            rd: Gpr::ZERO,
            rs1: Gpr::RA,
            offset: 0,
        });
        for cond in [
            BranchCond::Eq,
            BranchCond::Ne,
            BranchCond::Lt,
            BranchCond::Ge,
            BranchCond::Ltu,
            BranchCond::Geu,
        ] {
            roundtrip(Instr::Branch {
                cond,
                rs1: a0,
                rs2: a1,
                offset: -64,
            });
        }
    }

    #[test]
    fn roundtrip_loads_stores() {
        let a0 = Gpr::a(0);
        let s1 = Gpr::s(1);
        for width in [MemWidth::B, MemWidth::H, MemWidth::W, MemWidth::D] {
            roundtrip(Instr::Load {
                width,
                signed: true,
                rd: a0,
                rs1: s1,
                offset: -8,
            });
            roundtrip(Instr::Store {
                width,
                rs2: a0,
                rs1: s1,
                offset: 16,
            });
            if width != MemWidth::D {
                roundtrip(Instr::Load {
                    width,
                    signed: false,
                    rd: a0,
                    rs1: s1,
                    offset: 4,
                });
            }
        }
    }

    #[test]
    fn roundtrip_alu_all_ops() {
        let (a, b, c) = (Gpr::a(0), Gpr::a(1), Gpr::a(2));
        for op in [
            AluOp::Add,
            AluOp::Sub,
            AluOp::Sll,
            AluOp::Slt,
            AluOp::Sltu,
            AluOp::Xor,
            AluOp::Srl,
            AluOp::Sra,
            AluOp::Or,
            AluOp::And,
        ] {
            roundtrip(Instr::Alu {
                op,
                word: false,
                rd: a,
                rs1: b,
                rhs: Rhs::Reg(c),
            });
            if op != AluOp::Sub {
                let imm = match op {
                    AluOp::Sll | AluOp::Srl | AluOp::Sra => 13,
                    _ => -5,
                };
                roundtrip(Instr::Alu {
                    op,
                    word: false,
                    rd: a,
                    rs1: b,
                    rhs: Rhs::Imm(imm),
                });
            }
        }
        // Word forms that exist: addw/subw/sllw/srlw/sraw + immediates.
        for op in [AluOp::Add, AluOp::Sub, AluOp::Sll, AluOp::Srl, AluOp::Sra] {
            roundtrip(Instr::Alu {
                op,
                word: true,
                rd: a,
                rs1: b,
                rhs: Rhs::Reg(c),
            });
        }
        for op in [AluOp::Add, AluOp::Sll, AluOp::Srl, AluOp::Sra] {
            let imm = if op == AluOp::Add { 100 } else { 7 };
            roundtrip(Instr::Alu {
                op,
                word: true,
                rd: a,
                rs1: b,
                rhs: Rhs::Imm(imm),
            });
        }
    }

    #[test]
    fn roundtrip_muldiv() {
        let (a, b, c) = (Gpr::a(0), Gpr::a(1), Gpr::a(2));
        for op in [
            MulDivOp::Mul,
            MulDivOp::Mulh,
            MulDivOp::Mulhsu,
            MulDivOp::Mulhu,
            MulDivOp::Div,
            MulDivOp::Divu,
            MulDivOp::Rem,
            MulDivOp::Remu,
        ] {
            roundtrip(Instr::MulDiv {
                op,
                word: false,
                rd: a,
                rs1: b,
                rs2: c,
            });
        }
        for op in [
            MulDivOp::Mul,
            MulDivOp::Div,
            MulDivOp::Divu,
            MulDivOp::Rem,
            MulDivOp::Remu,
        ] {
            roundtrip(Instr::MulDiv {
                op,
                word: true,
                rd: a,
                rs1: b,
                rs2: c,
            });
        }
    }

    #[test]
    fn roundtrip_atomics() {
        let (a, b, c) = (Gpr::a(0), Gpr::a(1), Gpr::a(2));
        for width in [MemWidth::W, MemWidth::D] {
            roundtrip(Instr::Lr {
                width,
                rd: a,
                rs1: b,
            });
            roundtrip(Instr::Sc {
                width,
                rd: a,
                rs1: b,
                rs2: c,
            });
            for op in [
                AmoOp::Swap,
                AmoOp::Add,
                AmoOp::Xor,
                AmoOp::And,
                AmoOp::Or,
                AmoOp::Min,
                AmoOp::Max,
                AmoOp::Minu,
                AmoOp::Maxu,
            ] {
                roundtrip(Instr::Amo {
                    op,
                    width,
                    rd: a,
                    rs1: b,
                    rs2: c,
                });
            }
        }
    }

    #[test]
    fn roundtrip_system() {
        roundtrip(Instr::Ecall);
        roundtrip(Instr::Ebreak);
        roundtrip(Instr::Mret);
        roundtrip(Instr::Sret);
        roundtrip(Instr::Wfi);
        roundtrip(Instr::Fence);
        roundtrip(Instr::FenceI);
        roundtrip(Instr::SfenceVma {
            rs1: Gpr::a(0),
            rs2: Gpr::ZERO,
        });
        for op in [CsrOp::Rw, CsrOp::Rs, CsrOp::Rc] {
            roundtrip(Instr::Csr {
                op,
                rd: Gpr::a(0),
                src: CsrSrc::Reg(Gpr::a(1)),
                csr: 0x300,
            });
            roundtrip(Instr::Csr {
                op,
                rd: Gpr::ZERO,
                src: CsrSrc::Imm(17),
                csr: 0x180,
            });
        }
    }

    #[test]
    fn illegal_words_rejected() {
        assert!(decode(0).is_err());
        assert!(decode(0xffff_ffff).is_err());
        assert!(decode(0x0000_007f).is_err());
    }

    #[test]
    fn immediate_extraction_signs() {
        // addi a0, a0, -1
        let w = Instr::Alu {
            op: AluOp::Add,
            word: false,
            rd: Gpr::a(0),
            rs1: Gpr::a(0),
            rhs: Rhs::Imm(-1),
        }
        .encode();
        match decode(w).unwrap() {
            Instr::Alu {
                rhs: Rhs::Imm(i), ..
            } => assert_eq!(i, -1),
            other => panic!("wrong decode: {other:?}"),
        }
    }

    #[test]
    fn classification_helpers() {
        let ld = Instr::Load {
            width: MemWidth::D,
            signed: true,
            rd: Gpr::a(0),
            rs1: Gpr::a(1),
            offset: 0,
        };
        assert!(ld.is_mem_read());
        assert!(!ld.is_mem_write());
        let amo = Instr::Amo {
            op: AmoOp::Add,
            width: MemWidth::W,
            rd: Gpr::a(0),
            rs1: Gpr::a(1),
            rs2: Gpr::a(2),
        };
        assert!(amo.is_mem_read() && amo.is_mem_write());
        assert!(Instr::Jal {
            rd: Gpr::ZERO,
            offset: 8
        }
        .is_branch_or_jump());
    }
}
