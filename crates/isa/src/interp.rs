//! The golden-model ISA interpreter (substitute for Spike, the "golden model
//! for RISC-V implementations" the paper validates against).
//!
//! [`Machine`] executes RV64IMA+Zicsr with M/S/U privilege and Sv39 paging,
//! one instruction per [`Machine::step`]. Both processor implementations in
//! this repository are checked against it instruction-by-instruction
//! (lock-step co-simulation at commit).

use crate::asm::Program;
use crate::csr::{CsrFile, Exception, Priv};
use crate::inst::{
    decode, AluOp, AmoOp, BranchCond, CsrOp, CsrSrc, Instr, MemWidth, MulDivOp, Rhs,
};
use crate::mem::{is_mmio, SparseMem, MMIO_EXIT, MMIO_PUTCHAR, MMIO_ROI};
use crate::reg::Gpr;
use crate::vm::{self, Access};

/// Architectural state of one hart.
#[derive(Debug, Clone)]
pub struct Hart {
    /// Hart id (mhartid).
    pub id: usize,
    /// Program counter.
    pub pc: u64,
    /// Integer register file (`regs[0]` is kept at zero).
    pub regs: [u64; 32],
    /// Current privilege.
    pub priv_mode: Priv,
    /// CSR file.
    pub csrs: CsrFile,
    /// Retired instruction count.
    pub instret: u64,
    /// Exit code once the hart has halted via the MMIO exit register.
    pub halted: Option<u64>,
    /// LR reservation (64-byte line address).
    pub reservation: Option<u64>,
    /// Instret at ROI begin (while inside a region of interest).
    pub roi_start: Option<u64>,
    /// Total instructions retired inside ROIs.
    pub roi_insts: u64,
}

impl Hart {
    fn new(id: usize, pc: u64) -> Self {
        Hart {
            id,
            pc,
            regs: [0; 32],
            priv_mode: Priv::M,
            csrs: CsrFile::new(id as u64),
            instret: 0,
            halted: None,
            reservation: None,
            roi_start: None,
            roi_insts: 0,
        }
    }

    /// Reads a GPR.
    #[must_use]
    pub fn reg(&self, r: Gpr) -> u64 {
        self.regs[r.index()]
    }

    /// Writes a GPR (writes to `x0` are discarded).
    pub fn set_reg(&mut self, r: Gpr, v: u64) {
        if !r.is_zero() {
            self.regs[r.index()] = v;
        }
    }
}

cmd_core::snap_struct!(Hart {
    id,
    pc,
    regs,
    priv_mode,
    csrs,
    instret,
    halted,
    reservation,
    roi_start,
    roi_insts,
});

/// What one [`Machine::step`] did, for commit-level co-simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Commit {
    /// PC of the retired (or trapping) instruction.
    pub pc: u64,
    /// The next PC after this step.
    pub next_pc: u64,
    /// Destination register write, if any.
    pub rd: Option<(Gpr, u64)>,
    /// Exception taken by this instruction, if any.
    pub trap: Option<Exception>,
}

/// Outcome of one step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// An instruction retired (possibly by trapping).
    Retired(Commit),
    /// The hart halted *on this step* via the MMIO exit register.
    Halted(u64),
    /// The hart had already halted; nothing happened.
    AlreadyHalted,
}

/// A whole shared-memory machine: physical memory plus `n` harts.
#[derive(Debug, Clone)]
pub struct Machine {
    /// Physical memory.
    pub mem: SparseMem,
    harts: Vec<Hart>,
    console: Vec<u8>,
}

cmd_core::snap_struct!(Machine {
    mem,
    harts,
    console
});

impl Machine {
    /// Creates a machine with `num_harts` harts, all starting at `entry` in
    /// M-mode.
    #[must_use]
    pub fn new(num_harts: usize, entry: u64) -> Self {
        Machine {
            mem: SparseMem::new(),
            harts: (0..num_harts).map(|i| Hart::new(i, entry)).collect(),
            console: Vec::new(),
        }
    }

    /// Creates a machine and loads `program` into memory.
    #[must_use]
    pub fn with_program(num_harts: usize, program: &Program) -> Self {
        let mut m = Machine::new(num_harts, program.entry);
        program.load(&mut m.mem);
        m
    }

    /// Immutable access to a hart.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn hart(&self, id: usize) -> &Hart {
        &self.harts[id]
    }

    /// Mutable access to a hart (test setup).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn hart_mut(&mut self, id: usize) -> &mut Hart {
        &mut self.harts[id]
    }

    /// Number of harts.
    #[must_use]
    pub fn num_harts(&self) -> usize {
        self.harts.len()
    }

    /// Bytes written to the console device so far.
    #[must_use]
    pub fn console(&self) -> &[u8] {
        &self.console
    }

    /// Whether every hart has halted.
    #[must_use]
    pub fn all_halted(&self) -> bool {
        self.harts.iter().all(|h| h.halted.is_some())
    }

    fn translate(&self, hart: &Hart, va: u64, access: Access) -> Result<u64, Exception> {
        if hart.priv_mode == Priv::M || !vm::satp_sv39_enabled(hart.csrs.satp) {
            return Ok(va);
        }
        let root = vm::satp_root_ppn(hart.csrs.satp);
        vm::walk_sv39(root, va, access, hart.priv_mode, |pa| self.mem.read_u64(pa))
            .map(|t| t.pa)
            .map_err(|_| match access {
                Access::Fetch => Exception::InstPageFault,
                Access::Load => Exception::LoadPageFault,
                Access::Store => Exception::StorePageFault,
            })
    }

    fn mmio_store(&mut self, hart_id: usize, pa: u64, v: u64) {
        if (MMIO_EXIT..MMIO_EXIT + 8 * 8).contains(&pa) {
            let target = ((pa - MMIO_EXIT) / 8) as usize;
            if let Some(h) = self.harts.get_mut(target) {
                h.halted = Some(v);
            }
        } else if pa == MMIO_PUTCHAR {
            self.console.push(v as u8);
        } else if pa == MMIO_ROI {
            let h = &mut self.harts[hart_id];
            if v != 0 {
                h.roi_start = Some(h.instret);
            } else if let Some(s) = h.roi_start.take() {
                h.roi_insts += h.instret - s;
            }
        }
    }

    /// Invalidate other harts' reservations overlapping a written line.
    fn break_reservations(&mut self, writer: usize, pa: u64) {
        let line = pa & !63;
        for h in &mut self.harts {
            if h.id != writer && h.reservation == Some(line) {
                h.reservation = None;
            }
        }
    }

    /// Executes one instruction on hart `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[allow(clippy::too_many_lines)]
    pub fn step(&mut self, id: usize) -> StepOutcome {
        if self.harts[id].halted.is_some() {
            return StepOutcome::AlreadyHalted;
        }
        let pc = self.harts[id].pc;

        // Fetch.
        let fetch_pa = match self.translate(&self.harts[id], pc, Access::Fetch) {
            Ok(pa) => pa,
            Err(e) => return StepOutcome::Retired(self.take_trap(id, e, pc, pc)),
        };
        let word = self.mem.read_le(fetch_pa, 4) as u32;
        let instr = match decode(word) {
            Ok(i) => i,
            Err(_) => {
                return StepOutcome::Retired(self.take_trap(
                    id,
                    Exception::IllegalInst,
                    pc,
                    u64::from(word),
                ))
            }
        };

        let mut next_pc = pc.wrapping_add(4);
        let mut rd_write: Option<(Gpr, u64)> = None;

        macro_rules! trap {
            ($e:expr, $tval:expr) => {{
                return StepOutcome::Retired(self.take_trap(id, $e, pc, $tval));
            }};
        }

        match instr {
            Instr::Lui { rd, imm } => rd_write = Some((rd, imm as u64)),
            Instr::Auipc { rd, imm } => rd_write = Some((rd, pc.wrapping_add(imm as u64))),
            Instr::Jal { rd, offset } => {
                rd_write = Some((rd, next_pc));
                next_pc = pc.wrapping_add(offset as i64 as u64);
            }
            Instr::Jalr { rd, rs1, offset } => {
                let t = self.harts[id].reg(rs1).wrapping_add(offset as i64 as u64) & !1;
                rd_write = Some((rd, next_pc));
                next_pc = t;
            }
            Instr::Branch {
                cond,
                rs1,
                rs2,
                offset,
            } => {
                let (a, b) = (self.harts[id].reg(rs1), self.harts[id].reg(rs2));
                let taken = match cond {
                    BranchCond::Eq => a == b,
                    BranchCond::Ne => a != b,
                    BranchCond::Lt => (a as i64) < (b as i64),
                    BranchCond::Ge => (a as i64) >= (b as i64),
                    BranchCond::Ltu => a < b,
                    BranchCond::Geu => a >= b,
                };
                if taken {
                    next_pc = pc.wrapping_add(offset as i64 as u64);
                }
            }
            Instr::Load {
                width,
                signed,
                rd,
                rs1,
                offset,
            } => {
                let va = self.harts[id].reg(rs1).wrapping_add(offset as i64 as u64);
                if !va.is_multiple_of(width.bytes()) {
                    trap!(Exception::LoadAddrMisaligned, va);
                }
                let pa = match self.translate(&self.harts[id], va, Access::Load) {
                    Ok(pa) => pa,
                    Err(e) => trap!(e, va),
                };
                let raw = if is_mmio(pa) {
                    0
                } else {
                    self.mem.read_le(pa, width.bytes())
                };
                let v = if signed {
                    let bits = 8 * width.bytes() as u32;
                    if bits == 64 {
                        raw
                    } else {
                        (((raw << (64 - bits)) as i64) >> (64 - bits)) as u64
                    }
                } else {
                    raw
                };
                rd_write = Some((rd, v));
            }
            Instr::Store {
                width,
                rs2,
                rs1,
                offset,
            } => {
                let va = self.harts[id].reg(rs1).wrapping_add(offset as i64 as u64);
                if !va.is_multiple_of(width.bytes()) {
                    trap!(Exception::StoreAddrMisaligned, va);
                }
                let pa = match self.translate(&self.harts[id], va, Access::Store) {
                    Ok(pa) => pa,
                    Err(e) => trap!(e, va),
                };
                let v = self.harts[id].reg(rs2);
                if is_mmio(pa) {
                    self.mmio_store(id, pa, v);
                } else {
                    self.mem.write_le(pa, width.bytes(), v);
                    self.break_reservations(id, pa);
                }
            }
            Instr::Alu {
                op,
                word,
                rd,
                rs1,
                rhs,
            } => {
                let a = self.harts[id].reg(rs1);
                let b = match rhs {
                    Rhs::Reg(r) => self.harts[id].reg(r),
                    Rhs::Imm(i) => i as i64 as u64,
                };
                let v = alu_exec(op, word, a, b);
                rd_write = Some((rd, v));
            }
            Instr::MulDiv {
                op,
                word,
                rd,
                rs1,
                rs2,
            } => {
                let a = self.harts[id].reg(rs1);
                let b = self.harts[id].reg(rs2);
                rd_write = Some((rd, muldiv_exec(op, word, a, b)));
            }
            Instr::Lr { width, rd, rs1 } => {
                let va = self.harts[id].reg(rs1);
                if !va.is_multiple_of(width.bytes()) {
                    trap!(Exception::LoadAddrMisaligned, va);
                }
                let pa = match self.translate(&self.harts[id], va, Access::Load) {
                    Ok(pa) => pa,
                    Err(e) => trap!(e, va),
                };
                let raw = self.mem.read_le(pa, width.bytes());
                let v = if width == MemWidth::W {
                    raw as u32 as i32 as i64 as u64
                } else {
                    raw
                };
                self.harts[id].reservation = Some(pa & !63);
                rd_write = Some((rd, v));
            }
            Instr::Sc {
                width,
                rd,
                rs1,
                rs2,
            } => {
                let va = self.harts[id].reg(rs1);
                if !va.is_multiple_of(width.bytes()) {
                    trap!(Exception::StoreAddrMisaligned, va);
                }
                let pa = match self.translate(&self.harts[id], va, Access::Store) {
                    Ok(pa) => pa,
                    Err(e) => trap!(e, va),
                };
                let ok = self.harts[id].reservation == Some(pa & !63);
                self.harts[id].reservation = None;
                if ok {
                    let v = self.harts[id].reg(rs2);
                    self.mem.write_le(pa, width.bytes(), v);
                    self.break_reservations(id, pa);
                    rd_write = Some((rd, 0));
                } else {
                    rd_write = Some((rd, 1));
                }
            }
            Instr::Amo {
                op,
                width,
                rd,
                rs1,
                rs2,
            } => {
                let va = self.harts[id].reg(rs1);
                if !va.is_multiple_of(width.bytes()) {
                    trap!(Exception::StoreAddrMisaligned, va);
                }
                let pa = match self.translate(&self.harts[id], va, Access::Store) {
                    Ok(pa) => pa,
                    Err(e) => trap!(e, va),
                };
                let raw = self.mem.read_le(pa, width.bytes());
                let old = if width == MemWidth::W {
                    raw as u32 as i32 as i64 as u64
                } else {
                    raw
                };
                let src = self.harts[id].reg(rs2);
                let new = amo_exec(op, width, old, src);
                self.mem.write_le(pa, width.bytes(), new);
                self.break_reservations(id, pa);
                rd_write = Some((rd, old));
            }
            Instr::Csr { op, rd, src, csr } => {
                let h = &mut self.harts[id];
                let old = h.csrs.read(csr, h.instret, h.instret);
                let srcv = match src {
                    CsrSrc::Reg(r) => h.reg(r),
                    CsrSrc::Imm(z) => u64::from(z),
                };
                let write = match op {
                    CsrOp::Rw => Some(srcv),
                    CsrOp::Rs => {
                        if matches!(src, CsrSrc::Reg(r) if r.is_zero())
                            || matches!(src, CsrSrc::Imm(0))
                        {
                            None
                        } else {
                            Some(old | srcv)
                        }
                    }
                    CsrOp::Rc => {
                        if matches!(src, CsrSrc::Reg(r) if r.is_zero())
                            || matches!(src, CsrSrc::Imm(0))
                        {
                            None
                        } else {
                            Some(old & !srcv)
                        }
                    }
                };
                if let Some(v) = write {
                    h.csrs.write(csr, v);
                }
                rd_write = Some((rd, old));
            }
            Instr::Fence | Instr::FenceI | Instr::Wfi => {}
            Instr::SfenceVma { .. } => {}
            Instr::Ecall => {
                let p = self.harts[id].priv_mode;
                trap!(Exception::Ecall(p), 0);
            }
            Instr::Ebreak => trap!(Exception::Breakpoint, pc),
            Instr::Mret => {
                if self.harts[id].priv_mode != Priv::M {
                    trap!(Exception::IllegalInst, u64::from(word));
                }
                let (epc, p) = self.harts[id].csrs.mret();
                next_pc = epc;
                self.harts[id].priv_mode = p;
            }
            Instr::Sret => {
                if self.harts[id].priv_mode == Priv::U {
                    trap!(Exception::IllegalInst, u64::from(word));
                }
                let (epc, p) = self.harts[id].csrs.sret();
                next_pc = epc;
                self.harts[id].priv_mode = p;
            }
        }

        let h = &mut self.harts[id];
        if let Some((rd, v)) = rd_write {
            h.set_reg(rd, v);
        }
        h.pc = next_pc;
        h.instret += 1;
        if let Some(code) = h.halted {
            return StepOutcome::Halted(code);
        }
        StepOutcome::Retired(Commit {
            pc,
            next_pc,
            rd: rd_write.filter(|(r, _)| !r.is_zero()),
            trap: None,
        })
    }

    fn take_trap(&mut self, id: usize, e: Exception, pc: u64, tval: u64) -> Commit {
        let h = &mut self.harts[id];
        let from = h.priv_mode;
        let vec = h.csrs.trap_to_m(e, pc, tval, from);
        h.priv_mode = Priv::M;
        h.pc = vec;
        h.instret += 1;
        Commit {
            pc,
            next_pc: vec,
            rd: None,
            trap: Some(e),
        }
    }

    /// Steps all live harts round-robin until every hart halts or
    /// `max_steps` total instructions retire.
    ///
    /// # Errors
    ///
    /// Returns the number of instructions executed if the budget is
    /// exhausted first.
    pub fn run(&mut self, max_steps: u64) -> Result<u64, u64> {
        let n = self.harts.len();
        let mut executed = 0;
        while executed < max_steps {
            if self.all_halted() {
                return Ok(executed);
            }
            for id in 0..n {
                if self.harts[id].halted.is_none() {
                    self.step(id);
                    executed += 1;
                }
            }
        }
        if self.all_halted() {
            Ok(executed)
        } else {
            Err(executed)
        }
    }
}

/// Executes an ALU operation (shared with the hardware models).
#[must_use]
pub fn alu_exec(op: AluOp, word: bool, a: u64, b: u64) -> u64 {
    let v = match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Sll => {
            let sh = if word { b & 0x1f } else { b & 0x3f };
            a.wrapping_shl(sh as u32)
        }
        AluOp::Slt => u64::from((a as i64) < (b as i64)),
        AluOp::Sltu => u64::from(a < b),
        AluOp::Xor => a ^ b,
        AluOp::Srl => {
            if word {
                u64::from((a as u32) >> (b & 0x1f))
            } else {
                a >> (b & 0x3f)
            }
        }
        AluOp::Sra => {
            if word {
                ((a as u32 as i32) >> (b & 0x1f)) as u64
            } else {
                ((a as i64) >> (b & 0x3f)) as u64
            }
        }
        AluOp::Or => a | b,
        AluOp::And => a & b,
    };
    if word {
        v as u32 as i32 as i64 as u64
    } else {
        v
    }
}

/// Executes an M-extension operation (shared with the hardware models).
#[must_use]
pub fn muldiv_exec(op: MulDivOp, word: bool, a: u64, b: u64) -> u64 {
    if word {
        let (a32, b32) = (a as u32, b as u32);
        let v = match op {
            MulDivOp::Mul => a32.wrapping_mul(b32),
            MulDivOp::Div => {
                let (a, b) = (a32 as i32, b32 as i32);
                if b == 0 {
                    u32::MAX
                } else {
                    a.wrapping_div(b) as u32
                }
            }
            MulDivOp::Divu => a32.checked_div(b32).unwrap_or(u32::MAX),
            MulDivOp::Rem => {
                let (a, b) = (a32 as i32, b32 as i32);
                if b == 0 {
                    a as u32
                } else {
                    a.wrapping_rem(b) as u32
                }
            }
            MulDivOp::Remu => {
                if b32 == 0 {
                    a32
                } else {
                    a32 % b32
                }
            }
            _ => unreachable!("no word form for {op:?}"),
        };
        v as i32 as i64 as u64
    } else {
        match op {
            MulDivOp::Mul => a.wrapping_mul(b),
            MulDivOp::Mulh => (((a as i64 as i128) * (b as i64 as i128)) >> 64) as u64,
            MulDivOp::Mulhsu => (((a as i64 as i128) * (b as u128 as i128)) >> 64) as u64,
            MulDivOp::Mulhu => ((u128::from(a) * u128::from(b)) >> 64) as u64,
            MulDivOp::Div => {
                let (ai, bi) = (a as i64, b as i64);
                if bi == 0 {
                    u64::MAX
                } else {
                    ai.wrapping_div(bi) as u64
                }
            }
            MulDivOp::Divu => a.checked_div(b).unwrap_or(u64::MAX),
            MulDivOp::Rem => {
                let (ai, bi) = (a as i64, b as i64);
                if bi == 0 {
                    a
                } else {
                    ai.wrapping_rem(bi) as u64
                }
            }
            MulDivOp::Remu => {
                if b == 0 {
                    a
                } else {
                    a % b
                }
            }
        }
    }
}

/// Executes an AMO's ALU half (shared with the hardware models).
#[must_use]
pub fn amo_exec(op: AmoOp, width: MemWidth, old: u64, src: u64) -> u64 {
    let (a, b) = if width == MemWidth::W {
        (old as u32 as u64, src as u32 as u64)
    } else {
        (old, src)
    };

    match op {
        AmoOp::Swap => b,
        AmoOp::Add => a.wrapping_add(b),
        AmoOp::Xor => a ^ b,
        AmoOp::And => a & b,
        AmoOp::Or => a | b,
        AmoOp::Min => {
            if width == MemWidth::W {
                (a as u32 as i32).min(b as u32 as i32) as u32 as u64
            } else if (a as i64) < (b as i64) {
                a
            } else {
                b
            }
        }
        AmoOp::Max => {
            if width == MemWidth::W {
                (a as u32 as i32).max(b as u32 as i32) as u32 as u64
            } else if (a as i64) > (b as i64) {
                a
            } else {
                b
            }
        }
        AmoOp::Minu => a.min(b),
        AmoOp::Maxu => a.max(b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;
    use crate::csr::addr as csr_addr;
    use crate::mem::DRAM_BASE;

    fn exit_seq(a: &mut Assembler, code: i64) {
        // li t6, MMIO_EXIT; li t5, code; sd t5, 0(t6)
        a.li(Gpr::t(6), MMIO_EXIT as i64);
        a.li(Gpr::t(5), code);
        a.sd(Gpr::t(5), 0, Gpr::t(6));
    }

    fn run_to_halt(a: Assembler) -> Machine {
        let p = a.assemble();
        let mut m = Machine::with_program(1, &p);
        m.run(1_000_000).expect("program must halt");
        m
    }

    #[test]
    fn arithmetic_loop_sums() {
        let mut a = Assembler::new(DRAM_BASE);
        let (t0, t1) = (Gpr::t(0), Gpr::t(1));
        a.li(t0, 100);
        a.li(t1, 0);
        a.label("loop");
        a.add(t1, t1, t0);
        a.addi(t0, t0, -1);
        a.bnez(t0, "loop");
        exit_seq(&mut a, 0);
        let m = run_to_halt(a);
        assert_eq!(m.hart(0).reg(Gpr::t(1)), 5050);
    }

    #[test]
    fn loads_stores_roundtrip() {
        let mut a = Assembler::new(DRAM_BASE);
        let (t0, t1, t2) = (Gpr::t(0), Gpr::t(1), Gpr::t(2));
        a.li(t0, (DRAM_BASE + 0x1000) as i64);
        a.li(t1, -12345);
        a.sd(t1, 0, t0);
        a.ld(t2, 0, t0);
        a.sw(t1, 8, t0);
        a.lw(Gpr::t(3), 8, t0);
        a.lbu(Gpr::t(4), 8, t0);
        exit_seq(&mut a, 0);
        let m = run_to_halt(a);
        assert_eq!(m.hart(0).reg(Gpr::t(2)), (-12345i64) as u64);
        assert_eq!(m.hart(0).reg(Gpr::t(3)), (-12345i64) as u64); // lw sign-extends
        assert_eq!(m.hart(0).reg(Gpr::t(4)), (-12345i64 as u64) & 0xff);
    }

    #[test]
    fn muldiv_semantics() {
        let mut a = Assembler::new(DRAM_BASE);
        a.li(Gpr::a(0), -7);
        a.li(Gpr::a(1), 3);
        a.mul(Gpr::a(2), Gpr::a(0), Gpr::a(1));
        a.div(Gpr::a(3), Gpr::a(0), Gpr::a(1));
        a.muldiv(MulDivOp::Rem, Gpr::a(4), Gpr::a(0), Gpr::a(1));
        a.li(Gpr::a(5), 5);
        a.div(Gpr::a(6), Gpr::a(5), Gpr::ZERO); // div by zero -> all ones
        exit_seq(&mut a, 0);
        let m = run_to_halt(a);
        assert_eq!(m.hart(0).reg(Gpr::a(2)), (-21i64) as u64);
        assert_eq!(m.hart(0).reg(Gpr::a(3)), (-2i64) as u64);
        assert_eq!(m.hart(0).reg(Gpr::a(4)), (-1i64) as u64);
        assert_eq!(m.hart(0).reg(Gpr::a(6)), u64::MAX);
    }

    #[test]
    fn function_call_and_return() {
        let mut a = Assembler::new(DRAM_BASE);
        a.li(Gpr::a(0), 5);
        a.call("double");
        a.mv(Gpr::s(0), Gpr::a(0));
        exit_seq(&mut a, 0);
        a.label("double");
        a.add(Gpr::a(0), Gpr::a(0), Gpr::a(0));
        a.ret();
        let m = run_to_halt(a);
        assert_eq!(m.hart(0).reg(Gpr::s(0)), 10);
    }

    #[test]
    fn amoadd_and_lrsc() {
        let mut a = Assembler::new(DRAM_BASE);
        let addr = (DRAM_BASE + 0x2000) as i64;
        a.li(Gpr::t(0), addr);
        a.li(Gpr::t(1), 5);
        a.sd(Gpr::t(1), 0, Gpr::t(0));
        a.li(Gpr::t(2), 3);
        a.amoadd_d(Gpr::t(3), Gpr::t(2), Gpr::t(0)); // t3 = 5, mem = 8
        a.lr_d(Gpr::t(4), Gpr::t(0)); // t4 = 8
        a.addi(Gpr::t(4), Gpr::t(4), 1);
        a.sc_d(Gpr::s(1), Gpr::t(4), Gpr::t(0)); // success: s1 = 0, mem = 9
        a.sc_d(Gpr::s(2), Gpr::t(4), Gpr::t(0)); // no reservation: s2 = 1
        a.ld(Gpr::s(0), 0, Gpr::t(0));
        a.mv(Gpr::s(3), Gpr::t(3));
        exit_seq(&mut a, 0);
        let m = run_to_halt(a);
        assert_eq!(m.hart(0).reg(Gpr::s(3)), 5);
        assert_eq!(m.hart(0).reg(Gpr::s(1)), 0);
        assert_eq!(m.hart(0).reg(Gpr::s(2)), 1);
        assert_eq!(m.hart(0).reg(Gpr::s(0)), 9);
    }

    #[test]
    fn ecall_traps_to_mtvec_and_mret_returns() {
        let mut a = Assembler::new(DRAM_BASE);
        a.la(Gpr::t(0), "handler");
        a.csrw(csr_addr::MTVEC, Gpr::t(0));
        a.li(Gpr::s(0), 0);
        a.ecall();
        a.li(Gpr::s(1), 77); // executed after mret
        exit_seq(&mut a, 0);
        a.label("handler");
        a.li(Gpr::s(0), 42);
        a.csrr(Gpr::t(1), csr_addr::MEPC);
        a.addi(Gpr::t(1), Gpr::t(1), 4);
        a.csrw(csr_addr::MEPC, Gpr::t(1));
        a.mret();
        let m = run_to_halt(a);
        assert_eq!(m.hart(0).reg(Gpr::s(0)), 42);
        assert_eq!(m.hart(0).reg(Gpr::s(1)), 77);
    }

    #[test]
    fn console_output() {
        let mut a = Assembler::new(DRAM_BASE);
        a.li(Gpr::t(0), MMIO_PUTCHAR as i64);
        for &c in b"hi" {
            a.li(Gpr::t(1), i64::from(c));
            a.sd(Gpr::t(1), 0, Gpr::t(0));
        }
        exit_seq(&mut a, 0);
        let m = run_to_halt(a);
        assert_eq!(m.console(), b"hi");
    }

    #[test]
    fn roi_counts_instructions() {
        let mut a = Assembler::new(DRAM_BASE);
        a.li(Gpr::t(0), MMIO_ROI as i64);
        a.li(Gpr::t(1), 1);
        a.sd(Gpr::t(1), 0, Gpr::t(0)); // roi begin
        for _ in 0..10 {
            a.nop();
        }
        a.sd(Gpr::ZERO, 0, Gpr::t(0)); // roi end
        exit_seq(&mut a, 0);
        let m = run_to_halt(a);
        // 10 nops + the closing store retire inside the ROI window.
        assert!(m.hart(0).roi_insts >= 10);
        assert!(m.hart(0).roi_insts <= 12);
    }

    #[test]
    fn two_harts_amo_increment_shared_counter() {
        let mut a = Assembler::new(DRAM_BASE);
        let ctr = (DRAM_BASE + 0x3000) as i64;
        // Each hart adds its 1000 increments, then writes its exit register.
        a.li(Gpr::t(0), ctr);
        a.li(Gpr::t(1), 1000);
        a.label("loop");
        a.li(Gpr::t(2), 1);
        a.amoadd_d(Gpr::ZERO, Gpr::t(2), Gpr::t(0));
        a.addi(Gpr::t(1), Gpr::t(1), -1);
        a.bnez(Gpr::t(1), "loop");
        // exit: address = MMIO_EXIT + 8*hartid
        a.csrr(Gpr::t(3), csr_addr::MHARTID);
        a.slli(Gpr::t(3), Gpr::t(3), 3);
        a.li(Gpr::t(4), MMIO_EXIT as i64);
        a.add(Gpr::t(4), Gpr::t(4), Gpr::t(3));
        a.sd(Gpr::ZERO, 0, Gpr::t(4));
        let p = a.assemble();
        let mut m = Machine::with_program(2, &p);
        m.run(1_000_000).expect("both harts halt");
        assert_eq!(m.mem.read_u64(ctr as u64), 2000);
    }

    #[test]
    fn sc_fails_after_remote_store() {
        let mut a = Assembler::new(DRAM_BASE);
        exit_seq(&mut a, 0);
        let p = a.assemble();
        let mut m = Machine::with_program(2, &p);
        // Hand-drive: hart 0 takes a reservation; hart 1 stores to the line.
        let addr = DRAM_BASE + 0x4000;
        m.hart_mut(0).regs[5] = addr; // t0
        m.hart_mut(1).regs[5] = addr;
        m.hart_mut(1).regs[6] = 99; // t1
        let lr = Instr::Lr {
            width: MemWidth::D,
            rd: Gpr::t(1),
            rs1: Gpr::t(0),
        };
        let st = Instr::Store {
            width: MemWidth::D,
            rs2: Gpr::t(1),
            rs1: Gpr::t(0),
            offset: 8,
        };
        let sc = Instr::Sc {
            width: MemWidth::D,
            rd: Gpr::t(2),
            rs1: Gpr::t(0),
            rs2: Gpr::t(1),
        };
        let scratch = DRAM_BASE + 0x5000;
        m.mem.write_le(scratch, 4, u64::from(lr.encode()));
        m.mem.write_le(scratch + 4, 4, u64::from(sc.encode()));
        m.mem.write_le(scratch + 8, 4, u64::from(st.encode()));
        m.hart_mut(0).pc = scratch;
        m.hart_mut(1).pc = scratch + 8;
        m.step(0); // hart0: lr
        m.step(1); // hart1: store to same line -> breaks reservation
        m.step(0); // hart0: sc must fail
        assert_eq!(m.hart(0).reg(Gpr::t(2)), 1, "sc must fail");
    }

    #[test]
    fn illegal_instruction_traps() {
        let mut a = Assembler::new(DRAM_BASE);
        a.la(Gpr::t(0), "handler");
        a.csrw(csr_addr::MTVEC, Gpr::t(0));
        a.push(Instr::Ebreak); // placeholder; we'll overwrite with garbage
        a.label("handler");
        exit_seq(&mut a, 3);
        let p = a.assemble();
        let mut m = Machine::with_program(1, &p);
        // Overwrite the ebreak with an illegal word.
        let ebreak_pc = p.text_base + 4 * 4; // la(2) + csrw(1) + ... compute below
        let _ = ebreak_pc;
        // Find it: scan for the ebreak encoding.
        let mut pc = p.text_base;
        loop {
            let w = m.mem.read_le(pc, 4) as u32;
            if w == Instr::Ebreak.encode() {
                m.mem.write_le(pc, 4, 0xffff_ffff);
                break;
            }
            pc += 4;
        }
        m.run(1000).unwrap();
        assert_eq!(m.hart(0).halted, Some(3));
        assert_eq!(m.hart(0).csrs.mcause, Exception::IllegalInst.cause());
    }
}
