//! Sparse physical memory, the platform address map, and MMIO definitions.
//!
//! The map mirrors a typical RISC-V SoC: DRAM at `0x8000_0000`, an MMIO
//! device block below it. The MMIO devices substitute for the paper's
//! host-target interface (HTIF): per-hart exit registers, a console, and
//! region-of-interest (ROI) markers used by every benchmark harness.

use std::collections::HashMap;

/// Base of cacheable DRAM.
pub const DRAM_BASE: u64 = 0x8000_0000;

/// Base of the MMIO device block (non-cacheable).
pub const MMIO_BASE: u64 = 0x1000_0000;
/// One-past-the-end of the MMIO block.
pub const MMIO_END: u64 = 0x1001_0000;

/// Per-hart exit registers: a store of `code` to `MMIO_EXIT + 8*hart` halts
/// that hart with exit code `code`.
pub const MMIO_EXIT: u64 = MMIO_BASE;
/// Console: a byte stored here is appended to the console log.
pub const MMIO_PUTCHAR: u64 = MMIO_BASE + 0x100;
/// ROI marker: store 1 at region-of-interest begin, 0 at end.
pub const MMIO_ROI: u64 = MMIO_BASE + 0x200;

/// Whether `pa` lies in the MMIO block.
#[must_use]
pub fn is_mmio(pa: u64) -> bool {
    (MMIO_BASE..MMIO_END).contains(&pa)
}

const PAGE_BYTES: usize = 4096;

/// Byte-addressable sparse physical memory (allocates 4 KiB frames on first
/// touch; unwritten memory reads as zero).
#[derive(Default, Clone)]
pub struct SparseMem {
    pages: HashMap<u64, Box<[u8; PAGE_BYTES]>>,
}

impl cmd_core::snap::Snap for SparseMem {
    /// Pages are written in sorted frame order so repeated saves of the
    /// same memory are byte-identical (the backing `HashMap` iterates in
    /// arbitrary order).
    fn save(&self, w: &mut cmd_core::snap::SnapWriter) {
        let mut keys: Vec<u64> = self.pages.keys().copied().collect();
        keys.sort_unstable();
        w.len_prefix(keys.len());
        for k in keys {
            w.u64(k);
            w.bytes(&self.pages[&k][..]);
        }
    }

    fn load(r: &mut cmd_core::snap::SnapReader<'_>) -> Result<Self, cmd_core::snap::SnapError> {
        let n = r.len_prefix()?;
        let mut pages = HashMap::with_capacity(n);
        for _ in 0..n {
            let k = r.u64()?;
            let bytes = r.bytes(PAGE_BYTES)?;
            let mut page = Box::new([0u8; PAGE_BYTES]);
            page.copy_from_slice(bytes);
            pages.insert(k, page);
        }
        Ok(SparseMem { pages })
    }
}

impl std::fmt::Debug for SparseMem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SparseMem")
            .field("resident_pages", &self.pages.len())
            .finish()
    }
}

impl SparseMem {
    /// Creates an empty memory.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of resident (touched) 4 KiB frames.
    #[must_use]
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Reads one byte.
    #[must_use]
    pub fn read_u8(&self, pa: u64) -> u8 {
        match self.pages.get(&(pa / PAGE_BYTES as u64)) {
            Some(p) => p[(pa % PAGE_BYTES as u64) as usize],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, pa: u64, v: u8) {
        let page = self
            .pages
            .entry(pa / PAGE_BYTES as u64)
            .or_insert_with(|| Box::new([0; PAGE_BYTES]));
        page[(pa % PAGE_BYTES as u64) as usize] = v;
    }

    /// Reads `n <= 8` bytes little-endian (may cross a page boundary).
    #[must_use]
    pub fn read_le(&self, pa: u64, n: u64) -> u64 {
        debug_assert!(n <= 8);
        let mut v = 0u64;
        for i in 0..n {
            v |= u64::from(self.read_u8(pa + i)) << (8 * i);
        }
        v
    }

    /// Writes the low `n <= 8` bytes of `v` little-endian.
    pub fn write_le(&mut self, pa: u64, n: u64, v: u64) {
        debug_assert!(n <= 8);
        for i in 0..n {
            self.write_u8(pa + i, (v >> (8 * i)) as u8);
        }
    }

    /// Reads an aligned 64-bit word (PTE reads, cache refills).
    #[must_use]
    pub fn read_u64(&self, pa: u64) -> u64 {
        self.read_le(pa, 8)
    }

    /// Writes an aligned 64-bit word.
    pub fn write_u64(&mut self, pa: u64, v: u64) {
        self.write_le(pa, 8, v);
    }

    /// Copies a byte slice into memory at `pa`.
    pub fn write_bytes(&mut self, pa: u64, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            self.write_u8(pa + i as u64, b);
        }
    }

    /// Reads an entire aligned 64-byte cache line.
    #[must_use]
    pub fn read_line(&self, pa: u64) -> [u8; 64] {
        debug_assert_eq!(pa % 64, 0, "line reads must be aligned");
        let mut line = [0u8; 64];
        for (i, b) in line.iter_mut().enumerate() {
            *b = self.read_u8(pa + i as u64);
        }
        line
    }

    /// Writes an entire aligned 64-byte cache line.
    pub fn write_line(&mut self, pa: u64, line: &[u8; 64]) {
        debug_assert_eq!(pa % 64, 0, "line writes must be aligned");
        self.write_bytes(pa, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_before_write() {
        let m = SparseMem::new();
        assert_eq!(m.read_u64(DRAM_BASE), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn little_endian_roundtrip() {
        let mut m = SparseMem::new();
        m.write_le(DRAM_BASE, 8, 0x1122_3344_5566_7788);
        assert_eq!(m.read_u8(DRAM_BASE), 0x88);
        assert_eq!(m.read_le(DRAM_BASE, 4), 0x5566_7788);
        assert_eq!(m.read_le(DRAM_BASE + 4, 4), 0x1122_3344);
    }

    #[test]
    fn cross_page_access() {
        let mut m = SparseMem::new();
        let pa = DRAM_BASE + 4096 - 4;
        m.write_le(pa, 8, 0xdead_beef_cafe_f00d);
        assert_eq!(m.read_le(pa, 8), 0xdead_beef_cafe_f00d);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn line_roundtrip() {
        let mut m = SparseMem::new();
        let mut line = [0u8; 64];
        for (i, b) in line.iter_mut().enumerate() {
            *b = i as u8;
        }
        m.write_line(DRAM_BASE + 64, &line);
        assert_eq!(m.read_line(DRAM_BASE + 64), line);
    }

    #[test]
    fn mmio_range_check() {
        assert!(is_mmio(MMIO_EXIT));
        assert!(is_mmio(MMIO_PUTCHAR));
        assert!(!is_mmio(DRAM_BASE));
        assert!(!is_mmio(MMIO_END));
    }
}
