//! Control and status registers: addresses, fields, and a minimal CSR file
//! sufficient for M/S privilege, traps, and Sv39 paging.

/// Privilege modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priv {
    /// User mode.
    U,
    /// Supervisor mode.
    S,
    /// Machine mode.
    M,
}

impl Priv {
    /// Encoding used in `mstatus.MPP`.
    #[must_use]
    pub fn code(self) -> u64 {
        match self {
            Priv::U => 0,
            Priv::S => 1,
            Priv::M => 3,
        }
    }

    /// Decodes an MPP/SPP value (1-bit SPP handled by caller).
    #[must_use]
    pub fn from_code(c: u64) -> Priv {
        match c & 3 {
            0 => Priv::U,
            1 => Priv::S,
            _ => Priv::M,
        }
    }
}

cmd_core::snap_enum!(Priv {
    0 => U,
    1 => S,
    2 => M,
});

/// Well-known CSR addresses used in this reproduction.
pub mod addr {
    /// machine status
    pub const MSTATUS: u16 = 0x300;
    /// machine trap vector
    pub const MTVEC: u16 = 0x305;
    /// machine scratch
    pub const MSCRATCH: u16 = 0x340;
    /// machine exception PC
    pub const MEPC: u16 = 0x341;
    /// machine trap cause
    pub const MCAUSE: u16 = 0x342;
    /// machine trap value
    pub const MTVAL: u16 = 0x343;
    /// machine exception delegation
    pub const MEDELEG: u16 = 0x302;
    /// machine hart id (read-only)
    pub const MHARTID: u16 = 0xf14;
    /// supervisor status (view of mstatus)
    pub const SSTATUS: u16 = 0x100;
    /// supervisor trap vector
    pub const STVEC: u16 = 0x105;
    /// supervisor scratch
    pub const SSCRATCH: u16 = 0x140;
    /// supervisor exception PC
    pub const SEPC: u16 = 0x141;
    /// supervisor trap cause
    pub const SCAUSE: u16 = 0x142;
    /// supervisor trap value
    pub const STVAL: u16 = 0x143;
    /// address translation and protection
    pub const SATP: u16 = 0x180;
    /// cycle counter (read-only shadow)
    pub const CYCLE: u16 = 0xc00;
    /// instructions-retired counter (read-only shadow)
    pub const INSTRET: u16 = 0xc02;
}

/// Exception causes (mcause values).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Exception {
    /// Instruction address misaligned.
    InstAddrMisaligned,
    /// Instruction access fault.
    InstAccessFault,
    /// Illegal instruction.
    IllegalInst,
    /// Breakpoint (`ebreak`).
    Breakpoint,
    /// Load address misaligned.
    LoadAddrMisaligned,
    /// Load access fault.
    LoadAccessFault,
    /// Store/AMO address misaligned.
    StoreAddrMisaligned,
    /// Store/AMO access fault.
    StoreAccessFault,
    /// Environment call (from the faulting privilege).
    Ecall(Priv),
    /// Instruction page fault.
    InstPageFault,
    /// Load page fault.
    LoadPageFault,
    /// Store/AMO page fault.
    StorePageFault,
}

impl Exception {
    /// The mcause encoding.
    #[must_use]
    pub fn cause(self) -> u64 {
        match self {
            Exception::InstAddrMisaligned => 0,
            Exception::InstAccessFault => 1,
            Exception::IllegalInst => 2,
            Exception::Breakpoint => 3,
            Exception::LoadAddrMisaligned => 4,
            Exception::LoadAccessFault => 5,
            Exception::StoreAddrMisaligned => 6,
            Exception::StoreAccessFault => 7,
            Exception::Ecall(Priv::U) => 8,
            Exception::Ecall(Priv::S) => 9,
            Exception::Ecall(Priv::M) => 11,
            Exception::InstPageFault => 12,
            Exception::LoadPageFault => 13,
            Exception::StorePageFault => 15,
        }
    }
}

cmd_core::snap_enum!(Exception {
    0 => InstAddrMisaligned,
    1 => InstAccessFault,
    2 => IllegalInst,
    3 => Breakpoint,
    4 => LoadAddrMisaligned,
    5 => LoadAccessFault,
    6 => StoreAddrMisaligned,
    7 => StoreAccessFault,
    8 => Ecall(p),
    9 => InstPageFault,
    10 => LoadPageFault,
    11 => StorePageFault,
});

/// A minimal machine/supervisor CSR file.
///
/// Unknown CSRs read as zero and ignore writes, which is enough for the
/// bare-metal workloads of this reproduction (they never rely on WARL
/// subtleties).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrFile {
    /// mstatus (sstatus is a view of it).
    pub mstatus: u64,
    /// mtvec.
    pub mtvec: u64,
    /// mscratch.
    pub mscratch: u64,
    /// mepc.
    pub mepc: u64,
    /// mcause.
    pub mcause: u64,
    /// mtval.
    pub mtval: u64,
    /// medeleg.
    pub medeleg: u64,
    /// stvec.
    pub stvec: u64,
    /// sscratch.
    pub sscratch: u64,
    /// sepc.
    pub sepc: u64,
    /// scause.
    pub scause: u64,
    /// stval.
    pub stval: u64,
    /// satp.
    pub satp: u64,
    /// This hart's id (mhartid).
    pub hartid: u64,
}

cmd_core::snap_struct!(CsrFile {
    mstatus,
    mtvec,
    mscratch,
    mepc,
    mcause,
    mtval,
    medeleg,
    stvec,
    sscratch,
    sepc,
    scause,
    stval,
    satp,
    hartid,
});

/// mstatus bit positions used here.
pub mod mstatus {
    /// Supervisor previous privilege.
    pub const SPP_BIT: u64 = 1 << 8;
    /// Machine previous privilege (2 bits).
    pub const MPP_SHIFT: u32 = 11;
    /// Machine interrupt enable.
    pub const MIE: u64 = 1 << 3;
    /// Machine previous interrupt enable.
    pub const MPIE: u64 = 1 << 7;
    /// Supervisor interrupt enable.
    pub const SIE: u64 = 1 << 1;
    /// Supervisor previous interrupt enable.
    pub const SPIE: u64 = 1 << 5;
}

impl CsrFile {
    /// Creates a reset CSR file for `hartid`.
    #[must_use]
    pub fn new(hartid: u64) -> Self {
        CsrFile {
            mstatus: 0,
            mtvec: 0,
            mscratch: 0,
            mepc: 0,
            mcause: 0,
            mtval: 0,
            medeleg: 0,
            stvec: 0,
            sscratch: 0,
            sepc: 0,
            scause: 0,
            stval: 0,
            satp: 0,
            hartid,
        }
    }

    /// Reads a CSR; `cycle`/`instret` shadows are supplied by the caller
    /// since only it knows the current counts.
    #[must_use]
    pub fn read(&self, csr: u16, cycle: u64, instret: u64) -> u64 {
        match csr {
            addr::MSTATUS => self.mstatus,
            addr::MTVEC => self.mtvec,
            addr::MSCRATCH => self.mscratch,
            addr::MEPC => self.mepc,
            addr::MCAUSE => self.mcause,
            addr::MTVAL => self.mtval,
            addr::MEDELEG => self.medeleg,
            addr::MHARTID => self.hartid,
            // sstatus: the S-visible subset of mstatus.
            addr::SSTATUS => self.mstatus & 0x8000_0003_000d_e762,
            addr::STVEC => self.stvec,
            addr::SSCRATCH => self.sscratch,
            addr::SEPC => self.sepc,
            addr::SCAUSE => self.scause,
            addr::STVAL => self.stval,
            addr::SATP => self.satp,
            addr::CYCLE => cycle,
            addr::INSTRET => instret,
            _ => 0,
        }
    }

    /// Writes a CSR (ignoring read-only and unknown addresses).
    pub fn write(&mut self, csr: u16, v: u64) {
        match csr {
            addr::MSTATUS => self.mstatus = v,
            addr::MTVEC => self.mtvec = v,
            addr::MSCRATCH => self.mscratch = v,
            addr::MEPC => self.mepc = v & !1,
            addr::MCAUSE => self.mcause = v,
            addr::MTVAL => self.mtval = v,
            addr::MEDELEG => self.medeleg = v,
            addr::SSTATUS => {
                let mask = 0x8000_0003_000d_e762u64 & !(1 << 63);
                self.mstatus = (self.mstatus & !mask) | (v & mask);
            }
            addr::STVEC => self.stvec = v,
            addr::SSCRATCH => self.sscratch = v,
            addr::SEPC => self.sepc = v & !1,
            addr::SCAUSE => self.scause = v,
            addr::STVAL => self.stval = v,
            addr::SATP => self.satp = v,
            _ => {}
        }
    }

    /// Takes a trap into M-mode from privilege `from` at `pc`; returns the
    /// new PC (the trap vector).
    pub fn trap_to_m(&mut self, e: Exception, pc: u64, tval: u64, from: Priv) -> u64 {
        self.mepc = pc;
        self.mcause = e.cause();
        self.mtval = tval;
        // MPP <- from; MPIE <- MIE; MIE <- 0.
        let mie = (self.mstatus >> 3) & 1;
        self.mstatus &= !(3 << mstatus::MPP_SHIFT);
        self.mstatus |= from.code() << mstatus::MPP_SHIFT;
        self.mstatus = (self.mstatus & !mstatus::MPIE) | (mie << 7);
        self.mstatus &= !mstatus::MIE;
        self.mtvec & !3
    }

    /// Executes `mret`, returning `(new_pc, new_priv)`.
    pub fn mret(&mut self) -> (u64, Priv) {
        let mpp = Priv::from_code(self.mstatus >> mstatus::MPP_SHIFT);
        let mpie = (self.mstatus >> 7) & 1;
        self.mstatus = (self.mstatus & !mstatus::MIE) | (mpie << 3);
        self.mstatus |= mstatus::MPIE;
        self.mstatus &= !(3 << mstatus::MPP_SHIFT);
        (self.mepc, mpp)
    }

    /// Executes `sret`, returning `(new_pc, new_priv)`.
    pub fn sret(&mut self) -> (u64, Priv) {
        let spp = if self.mstatus & mstatus::SPP_BIT != 0 {
            Priv::S
        } else {
            Priv::U
        };
        let spie = (self.mstatus >> 5) & 1;
        self.mstatus = (self.mstatus & !mstatus::SIE) | (spie << 1);
        self.mstatus |= mstatus::SPIE;
        self.mstatus &= !mstatus::SPP_BIT;
        (self.sepc, spp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trap_and_mret_roundtrip() {
        let mut c = CsrFile::new(0);
        c.write(addr::MTVEC, 0x8000_0100);
        let vec = c.trap_to_m(Exception::Ecall(Priv::S), 0x8000_1234, 0, Priv::S);
        assert_eq!(vec, 0x8000_0100);
        assert_eq!(c.mepc, 0x8000_1234);
        assert_eq!(c.mcause, 9);
        let (pc, p) = c.mret();
        assert_eq!(pc, 0x8000_1234);
        assert_eq!(p, Priv::S);
    }

    #[test]
    fn mret_restores_mpp_to_machine() {
        let mut c = CsrFile::new(0);
        c.trap_to_m(Exception::IllegalInst, 0x10, 0, Priv::M);
        let (_, p) = c.mret();
        assert_eq!(p, Priv::M);
    }

    #[test]
    fn sret_uses_spp() {
        let mut c = CsrFile::new(0);
        c.mstatus |= mstatus::SPP_BIT;
        c.sepc = 0x42;
        let (pc, p) = c.sret();
        assert_eq!((pc, p), (0x42, Priv::S));
        let (_, p2) = c.sret();
        assert_eq!(p2, Priv::U, "SPP cleared by first sret");
    }

    #[test]
    fn unknown_csrs_read_zero() {
        let c = CsrFile::new(3);
        assert_eq!(c.read(0x7c0, 0, 0), 0);
        assert_eq!(c.read(addr::MHARTID, 0, 0), 3);
    }

    #[test]
    fn cycle_and_instret_shadows() {
        let c = CsrFile::new(0);
        assert_eq!(c.read(addr::CYCLE, 123, 45), 123);
        assert_eq!(c.read(addr::INSTRET, 123, 45), 45);
    }

    #[test]
    fn epc_writes_clear_low_bit() {
        let mut c = CsrFile::new(0);
        c.write(addr::MEPC, 0x1001);
        assert_eq!(c.mepc, 0x1000);
    }
}
