//! # riscy-isa — RV64IMA+Zicsr instruction set substrate
//!
//! The ISA layer shared by every processor model in this reproduction of
//! *"Composable Building Blocks to Open up Processor Design"* (MICRO 2018):
//!
//! * [`reg`] — architectural registers;
//! * [`inst`] — decoded instructions, binary encode/decode;
//! * [`asm`] — a label-based assembler and loadable [`asm::Program`] images
//!   (substituting for cross-compiled SPEC/PARSEC binaries);
//! * [`csr`] — control/status registers, privilege, traps;
//! * [`vm`] — Sv39 page tables and the page-walk algorithm;
//! * [`mem`] — sparse physical memory and the platform MMIO map;
//! * [`interp`] — the golden-model interpreter (Spike substitute) used for
//!   lock-step co-simulation against the hardware models.
//!
//! # Examples
//!
//! Assemble and run a program on the golden model:
//!
//! ```
//! use riscy_isa::asm::Assembler;
//! use riscy_isa::interp::Machine;
//! use riscy_isa::mem::{DRAM_BASE, MMIO_EXIT};
//! use riscy_isa::reg::Gpr;
//!
//! let mut a = Assembler::new(DRAM_BASE);
//! a.li(Gpr::a(0), 6);
//! a.li(Gpr::a(1), 7);
//! a.mul(Gpr::a(2), Gpr::a(0), Gpr::a(1));
//! a.li(Gpr::t(0), MMIO_EXIT as i64);
//! a.sd(Gpr::ZERO, 0, Gpr::t(0));
//! let program = a.assemble();
//!
//! let mut m = Machine::with_program(1, &program);
//! m.run(1000).expect("halts");
//! assert_eq!(m.hart(0).reg(Gpr::a(2)), 42);
//! ```

pub mod asm;
pub mod csr;
pub mod inst;
pub mod interp;
pub mod mem;
pub mod reg;
pub mod vm;
