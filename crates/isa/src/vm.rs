//! Sv39 virtual memory: PTE formats and the page-table walk.
//!
//! The walk is a pure function over a PTE-read callback so the golden
//! interpreter, the hardware page walker, and tests all share one
//! implementation of the architecture's semantics while supplying their own
//! memory access (and latency accounting).

use crate::csr::Priv;

/// Page size (4 KiB) and related constants.
pub const PAGE_SHIFT: u32 = 12;
/// Bytes per page.
pub const PAGE_SIZE: u64 = 1 << PAGE_SHIFT;
/// Levels of an Sv39 page table (2 = root).
pub const LEVELS: usize = 3;

/// satp mode value selecting Sv39.
pub const SATP_MODE_SV39: u64 = 8;

/// PTE flag bits.
pub mod pte {
    /// Valid.
    pub const V: u64 = 1 << 0;
    /// Readable.
    pub const R: u64 = 1 << 1;
    /// Writable.
    pub const W: u64 = 1 << 2;
    /// Executable.
    pub const X: u64 = 1 << 3;
    /// User-accessible.
    pub const U: u64 = 1 << 4;
    /// Global.
    pub const G: u64 = 1 << 5;
    /// Accessed.
    pub const A: u64 = 1 << 6;
    /// Dirty.
    pub const D: u64 = 1 << 7;
}

/// Access type of a translation request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Access {
    /// Instruction fetch.
    Fetch,
    /// Data load (including LR and the read half of AMOs).
    Load,
    /// Data store (including SC and AMOs).
    Store,
}

/// A failed translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PageFault {
    /// The faulting virtual address.
    pub va: u64,
    /// The access type that faulted.
    pub access: Access,
}

cmd_core::snap_enum!(Access {
    0 => Fetch,
    1 => Load,
    2 => Store,
});

cmd_core::snap_struct!(PageFault { va, access });

cmd_core::snap_struct!(Translation {
    pa,
    pte,
    level,
    steps,
});

/// A successful translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Translation {
    /// Physical address corresponding to the requested virtual address.
    pub pa: u64,
    /// The leaf PTE.
    pub pte: u64,
    /// Level at which the leaf was found (0 = 4 KiB page, 1 = 2 MiB,
    /// 2 = 1 GiB).
    pub level: usize,
    /// Number of PTE memory reads the walk performed.
    pub steps: usize,
}

impl Translation {
    /// Size in bytes of the page this translation covers.
    #[must_use]
    pub fn page_size(&self) -> u64 {
        PAGE_SIZE << (9 * self.level)
    }

    /// The virtual page base covered by this translation, for `va`.
    #[must_use]
    pub fn vpn_base(&self, va: u64) -> u64 {
        va & !(self.page_size() - 1)
    }
}

/// Extracts the root page-table PPN from `satp`.
#[must_use]
pub fn satp_root_ppn(satp: u64) -> u64 {
    satp & ((1 << 44) - 1)
}

/// Whether `satp` enables Sv39 translation.
#[must_use]
pub fn satp_sv39_enabled(satp: u64) -> bool {
    satp >> 60 == SATP_MODE_SV39
}

/// Virtual page numbers of `va` (index 0 = lowest level).
#[must_use]
pub fn vpns(va: u64) -> [u64; LEVELS] {
    [(va >> 12) & 0x1ff, (va >> 21) & 0x1ff, (va >> 30) & 0x1ff]
}

/// Checks that the upper bits of `va` are the sign extension of bit 38.
#[must_use]
pub fn va_canonical(va: u64) -> bool {
    let top = va >> 38;
    top == 0 || top == (1 << 26) - 1
}

fn leaf_permits(pte_val: u64, access: Access, priv_mode: Priv) -> bool {
    // Simplified policy: S may access non-U pages, U may access only U
    // pages; MXR/SUM are not modeled (workloads do not rely on them).
    let user_page = pte_val & pte::U != 0;
    match priv_mode {
        Priv::U if !user_page => return false,
        Priv::S if user_page => return false,
        _ => {}
    }
    let ok_type = match access {
        Access::Fetch => pte_val & pte::X != 0,
        Access::Load => pte_val & pte::R != 0,
        Access::Store => pte_val & pte::W != 0,
    };
    if !ok_type {
        return false;
    }
    // Hardware without Svade-style A/D updates faults when A (or D on
    // stores) is clear; our page tables pre-set them.
    if pte_val & pte::A == 0 {
        return false;
    }
    if access == Access::Store && pte_val & pte::D == 0 {
        return false;
    }
    true
}

/// Performs an Sv39 walk for `va` from the table rooted at `root_ppn`,
/// reading PTEs through `read_pte` (physical-address → 64-bit PTE).
///
/// # Errors
///
/// Returns [`PageFault`] on non-canonical addresses, invalid or misaligned
/// PTEs, and permission failures.
pub fn walk_sv39(
    root_ppn: u64,
    va: u64,
    access: Access,
    priv_mode: Priv,
    mut read_pte: impl FnMut(u64) -> u64,
) -> Result<Translation, PageFault> {
    let fault = PageFault { va, access };
    if !va_canonical(va) {
        return Err(fault);
    }
    let vpn = vpns(va);
    let mut table_ppn = root_ppn;
    for level in (0..LEVELS).rev() {
        let pte_pa = (table_ppn << PAGE_SHIFT) + vpn[level] * 8;
        let p = read_pte(pte_pa);
        // PTE reads so far: one per visited level, root-down.
        let steps = LEVELS - level;
        if p & pte::V == 0 {
            return Err(fault);
        }
        let is_leaf = p & (pte::R | pte::W | pte::X) != 0;
        if !is_leaf {
            // W-without-R or X-only pointer PTEs are malformed.
            if level == 0 {
                return Err(fault);
            }
            table_ppn = p >> 10;
            continue;
        }
        if !leaf_permits(p, access, priv_mode) {
            return Err(fault);
        }
        let ppn = p >> 10;
        // Superpage alignment: low PPN bits must be zero.
        let align_mask = (1u64 << (9 * level)) - 1;
        if ppn & align_mask != 0 {
            return Err(fault);
        }
        let page_off_bits = PAGE_SHIFT + 9 * level as u32;
        let pa = ((ppn >> (9 * level)) << page_off_bits) | (va & ((1 << page_off_bits) - 1));
        return Ok(Translation {
            pa,
            pte: p,
            level,
            steps,
        });
    }
    Err(fault)
}

/// Helper to compose a leaf PTE from a physical page number and flags.
#[must_use]
pub fn make_leaf(ppn: u64, flags: u64) -> u64 {
    (ppn << 10) | flags | pte::V
}

/// Helper to compose a pointer (non-leaf) PTE to the table at `ppn`.
#[must_use]
pub fn make_pointer(ppn: u64) -> u64 {
    (ppn << 10) | pte::V
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// A toy physical memory of PTEs for walk tests.
    struct PteMem(HashMap<u64, u64>);

    impl PteMem {
        fn read(&self) -> impl FnMut(u64) -> u64 + '_ {
            move |pa| *self.0.get(&pa).unwrap_or(&0)
        }
    }

    const RWX: u64 = pte::R | pte::W | pte::X | pte::A | pte::D;

    fn two_level_setup() -> PteMem {
        // root at ppn 1, second level at ppn 2, third at ppn 3,
        // mapping va 0x0040_0000.. (vpn2=0, vpn1=2, vpn0=0) to ppn 0x80.
        let mut m = HashMap::new();
        m.insert(1 << 12, make_pointer(2));
        m.insert((2 << 12) + 2 * 8, make_pointer(3));
        m.insert(3 << 12, make_leaf(0x80, RWX));
        PteMem(m)
    }

    #[test]
    fn walks_three_levels() {
        let m = two_level_setup();
        let t = walk_sv39(1, 0x0040_0123, Access::Load, Priv::S, m.read()).unwrap();
        assert_eq!(t.pa, (0x80 << 12) | 0x123);
        assert_eq!(t.level, 0);
        assert_eq!(t.steps, 3);
    }

    #[test]
    fn invalid_pte_faults() {
        let m = two_level_setup();
        let r = walk_sv39(1, 0x0060_0000, Access::Load, Priv::S, m.read());
        assert!(r.is_err(), "unmapped vpn1 must fault");
    }

    #[test]
    fn write_to_readonly_faults() {
        let mut m = two_level_setup();
        m.0.insert((3 << 12) + 8, make_leaf(0x81, pte::R | pte::A));
        let ok = walk_sv39(1, 0x0040_1000, Access::Load, Priv::S, m.read());
        assert!(ok.is_ok());
        let bad = walk_sv39(1, 0x0040_1000, Access::Store, Priv::S, m.read());
        assert_eq!(
            bad.unwrap_err(),
            PageFault {
                va: 0x0040_1000,
                access: Access::Store
            }
        );
    }

    #[test]
    fn fetch_requires_x() {
        let mut m = two_level_setup();
        m.0.insert((3 << 12) + 2 * 8, make_leaf(0x82, pte::R | pte::A));
        let r = walk_sv39(1, 0x0040_2000, Access::Fetch, Priv::S, m.read());
        assert!(r.is_err());
    }

    #[test]
    fn gigapage_translation() {
        let mut m = HashMap::new();
        // vpn2 = 2 → 1 GiB leaf at ppn 0x40000 (1 GiB aligned).
        m.insert((1 << 12) + 2 * 8, make_leaf(0x40000, RWX));
        let t = walk_sv39(1, 0x8000_1234, Access::Fetch, Priv::S, |pa| {
            *m.get(&pa).unwrap_or(&0)
        })
        .unwrap();
        assert_eq!(t.level, 2);
        assert_eq!(t.steps, 1);
        assert_eq!(t.pa, (0x40000u64 << 12) + 0x1234);
        assert_eq!(t.page_size(), 1 << 30);
    }

    #[test]
    fn misaligned_superpage_faults() {
        let mut m = HashMap::new();
        m.insert((1 << 12) + 2 * 8, make_leaf(0x40001, RWX)); // not 1 GiB aligned
        let r = walk_sv39(1, 0x8000_0000, Access::Load, Priv::S, |pa| {
            *m.get(&pa).unwrap_or(&0)
        });
        assert!(r.is_err());
    }

    #[test]
    fn non_canonical_va_faults() {
        let m = two_level_setup();
        assert!(walk_sv39(1, 1 << 45, Access::Load, Priv::S, m.read()).is_err());
        // Properly sign-extended high address is canonical.
        assert!(va_canonical(0xffff_ffc0_0000_0000));
        assert!(!va_canonical(0x0000_8000_0000_0000));
    }

    #[test]
    fn user_page_protection() {
        let mut m = two_level_setup();
        m.0.insert((3 << 12) + 3 * 8, make_leaf(0x83, RWX | pte::U));
        let s = walk_sv39(1, 0x0040_3000, Access::Load, Priv::S, m.read());
        assert!(s.is_err(), "S cannot touch U pages (no SUM)");
        let u = walk_sv39(1, 0x0040_3000, Access::Load, Priv::U, m.read());
        assert!(u.is_ok());
        let u_nonu = walk_sv39(1, 0x0040_0000, Access::Load, Priv::U, m.read());
        assert!(u_nonu.is_err(), "U cannot touch S pages");
    }

    #[test]
    fn clear_accessed_bit_faults() {
        let mut m = two_level_setup();
        m.0.insert((3 << 12) + 4 * 8, make_leaf(0x84, pte::R | pte::W));
        let r = walk_sv39(1, 0x0040_4000, Access::Load, Priv::S, m.read());
        assert!(r.is_err(), "A=0 must fault in this model");
    }
}
