//! Architectural general-purpose registers.

use std::fmt;

/// One of the 32 RV64 integer registers. `x0` is hard-wired to zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Gpr(u8);

impl Gpr {
    /// The always-zero register.
    pub const ZERO: Gpr = Gpr(0);
    /// Return address (`x1`).
    pub const RA: Gpr = Gpr(1);
    /// Stack pointer (`x2`).
    pub const SP: Gpr = Gpr(2);
    /// Global pointer (`x3`).
    pub const GP: Gpr = Gpr(3);
    /// Thread pointer (`x4`).
    pub const TP: Gpr = Gpr(4);

    /// Constructs `x<n>`.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    #[must_use]
    pub const fn new(n: u8) -> Self {
        assert!(n < 32, "register index out of range");
        Gpr(n)
    }

    /// Temporary register `t<n>` (t0–t6).
    ///
    /// # Panics
    ///
    /// Panics if `n >= 7`.
    #[must_use]
    pub const fn t(n: u8) -> Self {
        assert!(n < 7, "only t0-t6 exist");
        if n < 3 {
            Gpr(5 + n)
        } else {
            Gpr(28 + n - 3)
        }
    }

    /// Argument register `a<n>` (a0–a7).
    ///
    /// # Panics
    ///
    /// Panics if `n >= 8`.
    #[must_use]
    pub const fn a(n: u8) -> Self {
        assert!(n < 8, "only a0-a7 exist");
        Gpr(10 + n)
    }

    /// Saved register `s<n>` (s0–s11).
    ///
    /// # Panics
    ///
    /// Panics if `n >= 12`.
    #[must_use]
    pub const fn s(n: u8) -> Self {
        assert!(n < 12, "only s0-s11 exist");
        if n < 2 {
            Gpr(8 + n)
        } else {
            Gpr(16 + n)
        }
    }

    /// The raw index 0–31.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is `x0`.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl From<Gpr> for u32 {
    fn from(g: Gpr) -> u32 {
        u32::from(g.0)
    }
}

impl cmd_core::snap::Snap for Gpr {
    fn save(&self, w: &mut cmd_core::snap::SnapWriter) {
        w.u8(self.0);
    }

    fn load(r: &mut cmd_core::snap::SnapReader<'_>) -> Result<Self, cmd_core::snap::SnapError> {
        let n = r.u8()?;
        if n < 32 {
            Ok(Gpr(n))
        } else {
            Err(cmd_core::snap::SnapError::Corrupt(
                "register index out of range",
            ))
        }
    }
}

impl fmt::Display for Gpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const NAMES: [&str; 32] = [
            "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3",
            "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
            "t3", "t4", "t5", "t6",
        ];
        f.write_str(NAMES[self.0 as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abi_aliases_map_correctly() {
        assert_eq!(Gpr::t(0).index(), 5);
        assert_eq!(Gpr::t(2).index(), 7);
        assert_eq!(Gpr::t(3).index(), 28);
        assert_eq!(Gpr::t(6).index(), 31);
        assert_eq!(Gpr::a(0).index(), 10);
        assert_eq!(Gpr::a(7).index(), 17);
        assert_eq!(Gpr::s(0).index(), 8);
        assert_eq!(Gpr::s(1).index(), 9);
        assert_eq!(Gpr::s(2).index(), 18);
        assert_eq!(Gpr::s(11).index(), 27);
    }

    #[test]
    fn display_uses_abi_names() {
        assert_eq!(Gpr::ZERO.to_string(), "zero");
        assert_eq!(Gpr::a(0).to_string(), "a0");
        assert_eq!(Gpr::new(31).to_string(), "t6");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        let _ = Gpr::new(32);
    }
}
