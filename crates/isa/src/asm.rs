//! A label-based RV64 assembler and program images.
//!
//! Workloads in this reproduction are written as Rust programs that *emit*
//! RISC-V machine code (substituting for the paper's cross-compiled SPEC and
//! PARSEC binaries). The assembler provides the usual mnemonics,
//! pseudo-instructions (`li`, `la`, `mv`, `j`, ...) and forward label
//! references.
//!
//! # Examples
//!
//! ```
//! use riscy_isa::asm::Assembler;
//! use riscy_isa::reg::Gpr;
//!
//! let mut a = Assembler::new(0x8000_0000);
//! let (t0, t1) = (Gpr::t(0), Gpr::t(1));
//! a.li(t0, 10);
//! a.li(t1, 0);
//! a.label("loop");
//! a.add(t1, t1, t0);
//! a.addi(t0, t0, -1);
//! a.bnez(t0, "loop");
//! let prog = a.assemble();
//! assert_eq!(prog.text_words().len(), 5);
//! ```

use std::collections::HashMap;

use crate::inst::{AluOp, AmoOp, BranchCond, CsrOp, CsrSrc, Instr, MemWidth, MulDivOp, Rhs};
use crate::mem::SparseMem;
use crate::reg::Gpr;

/// A loadable program image: machine code plus data segments.
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// Entry PC.
    pub entry: u64,
    /// Base address of the text segment.
    pub text_base: u64,
    /// Encoded instructions.
    text: Vec<u32>,
    /// Data segments: `(base, bytes)`.
    pub data: Vec<(u64, Vec<u8>)>,
}

impl Program {
    /// The encoded text words.
    #[must_use]
    pub fn text_words(&self) -> &[u32] {
        &self.text
    }

    /// Total dynamic footprint is not knowable; this is the static size in
    /// bytes of text plus data.
    #[must_use]
    pub fn static_bytes(&self) -> usize {
        self.text.len() * 4 + self.data.iter().map(|(_, d)| d.len()).sum::<usize>()
    }

    /// Loads text and data into a physical memory.
    pub fn load(&self, mem: &mut SparseMem) {
        for (i, w) in self.text.iter().enumerate() {
            mem.write_le(self.text_base + 4 * i as u64, 4, u64::from(*w));
        }
        for (base, bytes) in &self.data {
            mem.write_bytes(*base, bytes);
        }
    }

    /// Appends a data segment.
    pub fn add_data(&mut self, base: u64, bytes: Vec<u8>) {
        self.data.push((base, bytes));
    }
}

#[derive(Debug, Clone)]
enum Slot {
    Fixed(Instr),
    Branch {
        cond: BranchCond,
        rs1: Gpr,
        rs2: Gpr,
        target: String,
    },
    Jal {
        rd: Gpr,
        target: String,
    },
    /// `auipc`+`addi` pair loading a label's address (occupies 2 slots; the
    /// second is `LaLo`).
    LaHi {
        rd: Gpr,
        target: String,
    },
    LaLo,
}

/// The assembler. See the [module docs](self) for an example.
#[derive(Debug, Clone)]
pub struct Assembler {
    base: u64,
    slots: Vec<Slot>,
    labels: HashMap<String, usize>,
    data: Vec<(u64, Vec<u8>)>,
}

impl Assembler {
    /// Starts a program whose text begins at `base`.
    #[must_use]
    pub fn new(base: u64) -> Self {
        Assembler {
            base,
            slots: Vec::new(),
            labels: HashMap::new(),
            data: Vec::new(),
        }
    }

    /// Current PC (address of the next emitted instruction).
    #[must_use]
    pub fn here(&self) -> u64 {
        self.base + 4 * self.slots.len() as u64
    }

    /// Binds `name` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound.
    pub fn label(&mut self, name: &str) {
        let prev = self.labels.insert(name.to_string(), self.slots.len());
        assert!(prev.is_none(), "label `{name}` bound twice");
    }

    /// Emits an already-constructed instruction.
    pub fn push(&mut self, i: Instr) {
        self.slots.push(Slot::Fixed(i));
    }

    /// Attaches a data segment to the eventual [`Program`].
    pub fn data_segment(&mut self, base: u64, bytes: Vec<u8>) {
        self.data.push((base, bytes));
    }

    /// Resolves labels and produces the program image.
    ///
    /// # Panics
    ///
    /// Panics on undefined labels or out-of-range branch offsets.
    #[must_use]
    pub fn assemble(self) -> Program {
        let Assembler {
            base,
            slots,
            labels,
            data,
        } = self;
        let addr_of = |target: &str| -> u64 {
            base + 4 * *labels
                .get(target)
                .unwrap_or_else(|| panic!("undefined label `{target}`"))
                as u64
        };
        let mut text = Vec::with_capacity(slots.len());
        for (idx, slot) in slots.iter().enumerate() {
            let pc = base + 4 * idx as u64;
            let inst = match slot {
                Slot::Fixed(i) => *i,
                Slot::Branch {
                    cond,
                    rs1,
                    rs2,
                    target,
                } => {
                    let off = addr_of(target) as i64 - pc as i64;
                    assert!(
                        (-4096..=4094).contains(&off),
                        "branch to `{target}` out of range ({off})"
                    );
                    Instr::Branch {
                        cond: *cond,
                        rs1: *rs1,
                        rs2: *rs2,
                        offset: off as i32,
                    }
                }
                Slot::Jal { rd, target } => {
                    let off = addr_of(target) as i64 - pc as i64;
                    assert!(
                        (-(1 << 20)..(1 << 20)).contains(&off),
                        "jal to `{target}` out of range ({off})"
                    );
                    Instr::Jal {
                        rd: *rd,
                        offset: off as i32,
                    }
                }
                Slot::LaHi { rd, target } => {
                    let off = addr_of(target) as i64 - pc as i64;
                    let lo = ((off << 52) >> 52) as i32; // sign-extended low 12
                    let hi = (off - i64::from(lo)) & 0xffff_ffff;
                    Instr::Auipc {
                        rd: *rd,
                        imm: hi << 32 >> 32,
                    }
                }
                Slot::LaLo => {
                    // Paired with the preceding LaHi.
                    let Slot::LaHi { rd, target } = &slots[idx - 1] else {
                        unreachable!("LaLo must follow LaHi");
                    };
                    let prev_pc = pc - 4;
                    let off = addr_of(target) as i64 - prev_pc as i64;
                    let lo = ((off << 52) >> 52) as i32;
                    Instr::Alu {
                        op: AluOp::Add,
                        word: false,
                        rd: *rd,
                        rs1: *rd,
                        rhs: Rhs::Imm(lo),
                    }
                }
            };
            text.push(inst.encode());
        }
        Program {
            entry: base,
            text_base: base,
            text,
            data,
        }
    }

    // -- ALU ----------------------------------------------------------------

    /// `add rd, rs1, rs2`
    pub fn add(&mut self, rd: Gpr, rs1: Gpr, rs2: Gpr) {
        self.alu(AluOp::Add, rd, rs1, rs2);
    }
    /// `sub rd, rs1, rs2`
    pub fn sub(&mut self, rd: Gpr, rs1: Gpr, rs2: Gpr) {
        self.alu(AluOp::Sub, rd, rs1, rs2);
    }
    /// `and rd, rs1, rs2`
    pub fn and(&mut self, rd: Gpr, rs1: Gpr, rs2: Gpr) {
        self.alu(AluOp::And, rd, rs1, rs2);
    }
    /// `or rd, rs1, rs2`
    pub fn or(&mut self, rd: Gpr, rs1: Gpr, rs2: Gpr) {
        self.alu(AluOp::Or, rd, rs1, rs2);
    }
    /// `xor rd, rs1, rs2`
    pub fn xor(&mut self, rd: Gpr, rs1: Gpr, rs2: Gpr) {
        self.alu(AluOp::Xor, rd, rs1, rs2);
    }
    /// `sltu rd, rs1, rs2`
    pub fn sltu(&mut self, rd: Gpr, rs1: Gpr, rs2: Gpr) {
        self.alu(AluOp::Sltu, rd, rs1, rs2);
    }
    /// `slt rd, rs1, rs2`
    pub fn slt(&mut self, rd: Gpr, rs1: Gpr, rs2: Gpr) {
        self.alu(AluOp::Slt, rd, rs1, rs2);
    }
    /// `sll rd, rs1, rs2`
    pub fn sll(&mut self, rd: Gpr, rs1: Gpr, rs2: Gpr) {
        self.alu(AluOp::Sll, rd, rs1, rs2);
    }
    /// `srl rd, rs1, rs2`
    pub fn srl(&mut self, rd: Gpr, rs1: Gpr, rs2: Gpr) {
        self.alu(AluOp::Srl, rd, rs1, rs2);
    }
    /// Generic register-register ALU op.
    pub fn alu(&mut self, op: AluOp, rd: Gpr, rs1: Gpr, rs2: Gpr) {
        self.push(Instr::Alu {
            op,
            word: false,
            rd,
            rs1,
            rhs: Rhs::Reg(rs2),
        });
    }
    /// `addi rd, rs1, imm`
    pub fn addi(&mut self, rd: Gpr, rs1: Gpr, imm: i32) {
        self.alui(AluOp::Add, rd, rs1, imm);
    }
    /// `andi rd, rs1, imm`
    pub fn andi(&mut self, rd: Gpr, rs1: Gpr, imm: i32) {
        self.alui(AluOp::And, rd, rs1, imm);
    }
    /// `ori rd, rs1, imm`
    pub fn ori(&mut self, rd: Gpr, rs1: Gpr, imm: i32) {
        self.alui(AluOp::Or, rd, rs1, imm);
    }
    /// `xori rd, rs1, imm`
    pub fn xori(&mut self, rd: Gpr, rs1: Gpr, imm: i32) {
        self.alui(AluOp::Xor, rd, rs1, imm);
    }
    /// `slli rd, rs1, sh`
    pub fn slli(&mut self, rd: Gpr, rs1: Gpr, sh: i32) {
        self.alui(AluOp::Sll, rd, rs1, sh);
    }
    /// `srli rd, rs1, sh`
    pub fn srli(&mut self, rd: Gpr, rs1: Gpr, sh: i32) {
        self.alui(AluOp::Srl, rd, rs1, sh);
    }
    /// `srai rd, rs1, sh`
    pub fn srai(&mut self, rd: Gpr, rs1: Gpr, sh: i32) {
        self.alui(AluOp::Sra, rd, rs1, sh);
    }
    /// Generic immediate ALU op.
    pub fn alui(&mut self, op: AluOp, rd: Gpr, rs1: Gpr, imm: i32) {
        self.push(Instr::Alu {
            op,
            word: false,
            rd,
            rs1,
            rhs: Rhs::Imm(imm),
        });
    }
    /// `addw rd, rs1, rs2`
    pub fn addw(&mut self, rd: Gpr, rs1: Gpr, rs2: Gpr) {
        self.push(Instr::Alu {
            op: AluOp::Add,
            word: true,
            rd,
            rs1,
            rhs: Rhs::Reg(rs2),
        });
    }

    // -- M extension ---------------------------------------------------------

    /// `mul rd, rs1, rs2`
    pub fn mul(&mut self, rd: Gpr, rs1: Gpr, rs2: Gpr) {
        self.muldiv(MulDivOp::Mul, rd, rs1, rs2);
    }
    /// `div rd, rs1, rs2`
    pub fn div(&mut self, rd: Gpr, rs1: Gpr, rs2: Gpr) {
        self.muldiv(MulDivOp::Div, rd, rs1, rs2);
    }
    /// `remu rd, rs1, rs2`
    pub fn remu(&mut self, rd: Gpr, rs1: Gpr, rs2: Gpr) {
        self.muldiv(MulDivOp::Remu, rd, rs1, rs2);
    }
    /// Generic mul/div op.
    pub fn muldiv(&mut self, op: MulDivOp, rd: Gpr, rs1: Gpr, rs2: Gpr) {
        self.push(Instr::MulDiv {
            op,
            word: false,
            rd,
            rs1,
            rs2,
        });
    }

    // -- Memory ---------------------------------------------------------------

    /// `ld rd, off(rs1)`
    pub fn ld(&mut self, rd: Gpr, off: i32, rs1: Gpr) {
        self.load(MemWidth::D, true, rd, off, rs1);
    }
    /// `lw rd, off(rs1)`
    pub fn lw(&mut self, rd: Gpr, off: i32, rs1: Gpr) {
        self.load(MemWidth::W, true, rd, off, rs1);
    }
    /// `lbu rd, off(rs1)`
    pub fn lbu(&mut self, rd: Gpr, off: i32, rs1: Gpr) {
        self.load(MemWidth::B, false, rd, off, rs1);
    }
    /// Generic load.
    pub fn load(&mut self, width: MemWidth, signed: bool, rd: Gpr, off: i32, rs1: Gpr) {
        self.push(Instr::Load {
            width,
            signed,
            rd,
            rs1,
            offset: off,
        });
    }
    /// `sd rs2, off(rs1)`
    pub fn sd(&mut self, rs2: Gpr, off: i32, rs1: Gpr) {
        self.store(MemWidth::D, rs2, off, rs1);
    }
    /// `sw rs2, off(rs1)`
    pub fn sw(&mut self, rs2: Gpr, off: i32, rs1: Gpr) {
        self.store(MemWidth::W, rs2, off, rs1);
    }
    /// `sb rs2, off(rs1)`
    pub fn sb(&mut self, rs2: Gpr, off: i32, rs1: Gpr) {
        self.store(MemWidth::B, rs2, off, rs1);
    }
    /// Generic store.
    pub fn store(&mut self, width: MemWidth, rs2: Gpr, off: i32, rs1: Gpr) {
        self.push(Instr::Store {
            width,
            rs2,
            rs1,
            offset: off,
        });
    }

    // -- Atomics ---------------------------------------------------------------

    /// `lr.d rd, (rs1)`
    pub fn lr_d(&mut self, rd: Gpr, rs1: Gpr) {
        self.push(Instr::Lr {
            width: MemWidth::D,
            rd,
            rs1,
        });
    }
    /// `sc.d rd, rs2, (rs1)`
    pub fn sc_d(&mut self, rd: Gpr, rs2: Gpr, rs1: Gpr) {
        self.push(Instr::Sc {
            width: MemWidth::D,
            rd,
            rs1,
            rs2,
        });
    }
    /// `amoadd.d rd, rs2, (rs1)`
    pub fn amoadd_d(&mut self, rd: Gpr, rs2: Gpr, rs1: Gpr) {
        self.amo(AmoOp::Add, MemWidth::D, rd, rs2, rs1);
    }
    /// `amoswap.w rd, rs2, (rs1)`
    pub fn amoswap_w(&mut self, rd: Gpr, rs2: Gpr, rs1: Gpr) {
        self.amo(AmoOp::Swap, MemWidth::W, rd, rs2, rs1);
    }
    /// Generic AMO.
    pub fn amo(&mut self, op: AmoOp, width: MemWidth, rd: Gpr, rs2: Gpr, rs1: Gpr) {
        self.push(Instr::Amo {
            op,
            width,
            rd,
            rs1,
            rs2,
        });
    }
    /// `fence`
    pub fn fence(&mut self) {
        self.push(Instr::Fence);
    }

    // -- Control flow ------------------------------------------------------------

    /// `beq rs1, rs2, label`
    pub fn beq(&mut self, rs1: Gpr, rs2: Gpr, target: &str) {
        self.branch(BranchCond::Eq, rs1, rs2, target);
    }
    /// `bne rs1, rs2, label`
    pub fn bne(&mut self, rs1: Gpr, rs2: Gpr, target: &str) {
        self.branch(BranchCond::Ne, rs1, rs2, target);
    }
    /// `blt rs1, rs2, label`
    pub fn blt(&mut self, rs1: Gpr, rs2: Gpr, target: &str) {
        self.branch(BranchCond::Lt, rs1, rs2, target);
    }
    /// `bge rs1, rs2, label`
    pub fn bge(&mut self, rs1: Gpr, rs2: Gpr, target: &str) {
        self.branch(BranchCond::Ge, rs1, rs2, target);
    }
    /// `bltu rs1, rs2, label`
    pub fn bltu(&mut self, rs1: Gpr, rs2: Gpr, target: &str) {
        self.branch(BranchCond::Ltu, rs1, rs2, target);
    }
    /// `bgeu rs1, rs2, label`
    pub fn bgeu(&mut self, rs1: Gpr, rs2: Gpr, target: &str) {
        self.branch(BranchCond::Geu, rs1, rs2, target);
    }
    /// `beqz rs1, label`
    pub fn beqz(&mut self, rs1: Gpr, target: &str) {
        self.beq(rs1, Gpr::ZERO, target);
    }
    /// `bnez rs1, label`
    pub fn bnez(&mut self, rs1: Gpr, target: &str) {
        self.bne(rs1, Gpr::ZERO, target);
    }
    /// Generic labeled branch.
    pub fn branch(&mut self, cond: BranchCond, rs1: Gpr, rs2: Gpr, target: &str) {
        self.slots.push(Slot::Branch {
            cond,
            rs1,
            rs2,
            target: target.to_string(),
        });
    }
    /// `j label`
    pub fn j(&mut self, target: &str) {
        self.jal(Gpr::ZERO, target);
    }
    /// `jal rd, label`
    pub fn jal(&mut self, rd: Gpr, target: &str) {
        self.slots.push(Slot::Jal {
            rd,
            target: target.to_string(),
        });
    }
    /// `call label` (jal ra, label)
    pub fn call(&mut self, target: &str) {
        self.jal(Gpr::RA, target);
    }
    /// `ret` (jalr x0, 0(ra))
    pub fn ret(&mut self) {
        self.push(Instr::Jalr {
            rd: Gpr::ZERO,
            rs1: Gpr::RA,
            offset: 0,
        });
    }
    /// `jalr rd, off(rs1)`
    pub fn jalr(&mut self, rd: Gpr, rs1: Gpr, off: i32) {
        self.push(Instr::Jalr {
            rd,
            rs1,
            offset: off,
        });
    }

    // -- Pseudo-instructions --------------------------------------------------------

    /// `nop`
    pub fn nop(&mut self) {
        self.addi(Gpr::ZERO, Gpr::ZERO, 0);
    }
    /// `mv rd, rs`
    pub fn mv(&mut self, rd: Gpr, rs: Gpr) {
        self.addi(rd, rs, 0);
    }
    /// Loads an arbitrary 64-bit constant (expands to 1–8 instructions).
    pub fn li(&mut self, rd: Gpr, v: i64) {
        if (-2048..2048).contains(&v) {
            self.addi(rd, Gpr::ZERO, v as i32);
        } else if v >= i64::from(i32::MIN) && v <= i64::from(i32::MAX) {
            let lo = ((v << 52) >> 52) as i32; // sign-extended low 12
            let hi = v - i64::from(lo);
            // hi might overflow i32 positive range after rounding; lui takes
            // the value mod 2^32 sign-extended.
            let hi32 = (hi as u32) & 0xffff_f000;
            self.push(Instr::Lui {
                rd,
                imm: i64::from(hi32 as i32),
            });
            if lo != 0 {
                self.push(Instr::Alu {
                    op: AluOp::Add,
                    word: true,
                    rd,
                    rs1: rd,
                    rhs: Rhs::Imm(lo),
                });
            }
        } else {
            // All arithmetic is mod 2^64 in the machine, so wrapping here
            // preserves `(hi << 12) + lo == v (mod 2^64)`.
            let lo = ((v << 52) >> 52) as i32;
            let hi = v.wrapping_sub(i64::from(lo)) >> 12;
            self.li(rd, hi);
            self.slli(rd, rd, 12);
            if lo != 0 {
                self.addi(rd, rd, lo);
            }
        }
    }
    /// Loads the address of `label` (pc-relative, 2 instructions).
    pub fn la(&mut self, rd: Gpr, target: &str) {
        self.slots.push(Slot::LaHi {
            rd,
            target: target.to_string(),
        });
        self.slots.push(Slot::LaLo);
    }

    // -- System ----------------------------------------------------------------------

    /// `csrrw rd, csr, rs1`
    pub fn csrrw(&mut self, rd: Gpr, csr: u16, rs1: Gpr) {
        self.push(Instr::Csr {
            op: CsrOp::Rw,
            rd,
            src: CsrSrc::Reg(rs1),
            csr,
        });
    }
    /// `csrrs rd, csr, rs1`
    pub fn csrrs(&mut self, rd: Gpr, csr: u16, rs1: Gpr) {
        self.push(Instr::Csr {
            op: CsrOp::Rs,
            rd,
            src: CsrSrc::Reg(rs1),
            csr,
        });
    }
    /// `csrw csr, rs1`
    pub fn csrw(&mut self, csr: u16, rs1: Gpr) {
        self.csrrw(Gpr::ZERO, csr, rs1);
    }
    /// `csrr rd, csr`
    pub fn csrr(&mut self, rd: Gpr, csr: u16) {
        self.csrrs(rd, csr, Gpr::ZERO);
    }
    /// `ecall`
    pub fn ecall(&mut self) {
        self.push(Instr::Ecall);
    }
    /// `mret`
    pub fn mret(&mut self) {
        self.push(Instr::Mret);
    }
    /// `sfence.vma x0, x0`
    pub fn sfence_vma(&mut self) {
        self.push(Instr::SfenceVma {
            rs1: Gpr::ZERO,
            rs2: Gpr::ZERO,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::decode;

    #[test]
    fn labels_resolve_forward_and_backward() {
        let mut a = Assembler::new(0x8000_0000);
        a.label("top");
        a.nop();
        a.j("end");
        a.j("top");
        a.label("end");
        a.nop();
        let p = a.assemble();
        // j end: at index 1, target index 3 → offset +8.
        match decode(p.text_words()[1]).unwrap() {
            Instr::Jal { offset, .. } => assert_eq!(offset, 8),
            other => panic!("{other:?}"),
        }
        // j top: at index 2, target 0 → offset -8.
        match decode(p.text_words()[2]).unwrap() {
            Instr::Jal { offset, .. } => assert_eq!(offset, -8),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "undefined label")]
    fn undefined_label_panics() {
        let mut a = Assembler::new(0);
        a.j("nowhere");
        let _ = a.assemble();
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn duplicate_label_panics() {
        let mut a = Assembler::new(0);
        a.label("x");
        a.label("x");
    }

    #[test]
    fn program_loads_into_memory() {
        let mut a = Assembler::new(0x8000_0000);
        a.nop();
        a.data_segment(0x8100_0000, vec![1, 2, 3]);
        let p = a.assemble();
        let mut m = SparseMem::new();
        p.load(&mut m);
        assert_eq!(m.read_le(0x8000_0000, 4) as u32, p.text_words()[0]);
        assert_eq!(m.read_u8(0x8100_0002), 3);
    }

    #[test]
    fn li_small_and_32bit() {
        let mut a = Assembler::new(0);
        a.li(Gpr::a(0), 42);
        a.li(Gpr::a(1), -1);
        a.li(Gpr::a(2), 0x1234_5678);
        a.li(Gpr::a(3), -0x1234_5678);
        let p = a.assemble();
        assert!(p.text_words().len() >= 6);
        // All words must decode.
        for w in p.text_words() {
            decode(*w).unwrap();
        }
    }

    #[test]
    fn li_64bit_constants_decode() {
        let mut a = Assembler::new(0);
        for v in [
            0x8000_0000i64,
            0x1234_5678_9abc_def0,
            -0x1234_5678_9abc_def0,
            i64::MAX,
            i64::MIN,
            0x8000_0000_0000_0000u64 as i64,
        ] {
            a.li(Gpr::a(0), v);
        }
        let p = a.assemble();
        for w in p.text_words() {
            decode(*w).unwrap();
        }
    }

    #[test]
    fn la_emits_auipc_addi_pair() {
        let mut a = Assembler::new(0x8000_0000);
        a.la(Gpr::a(0), "dst");
        for _ in 0..100 {
            a.nop();
        }
        a.label("dst");
        a.nop();
        let p = a.assemble();
        match decode(p.text_words()[0]).unwrap() {
            Instr::Auipc { .. } => {}
            other => panic!("expected auipc, got {other:?}"),
        }
        match decode(p.text_words()[1]).unwrap() {
            Instr::Alu {
                op: AluOp::Add,
                rhs: Rhs::Imm(i),
                ..
            } => assert_eq!(i, 0x198), // 102 instructions * 4
            other => panic!("expected addi, got {other:?}"),
        }
    }
}
