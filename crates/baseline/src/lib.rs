//! # riscy-baseline — an in-order RV64IMA core (Rocket substitute)
//!
//! The paper compares RiscyOO against Rocket, an in-order core (Fig. 13),
//! at two memory latencies (Rocket-10 and Rocket-120, Fig. 17). This crate
//! provides that comparison point: a 5-stage-style in-order core with a
//! blocking data path, modeled *functional-first*: instruction semantics
//! come from the golden interpreter while timing is charged through the
//! same cache/TLB substrate the OOO core uses.
//!
//! The key property the paper relies on — an in-order pipeline cannot hide
//! memory latency — is modeled exactly: every load miss stalls the core
//! until the response returns.
//!
//! # Examples
//!
//! ```
//! use riscy_isa::asm::Assembler;
//! use riscy_isa::mem::{DRAM_BASE, MMIO_EXIT};
//! use riscy_isa::reg::Gpr;
//! use riscy_baseline::{InOrderConfig, InOrderSim};
//!
//! let mut a = Assembler::new(DRAM_BASE);
//! a.li(Gpr::a(0), 5);
//! a.li(Gpr::t(0), MMIO_EXIT as i64);
//! a.sd(Gpr::a(0), 0, Gpr::t(0));
//! let prog = a.assemble();
//! let mut sim = InOrderSim::new(InOrderConfig::rocket(120), &prog);
//! let cycles = sim.run(100_000).expect("halts");
//! assert!(cycles > 0);
//! ```

use riscy_isa::asm::Program;
use riscy_isa::inst::{decode, Instr};
use riscy_isa::interp::{Machine, StepOutcome};
use riscy_isa::mem::{is_mmio, SparseMem};
use riscy_isa::vm::Access;
use riscy_mem::msg::{line_of, CoreReq, CoreResp};
use riscy_mem::system::{MemConfig, MemSystem};
use riscy_ooo::config::{mem_rocket, TlbConfig};
use riscy_ooo::tlbport::TlbHier;

/// Configuration of the in-order baseline.
#[derive(Debug, Clone, Copy)]
pub struct InOrderConfig {
    /// Memory system (Rocket-10 / Rocket-120 differ here).
    pub mem: MemConfig,
    /// TLBs (blocking, like Rocket's).
    pub tlb: TlbConfig,
    /// Branch misprediction penalty in cycles (short in-order pipeline).
    pub mispredict_penalty: u64,
    /// Multiply latency.
    pub mul_latency: u64,
    /// Divide latency.
    pub div_latency: u64,
}

impl InOrderConfig {
    /// The Rocket configuration of paper Fig. 13: 16 KB L1 I/D, no L2,
    /// configurable memory latency (10 or 120 cycles).
    #[must_use]
    pub fn rocket(mem_latency: u64) -> Self {
        InOrderConfig {
            mem: mem_rocket(mem_latency),
            tlb: TlbConfig::blocking(),
            mispredict_penalty: 3,
            mul_latency: 4,
            div_latency: 33,
        }
    }
}

/// Per-run statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct InOrderStats {
    /// Instructions retired.
    pub committed: u64,
    /// Cycles executed.
    pub cycles: u64,
    /// Branch mispredictions.
    pub mispredicts: u64,
    /// Cycles in the region of interest.
    pub roi_cycles: u64,
    /// Instructions in the region of interest.
    pub roi_insts: u64,
}

/// A simple bimodal predictor with a BTB for the in-order front end.
#[derive(Debug)]
struct SimplePredictor {
    bimodal: Vec<u8>,
    btb: Vec<Option<(u64, u64)>>,
}

impl SimplePredictor {
    fn new() -> Self {
        SimplePredictor {
            bimodal: vec![1; 1024],
            btb: vec![None; 256],
        }
    }

    fn predict(&self, pc: u64, i: &Instr) -> u64 {
        match i {
            Instr::Jal { offset, .. } => pc.wrapping_add(*offset as i64 as u64),
            Instr::Branch { offset, .. } => {
                let idx = ((pc >> 2) as usize) & 1023;
                if self.bimodal[idx] >= 2 {
                    pc.wrapping_add(*offset as i64 as u64)
                } else {
                    pc + 4
                }
            }
            Instr::Jalr { .. } => {
                let idx = ((pc >> 2) as usize) & 255;
                match self.btb[idx] {
                    Some((tag, t)) if tag == pc => t,
                    _ => pc + 4,
                }
            }
            _ => pc + 4,
        }
    }

    fn train(&mut self, pc: u64, i: &Instr, actual: u64) {
        match i {
            Instr::Branch { .. } => {
                let idx = ((pc >> 2) as usize) & 1023;
                let taken = actual != pc + 4;
                if taken {
                    self.bimodal[idx] = (self.bimodal[idx] + 1).min(3);
                } else {
                    self.bimodal[idx] = self.bimodal[idx].saturating_sub(1);
                }
            }
            Instr::Jalr { .. } => {
                let idx = ((pc >> 2) as usize) & 255;
                self.btb[idx] = Some((pc, actual));
            }
            _ => {}
        }
    }
}

/// What the core is stalled on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stall {
    None,
    /// Ready again at this cycle (fixed-latency stalls).
    Until(u64),
    /// Waiting for an I-cache line.
    Fetch,
    /// Waiting for a D-cache load.
    Load,
    /// Waiting for a TLB fill.
    Tlb,
}

/// The in-order core simulation.
pub struct InOrderSim {
    cfg: InOrderConfig,
    /// Architectural state and memory (functional-first).
    pub machine: Machine,
    mem: MemSystem,
    tlb: TlbHier,
    pred: SimplePredictor,
    stall: Stall,
    /// Outstanding (fire-and-forget) stores in the cache.
    store_credit: u32,
    last_store_line: Option<u64>,
    fetched_lines: std::collections::HashSet<u64>,
    next_tlb_id: u64,
    pending_va: u64,
    pending_access: Access,
    roi_start: Option<(u64, u64)>,
    /// Statistics.
    pub stats: InOrderStats,
}

impl InOrderSim {
    /// Builds the core with `program` loaded.
    #[must_use]
    pub fn new(cfg: InOrderConfig, program: &Program) -> Self {
        let machine = Machine::with_program(1, program);
        let mut timing_mem = SparseMem::new();
        program.load(&mut timing_mem);
        InOrderSim {
            cfg,
            machine,
            mem: MemSystem::new(cfg.mem, 1, timing_mem),
            tlb: TlbHier::new(0, cfg.tlb),
            pred: SimplePredictor::new(),
            stall: Stall::None,
            store_credit: 0,
            last_store_line: None,
            fetched_lines: std::collections::HashSet::new(),
            next_tlb_id: 1,
            pending_va: 0,
            pending_access: Access::Load,
            roi_start: None,
            stats: InOrderStats::default(),
        }
    }

    /// Whether the program has exited.
    #[must_use]
    pub fn exited(&self) -> Option<u64> {
        self.machine.hart(0).halted
    }

    /// Runs until exit or the cycle budget.
    ///
    /// # Errors
    ///
    /// Returns the executed-cycle count when the budget is exhausted.
    pub fn run(&mut self, max_cycles: u64) -> Result<u64, u64> {
        for _ in 0..max_cycles {
            if self.exited().is_some() {
                return Ok(self.stats.cycles);
            }
            self.cycle();
        }
        if self.exited().is_some() {
            Ok(self.stats.cycles)
        } else {
            Err(self.stats.cycles)
        }
    }

    /// ROI statistics `(cycles, instructions)`.
    #[must_use]
    pub fn roi(&self) -> (u64, u64) {
        (self.stats.roi_cycles, self.stats.roi_insts)
    }

    fn translate(&mut self, va: u64, access: Access) -> Option<u64> {
        let h = self.machine.hart(0);
        let (satp, pm) = (h.csrs.satp, h.priv_mode);
        let res = match access {
            Access::Fetch => self.tlb.lookup_i(va, satp, pm),
            _ => self.tlb.lookup_d(va, access, satp, pm),
        };
        match res {
            Some(Ok(pa)) => Some(pa),
            Some(Err(_)) => Some(va), // faults are architectural
            None => {
                let now = self.mem.now();
                let id = self.next_tlb_id;
                self.next_tlb_id += 1;
                match access {
                    Access::Fetch => self.tlb.request_i(now, id, va, pm),
                    _ => {
                        if self.tlb.can_park_d() {
                            self.tlb.request_d(now, id, va, access, pm);
                        }
                    }
                }
                None
            }
        }
    }

    /// One cycle.
    #[allow(clippy::too_many_lines)]
    pub fn cycle(&mut self) {
        // Substrate tick.
        for req in self.tlb.drain_walker_reqs() {
            self.mem.push_walker_req(req);
        }
        while let Some(r) = self.mem.pop_walker_resp(0) {
            self.tlb.push_walker_resp(r);
        }
        let satp = self.machine.hart(0).csrs.satp;
        let now = self.mem.now();
        self.tlb.tick(now, satp);
        while self.tlb.pop_i_resp().is_some() {}
        while self.tlb.pop_d_resp().is_some() {}
        self.mem.tick();
        self.stats.cycles += 1;
        if self.roi_start.is_some() {
            self.stats.roi_cycles += 1;
        }

        // Drain cache responses.
        let now = self.mem.now();
        let mut got_load = false;
        let mut got_fetch = false;
        while let Some(r) = self.mem.dcache(0).pop_resp(now) {
            match r {
                CoreResp::Ld { .. } | CoreResp::Atomic { .. } => got_load = true,
                CoreResp::St { .. } => {
                    if let Some(line) = self.last_store_line.take() {
                        self.mem
                            .dcache(0)
                            .write_data(line, &[0u8; 64], &[false; 64]);
                    }
                    self.store_credit = self.store_credit.saturating_sub(1);
                }
            }
        }
        while let Some(r) = self.mem.icache(0).pop_resp(now) {
            if matches!(r, CoreResp::Ld { .. }) {
                got_fetch = true;
            }
        }

        // Resolve stalls.
        match self.stall {
            Stall::Until(t) if now < t => return,
            Stall::Until(_) => self.stall = Stall::None,
            Stall::Fetch => {
                if got_fetch {
                    self.stall = Stall::None;
                } else {
                    return;
                }
            }
            Stall::Load => {
                if got_load {
                    self.stall = Stall::None;
                } else {
                    return;
                }
            }
            Stall::Tlb => {
                let (va, access) = (self.pending_va, self.pending_access);
                if self.translate(va, access).is_some() {
                    self.stall = Stall::None;
                } else {
                    return;
                }
            }
            Stall::None => {}
        }

        // Fetch timing: I TLB + I cache at line granularity.
        let pc = self.machine.hart(0).pc;
        let Some(fetch_pa) = self.translate(pc, Access::Fetch) else {
            self.pending_va = pc;
            self.pending_access = Access::Fetch;
            self.stall = Stall::Tlb;
            return;
        };
        let fline = line_of(fetch_pa);
        if !self.fetched_lines.contains(&fline) {
            if self.mem.icache(0).can_accept() {
                let _ = self.mem.icache(0).request(CoreReq::Ld {
                    tag: 0,
                    addr: fline,
                    bytes: 8,
                });
                // The bounded set only prevents duplicate requests; the I$
                // array provides the real hit/miss behavior over time.
                if self.fetched_lines.len() > 256 {
                    self.fetched_lines.clear();
                }
                self.fetched_lines.insert(fline);
                self.stall = Stall::Fetch;
            }
            return;
        }

        // Peek the instruction for timing classification.
        let word = self.machine.mem.read_le(fetch_pa, 4) as u32;
        let instr = decode(word).ok();

        // Data-access timing before the architectural step.
        let mut issued_load = false;
        if let Some(i) = &instr {
            if let Some((va, is_load)) = self.data_address(i) {
                let access = if is_load { Access::Load } else { Access::Store };
                let Some(pa) = self.translate(va, access) else {
                    self.pending_va = va;
                    self.pending_access = access;
                    self.stall = Stall::Tlb;
                    return;
                };
                if !is_mmio(pa) {
                    if i.is_mem_read() {
                        if !self.mem.dcache(0).can_accept() {
                            return;
                        }
                        let _ = self.mem.dcache(0).request(CoreReq::Ld {
                            tag: 1,
                            addr: pa & !7,
                            bytes: 8,
                        });
                        issued_load = true;
                    } else {
                        // Store: fire-and-forget with one outstanding slot.
                        if self.store_credit >= 1
                            || self.last_store_line.is_some()
                            || !self.mem.dcache(0).can_accept()
                        {
                            return;
                        }
                        let _ = self.mem.dcache(0).request(CoreReq::St {
                            sb_idx: 0,
                            line: line_of(pa),
                        });
                        self.last_store_line = Some(line_of(pa));
                        self.store_credit += 1;
                    }
                }
            }
        }

        // Architectural step (the golden interpreter *is* the datapath).
        let before_pc = pc;
        let out = self.machine.step(0);
        self.stats.committed += 1;
        if self.roi_start.is_some() {
            self.stats.roi_insts += 1;
        }
        if issued_load {
            self.stall = Stall::Load;
        }
        // ROI tracking via the hart's counters.
        let h = self.machine.hart(0);
        if h.roi_start.is_some() && self.roi_start.is_none() {
            self.roi_start = Some((self.stats.cycles, self.stats.committed));
        } else if h.roi_start.is_none() && self.roi_start.is_some() {
            self.roi_start = None;
        }

        // Control-flow timing.
        if let (Some(i), StepOutcome::Retired(cm)) = (&instr, &out) {
            if i.is_branch_or_jump() {
                let predicted = self.pred.predict(before_pc, i);
                if predicted != cm.next_pc {
                    self.stats.mispredicts += 1;
                    self.stall = Stall::Until(self.mem.now() + self.cfg.mispredict_penalty);
                }
                self.pred.train(before_pc, i, cm.next_pc);
            }
            if let Instr::MulDiv { op, .. } = i {
                use riscy_isa::inst::MulDivOp::{Mul, Mulh, Mulhsu, Mulhu};
                let lat = match op {
                    Mul | Mulh | Mulhsu | Mulhu => self.cfg.mul_latency,
                    _ => self.cfg.div_latency,
                };
                self.stall = Stall::Until(self.mem.now() + lat);
            }
        }
    }

    fn data_address(&self, i: &Instr) -> Option<(u64, bool)> {
        let h = self.machine.hart(0);
        match *i {
            Instr::Load { rs1, offset, .. } => {
                Some((h.reg(rs1).wrapping_add(offset as i64 as u64), true))
            }
            Instr::Store { rs1, offset, .. } => {
                Some((h.reg(rs1).wrapping_add(offset as i64 as u64), false))
            }
            Instr::Lr { rs1, .. } | Instr::Amo { rs1, .. } => Some((h.reg(rs1), true)),
            Instr::Sc { rs1, .. } => Some((h.reg(rs1), false)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use riscy_isa::asm::Assembler;
    use riscy_isa::mem::{DRAM_BASE, MMIO_EXIT};
    use riscy_isa::reg::Gpr;

    fn sum_program(n: i64) -> Program {
        let mut a = Assembler::new(DRAM_BASE);
        let (t0, t1) = (Gpr::t(0), Gpr::t(1));
        a.li(t0, n);
        a.li(t1, 0);
        a.label("loop");
        a.add(t1, t1, t0);
        a.addi(t0, t0, -1);
        a.bnez(t0, "loop");
        a.li(Gpr::t(6), MMIO_EXIT as i64);
        a.sd(t1, 0, Gpr::t(6));
        a.assemble()
    }

    #[test]
    fn computes_correctly() {
        let mut sim = InOrderSim::new(InOrderConfig::rocket(10), &sum_program(100));
        sim.run(200_000).expect("halts");
        assert_eq!(sim.exited(), Some(5050));
    }

    fn chase() -> Program {
        let mut a = Assembler::new(DRAM_BASE);
        let base = (DRAM_BASE + 0x100000) as i64;
        let n = 512i64;
        a.li(Gpr::t(0), base);
        a.li(Gpr::t(1), 0);
        a.label("init");
        a.addi(Gpr::t(2), Gpr::t(0), 0);
        a.li(Gpr::t(3), 4096);
        a.add(Gpr::t(2), Gpr::t(2), Gpr::t(3));
        a.sd(Gpr::t(2), 0, Gpr::t(0));
        a.mv(Gpr::t(0), Gpr::t(2));
        a.addi(Gpr::t(1), Gpr::t(1), 1);
        a.li(Gpr::t(4), n);
        a.bne(Gpr::t(1), Gpr::t(4), "init");
        a.li(Gpr::t(0), base);
        a.li(Gpr::t(1), 0);
        a.label("chase");
        a.ld(Gpr::t(0), 0, Gpr::t(0));
        a.addi(Gpr::t(1), Gpr::t(1), 1);
        a.li(Gpr::t(4), n - 1);
        a.bne(Gpr::t(1), Gpr::t(4), "chase");
        a.li(Gpr::t(6), MMIO_EXIT as i64);
        a.sd(Gpr::ZERO, 0, Gpr::t(6));
        a.assemble()
    }

    #[test]
    fn memory_latency_hurts_in_order() {
        let mut fast = InOrderSim::new(InOrderConfig::rocket(10), &chase());
        let c_fast = fast.run(4_000_000).expect("halts");
        let mut slow = InOrderSim::new(InOrderConfig::rocket(120), &chase());
        let c_slow = slow.run(12_000_000).expect("halts");
        assert!(
            c_slow as f64 > 1.5 * c_fast as f64,
            "120-cycle memory must hurt: {c_slow} vs {c_fast}"
        );
    }

    #[test]
    fn branchy_code_pays_mispredicts() {
        let mut a = Assembler::new(DRAM_BASE);
        let (x, i) = (Gpr::s(0), Gpr::s(2));
        a.li(x, 999);
        a.li(i, 200);
        a.label("loop");
        a.li(Gpr::t(0), 1_103_515_245);
        a.mul(x, x, Gpr::t(0));
        a.addi(x, x, 1234);
        a.andi(Gpr::t(1), x, 4);
        a.beqz(Gpr::t(1), "skip");
        a.nop();
        a.label("skip");
        a.addi(i, i, -1);
        a.bnez(i, "loop");
        a.li(Gpr::t(6), MMIO_EXIT as i64);
        a.sd(Gpr::ZERO, 0, Gpr::t(6));
        let mut sim = InOrderSim::new(InOrderConfig::rocket(10), &a.assemble());
        sim.run(400_000).expect("halts");
        assert!(
            sim.stats.mispredicts > 30,
            "random branches must mispredict"
        );
    }
}
