//! PARSEC proxy workloads (multithreaded, paper Fig. 20).
//!
//! The paper runs seven PARSEC benchmarks with simlarge inputs on a
//! quad-core, comparing TSO and WMM scaling at 1/2/4 threads. What that
//! experiment exercises is sharing pattern + synchronization + store-buffer
//! behavior, so each proxy reproduces its namesake's *parallel structure*:
//!
//! | proxy | structure |
//! |---|---|
//! | blackscholes | embarrassingly parallel compute (mul/div heavy) |
//! | swaptions | independent Monte-Carlo per thread |
//! | streamcluster | shared read-only streaming + barriers per round |
//! | fluidanimate | region updates with fine-grained locks |
//! | facesim | memory-heavy data-parallel updates |
//! | ferret | pipeline parallelism over shared counters |
//! | freqmine | concurrent counter-table updates (AMO heavy) |
//!
//! Every hart runs the same binary; work is partitioned by `mhartid`.
//! Hart 0 brackets the parallel phase with ROI markers — the paper's
//! `parsec_roi_begin`/`parsec_roi_end`.

use riscy_isa::asm::Assembler;
use riscy_isa::csr::addr as csr;
use riscy_isa::mem::DRAM_BASE;
use riscy_isa::reg::Gpr;

use crate::runtime::{
    build_page_tables, emit_barrier, emit_enter_supervisor, emit_exit_hart, emit_lock_acquire,
    emit_lock_release, emit_roi_begin, emit_roi_end, PAGED_VA_BASE, RW,
};
use crate::spec::{Scale, Workload};

/// Shared synchronization block (DRAM, identity-mapped by the gigapage).
const SYNC_BASE: i64 = (DRAM_BASE + 0x20_0000) as i64;
const BAR_COUNTER: i64 = SYNC_BASE;
const BAR_SENSE: i64 = SYNC_BASE + 64;
const LOCK0: i64 = SYNC_BASE + 128;
const SHARED0: i64 = SYNC_BASE + 192;

/// The seven PARSEC proxies for `nthreads` harts.
#[must_use]
pub fn parsec_suite(scale: Scale, nthreads: usize) -> Vec<Workload> {
    vec![
        blackscholes(scale, nthreads),
        facesim(scale, nthreads),
        ferret(scale, nthreads),
        fluidanimate(scale, nthreads),
        freqmine(scale, nthreads),
        swaptions(scale, nthreads),
        streamcluster(scale, nthreads),
    ]
}

fn factor(scale: Scale) -> i64 {
    match scale {
        Scale::Test => 1,
        Scale::Ref => 4,
    }
}

/// Prologue: paging on, registers set up, all harts at a barrier, hart 0
/// opens the ROI.
///
/// Register conventions inside proxies: `s4` barrier counter addr, `s5`
/// sense addr, `s6` lock addr, `s7` shared addr, `s8` hart id, `s10` local
/// sense, `s0` result accumulator.
fn prologue(n_pages: usize, nthreads: usize) -> (Assembler, crate::runtime::Paging) {
    let paging = build_page_tables(n_pages, RW);
    let mut a = Assembler::new(DRAM_BASE);
    emit_enter_supervisor(&mut a, paging.root_ppn, "sv_main");
    a.li(Gpr::s(4), BAR_COUNTER);
    a.li(Gpr::s(5), BAR_SENSE);
    a.li(Gpr::s(6), LOCK0);
    a.li(Gpr::s(7), SHARED0);
    a.csrr(Gpr::s(8), csr::MHARTID);
    a.li(Gpr::s(10), 0);
    a.li(Gpr::s(0), 0);
    emit_barrier(
        &mut a,
        Gpr::s(4),
        Gpr::s(5),
        Gpr::s(10),
        nthreads as i64,
        "start",
    );
    // Only hart 0 writes the ROI markers.
    a.bnez(Gpr::s(8), "no_roi_begin");
    emit_roi_begin(&mut a);
    a.label("no_roi_begin");
    (a, paging)
}

/// Epilogue: closing barrier, hart 0 ends the ROI, per-hart exit.
fn epilogue(
    mut a: Assembler,
    paging: crate::runtime::Paging,
    nthreads: usize,
    name: &'static str,
    scale: Scale,
) -> Workload {
    emit_barrier(
        &mut a,
        Gpr::s(4),
        Gpr::s(5),
        Gpr::s(10),
        nthreads as i64,
        "end",
    );
    a.bnez(Gpr::s(8), "no_roi_end");
    emit_roi_end(&mut a);
    a.label("no_roi_end");
    emit_exit_hart(&mut a, Gpr::s(0), "exit");
    let mut prog = a.assemble();
    for (pa, b) in paging.segments {
        prog.add_data(pa, b);
    }
    Workload {
        name,
        program: prog,
        max_cycles: 30_000_000 * factor(scale) as u64,
    }
}

/// blackscholes: independent fixed-point option pricing per thread.
#[must_use]
pub fn blackscholes(scale: Scale, nthreads: usize) -> Workload {
    let (mut a, paging) = prologue(16, nthreads);
    a.li(Gpr::s(2), 400 * factor(scale) / nthreads as i64);
    a.li(Gpr::s(1), 17);
    a.add(Gpr::s(1), Gpr::s(1), Gpr::s(8)); // per-thread seed
    a.label("opt");
    // Fixed-point pricing-ish kernel: mul/div chains.
    a.li(Gpr::t(0), 98765);
    a.mul(Gpr::t(1), Gpr::s(1), Gpr::t(0));
    a.li(Gpr::t(2), 321);
    a.div(Gpr::t(1), Gpr::t(1), Gpr::t(2));
    a.add(Gpr::s(0), Gpr::s(0), Gpr::t(1));
    a.addi(Gpr::s(1), Gpr::s(1), 7);
    a.addi(Gpr::s(2), Gpr::s(2), -1);
    a.bnez(Gpr::s(2), "opt");
    epilogue(a, paging, nthreads, "blackscholes", scale)
}

/// swaptions: per-thread LCG Monte-Carlo, zero sharing.
#[must_use]
pub fn swaptions(scale: Scale, nthreads: usize) -> Workload {
    let (mut a, paging) = prologue(16, nthreads);
    a.li(Gpr::s(2), 1500 * factor(scale) / nthreads as i64);
    a.li(Gpr::s(1), 0xbeef);
    a.add(Gpr::s(1), Gpr::s(1), Gpr::s(8));
    a.label("mc");
    a.li(Gpr::t(0), 1_103_515_245);
    a.mul(Gpr::s(1), Gpr::s(1), Gpr::t(0));
    a.addi(Gpr::s(1), Gpr::s(1), 1234);
    a.srli(Gpr::t(1), Gpr::s(1), 33);
    a.add(Gpr::s(0), Gpr::s(0), Gpr::t(1));
    a.addi(Gpr::s(2), Gpr::s(2), -1);
    a.bnez(Gpr::s(2), "mc");
    epilogue(a, paging, nthreads, "swaptions", scale)
}

/// streamcluster: rounds of shared read-only streaming with a barrier per
/// round.
#[must_use]
pub fn streamcluster(scale: Scale, nthreads: usize) -> Workload {
    let pages = 256; // 1 MiB shared points array
    let (mut a, paging) = prologue(pages, nthreads);
    let rounds = 4 * factor(scale);
    a.li(Gpr::s(3), rounds);
    a.label("round");
    // The array is divided among the threads (fixed total work).
    let chunk_bytes = (pages as i64 * 4096) / nthreads as i64;
    a.li(Gpr::t(2), chunk_bytes);
    a.mul(Gpr::t(3), Gpr::s(8), Gpr::t(2));
    a.li(Gpr::s(1), PAGED_VA_BASE as i64);
    a.add(Gpr::s(1), Gpr::s(1), Gpr::t(3));
    a.li(Gpr::s(2), chunk_bytes / 64);
    a.label("pts");
    a.ld(Gpr::t(0), 0, Gpr::s(1));
    a.add(Gpr::s(0), Gpr::s(0), Gpr::t(0));
    a.addi(Gpr::s(1), Gpr::s(1), 64);
    a.addi(Gpr::s(2), Gpr::s(2), -1);
    a.bnez(Gpr::s(2), "pts");
    a.addi(Gpr::s(3), Gpr::s(3), -1);
    emit_barrier(
        &mut a,
        Gpr::s(4),
        Gpr::s(5),
        Gpr::s(10),
        nthreads as i64,
        "round",
    );
    a.bnez(Gpr::s(3), "round");
    epilogue(a, paging, nthreads, "streamcluster", scale)
}

/// fluidanimate: per-thread region updates, lock-protected boundary cells.
#[must_use]
pub fn fluidanimate(scale: Scale, nthreads: usize) -> Workload {
    let pages = 64;
    let (mut a, paging) = prologue(pages, nthreads);
    a.li(Gpr::s(2), 160 * factor(scale) / nthreads as i64);
    // Private region: hart * 16 KiB.
    a.li(Gpr::t(0), 16 * 1024);
    a.mul(Gpr::t(1), Gpr::s(8), Gpr::t(0));
    a.li(Gpr::s(1), PAGED_VA_BASE as i64);
    a.add(Gpr::s(1), Gpr::s(1), Gpr::t(1));
    a.label("cell");
    // Update a strip of private cells with neighbor coupling: the bulk of
    // each region update is lock-free (as in the real benchmark).
    for k in 0..48 {
        a.ld(Gpr::t(0), 8 * k, Gpr::s(1));
        a.ld(Gpr::t(2), 8 * (k + 1), Gpr::s(1));
        a.add(Gpr::t(0), Gpr::t(0), Gpr::t(2));
        a.addi(Gpr::t(0), Gpr::t(0), 1);
        a.sd(Gpr::t(0), 8 * k, Gpr::s(1));
    }
    // Boundary cell shared under a lock.
    emit_lock_acquire(&mut a, Gpr::s(6), "cell");
    a.ld(Gpr::t(2), 0, Gpr::s(7));
    a.addi(Gpr::t(2), Gpr::t(2), 1);
    a.sd(Gpr::t(2), 0, Gpr::s(7));
    emit_lock_release(&mut a, Gpr::s(6));
    a.addi(Gpr::s(2), Gpr::s(2), -1);
    a.bnez(Gpr::s(2), "cell");
    epilogue(a, paging, nthreads, "fluidanimate", scale)
}

/// facesim: memory-heavy data-parallel sweeps over a private 1 MiB strip.
#[must_use]
pub fn facesim(scale: Scale, nthreads: usize) -> Workload {
    let pages = 1024; // 4 MiB total
    let (mut a, paging) = prologue(pages, nthreads);
    a.li(Gpr::s(3), 2 * factor(scale)); // sweeps
    a.label("sweep");
    let strip = (pages as i64 * 4096) / nthreads as i64;
    a.li(Gpr::t(0), strip);
    a.mul(Gpr::t(1), Gpr::s(8), Gpr::t(0));
    a.li(Gpr::s(1), PAGED_VA_BASE as i64);
    a.add(Gpr::s(1), Gpr::s(1), Gpr::t(1));
    a.li(Gpr::s(2), strip / 256);
    a.label("node");
    a.ld(Gpr::t(0), 0, Gpr::s(1));
    a.ld(Gpr::t(3), 64, Gpr::s(1));
    a.slli(Gpr::t(2), Gpr::t(0), 1);
    a.add(Gpr::t(0), Gpr::t(0), Gpr::t(2));
    a.add(Gpr::t(0), Gpr::t(0), Gpr::t(3));
    a.sd(Gpr::t(0), 0, Gpr::s(1));
    a.addi(Gpr::s(1), Gpr::s(1), 256);
    a.addi(Gpr::s(2), Gpr::s(2), -1);
    a.bnez(Gpr::s(2), "node");
    a.addi(Gpr::s(3), Gpr::s(3), -1);
    a.bnez(Gpr::s(3), "sweep");
    epilogue(a, paging, nthreads, "facesim", scale)
}

/// ferret: pipeline parallelism — work tokens flow through per-stage
/// published counters; each hart is one stage.
#[must_use]
pub fn ferret(scale: Scale, nthreads: usize) -> Workload {
    let (mut a, paging) = prologue(16, nthreads);
    let items = 120 * factor(scale);
    // The conceptual pipeline has 4 stages of work per item; with n harts,
    // each hart runs 4/n of them, so the total work is constant and
    // pipelining yields speedup (as in the real benchmark).
    let units = (4 / nthreads).max(1);
    a.li(Gpr::s(2), items);
    a.label("item");
    // stage counter address = SHARED0 + 64*hart
    a.slli(Gpr::t(0), Gpr::s(8), 6);
    a.add(Gpr::t(1), Gpr::s(7), Gpr::t(0));
    a.beqz(Gpr::s(8), "produce");
    // Consumer: wait until the upstream count exceeds ours.
    a.label("wait_in");
    a.addi(Gpr::t(2), Gpr::t(1), -64);
    a.ld(Gpr::t(3), 0, Gpr::t(2)); // upstream count
    a.ld(Gpr::t(4), 0, Gpr::t(1)); // own count
    a.bgeu(Gpr::t(4), Gpr::t(3), "wait_in");
    a.label("produce");
    // "Process" the token: this hart's share of the stage units.
    a.li(Gpr::t(5), 37);
    for _ in 0..units {
        a.mul(Gpr::s(0), Gpr::s(0), Gpr::t(5));
        a.addi(Gpr::s(0), Gpr::s(0), 1);
        a.mul(Gpr::s(3), Gpr::s(0), Gpr::t(5));
        a.xor(Gpr::s(0), Gpr::s(0), Gpr::s(3));
        a.muldiv(
            riscy_isa::inst::MulDivOp::Div,
            Gpr::s(3),
            Gpr::s(3),
            Gpr::t(5),
        );
        a.add(Gpr::s(0), Gpr::s(0), Gpr::s(3));
    }
    // Publish: increment own count.
    a.fence();
    a.li(Gpr::t(5), 1);
    a.amoadd_d(Gpr::ZERO, Gpr::t(5), Gpr::t(1));
    a.li(Gpr::t(5), 37);
    a.addi(Gpr::s(2), Gpr::s(2), -1);
    a.bnez(Gpr::s(2), "item");
    epilogue(a, paging, nthreads, "ferret", scale)
}

/// freqmine: concurrent frequency-counter updates with AMOs over a shared
/// table.
#[must_use]
pub fn freqmine(scale: Scale, nthreads: usize) -> Workload {
    let pages = 32;
    let (mut a, paging) = prologue(pages, nthreads);
    a.li(Gpr::s(2), 800 * factor(scale) / nthreads as i64);
    a.li(Gpr::s(1), 0xf5ee);
    a.add(Gpr::s(1), Gpr::s(1), Gpr::s(8));
    a.li(Gpr::s(3), PAGED_VA_BASE as i64);
    a.label("txn");
    a.li(Gpr::t(0), 1_103_515_245);
    a.mul(Gpr::s(1), Gpr::s(1), Gpr::t(0));
    a.addi(Gpr::s(1), Gpr::s(1), 1234);
    // Bucket = (x >> 8) & 0x1fff8 (8-byte aligned inside the table).
    a.srli(Gpr::t(1), Gpr::s(1), 8);
    a.li(Gpr::t(2), 0x1_fff8);
    a.and(Gpr::t(1), Gpr::t(1), Gpr::t(2));
    a.add(Gpr::t(1), Gpr::t(1), Gpr::s(3));
    a.li(Gpr::t(3), 1);
    a.amoadd_d(Gpr::t(4), Gpr::t(3), Gpr::t(1));
    a.add(Gpr::s(0), Gpr::s(0), Gpr::t(4));
    a.addi(Gpr::s(2), Gpr::s(2), -1);
    a.bnez(Gpr::s(2), "txn");
    epilogue(a, paging, nthreads, "freqmine", scale)
}

#[cfg(test)]
mod tests {
    use super::*;
    use riscy_isa::interp::Machine;

    #[test]
    fn all_proxies_run_on_golden_model_at_each_thread_count() {
        let counts: &[usize] = if cfg!(debug_assertions) {
            &[2]
        } else {
            &[1, 2, 4]
        };
        for &n in counts {
            for w in parsec_suite(Scale::Test, n) {
                let mut m = Machine::with_program(n, &w.program);
                m.run(80_000_000)
                    .unwrap_or_else(|s| panic!("{} ({n} threads) stuck at {s}", w.name));
                assert!(m.all_halted(), "{} ({n} threads)", w.name);
                assert!(
                    m.hart(0).roi_insts > 100,
                    "{} ({n} threads) ROI: {}",
                    w.name,
                    m.hart(0).roi_insts
                );
            }
        }
    }

    #[test]
    fn fluidanimate_lock_counts_are_exact() {
        let n = 2;
        let w = fluidanimate(Scale::Test, n);
        let mut m = Machine::with_program(n, &w.program);
        m.run(80_000_000).expect("halts");
        // 320 total iterations (divided among harts) increment the shared
        // boundary cell under the lock.
        let shared = m.mem.read_u64(SHARED0 as u64);
        assert_eq!(shared, 160);
    }
}
