//! Bare-metal runtime for the benchmark proxies: Sv39 page-table
//! construction, supervisor entry, per-hart exit, ROI markers, spinlocks
//! and barriers.
//!
//! This substitutes for the paper's Linux environment: paging is enabled
//! (so the TLB/page-walk path of Figs. 15–16 is exercised identically) but
//! there are no system calls — the paper's benchmarks are also measured
//! purely in their compute regions.

use riscy_isa::asm::Assembler;
use riscy_isa::csr::addr as csr;
use riscy_isa::mem::{DRAM_BASE, MMIO_EXIT, MMIO_ROI};
use riscy_isa::reg::Gpr;
use riscy_isa::vm::{make_leaf, make_pointer, pte, SATP_MODE_SV39};

/// Physical base of the page-table pool.
pub const TABLE_BASE: u64 = DRAM_BASE + 0x40_0000;
/// Virtual base of the 4 KiB-paged data region (vpn2 = 32).
pub const PAGED_VA_BASE: u64 = 32 << 30;
/// Physical base backing the 4 KiB-paged region.
pub const PAGED_PA_BASE: u64 = DRAM_BASE + 0x100_0000;

/// Flags for a normal read-write data page.
pub const RW: u64 = pte::R | pte::W | pte::A | pte::D;
/// Flags for read-only data.
pub const RO: u64 = pte::R | pte::A;

/// The produced paging structures.
#[derive(Debug, Clone)]
pub struct Paging {
    /// Root page-table PPN (for satp).
    pub root_ppn: u64,
    /// Data segments holding the page tables.
    pub segments: Vec<(u64, Vec<u8>)>,
}

/// Builds Sv39 page tables: identity gigapages for DRAM (RWX) and the MMIO
/// block (RW), plus `n_pages` 4 KiB pages mapping
/// `PAGED_VA_BASE + i*4K → PAGED_PA_BASE + i*4K`.
///
/// # Panics
///
/// Panics if `n_pages` exceeds the paged region (2 GiB worth of PTEs).
#[must_use]
pub fn build_page_tables(n_pages: usize, flags: u64) -> Paging {
    assert!(n_pages <= 512 * 512, "paged region too large");
    let mut tables: Vec<(u64, Vec<u64>)> = Vec::new();
    let mut next_page = TABLE_BASE;
    let mut alloc = || {
        let pa = next_page;
        next_page += 4096;
        (pa, vec![0u64; 512])
    };
    let (root_pa, mut root) = alloc();

    // Identity gigapages.
    let dram_vpn2 = (DRAM_BASE >> 30) as usize; // = 2
    root[dram_vpn2] = make_leaf(DRAM_BASE >> 12, pte::R | pte::W | pte::X | pte::A | pte::D);
    root[0] = make_leaf(0, RW); // covers the MMIO block

    // The 4 KiB-paged region.
    if n_pages > 0 {
        let vpn2 = (PAGED_VA_BASE >> 30) as usize;
        let (l1_pa, mut l1) = alloc();
        root[vpn2] = make_pointer(l1_pa >> 12);
        let n_l0 = n_pages.div_ceil(512);
        let mut l0_tables = Vec::new();
        for (t, l1_slot) in l1.iter_mut().take(n_l0).enumerate() {
            let (l0_pa, mut l0) = alloc();
            *l1_slot = make_pointer(l0_pa >> 12);
            for (i, l0_slot) in l0.iter_mut().enumerate() {
                let page = t * 512 + i;
                if page >= n_pages {
                    break;
                }
                let pa = PAGED_PA_BASE + (page as u64) * 4096;
                *l0_slot = make_leaf(pa >> 12, flags);
            }
            l0_tables.push((l0_pa, l0));
        }
        tables.push((l1_pa, l1));
        tables.extend(l0_tables);
    }
    tables.push((root_pa, root));

    let segments = tables
        .into_iter()
        .map(|(pa, words)| {
            let mut bytes = Vec::with_capacity(words.len() * 8);
            for w in words {
                bytes.extend_from_slice(&w.to_le_bytes());
            }
            (pa, bytes)
        })
        .collect();
    Paging {
        root_ppn: root_pa >> 12,
        segments,
    }
}

/// Emits the M→S transition: program satp, fence, and `mret` into S-mode at
/// the next instruction. Clobbers `t0`/`t1`.
pub fn emit_enter_supervisor(a: &mut Assembler, root_ppn: u64, label: &str) {
    let satp = (SATP_MODE_SV39 << 60) | root_ppn;
    a.li(Gpr::t(0), satp as i64);
    a.csrw(csr::SATP, Gpr::t(0));
    a.sfence_vma();
    // mstatus.MPP = 01 (S-mode).
    a.li(Gpr::t(0), 1 << 11);
    a.csrw(csr::MSTATUS, Gpr::t(0));
    a.la(Gpr::t(1), label);
    a.csrw(csr::MEPC, Gpr::t(1));
    a.mret();
    a.label(label);
}

/// Emits the ROI-begin marker (store 1 to the ROI device). Clobbers
/// `t0`/`t1`.
pub fn emit_roi_begin(a: &mut Assembler) {
    a.li(Gpr::t(0), MMIO_ROI as i64);
    a.li(Gpr::t(1), 1);
    a.sd(Gpr::t(1), 0, Gpr::t(0));
}

/// Emits the ROI-end marker. Clobbers `t0`.
pub fn emit_roi_end(a: &mut Assembler) {
    a.li(Gpr::t(0), MMIO_ROI as i64);
    a.sd(Gpr::ZERO, 0, Gpr::t(0));
}

/// Emits the exit sequence with the value of `reg`, then an idle loop.
/// Clobbers `t6`. Uses a unique hang label per call site via `tag`.
pub fn emit_exit_reg(a: &mut Assembler, reg: Gpr, tag: &str) {
    a.li(Gpr::t(6), MMIO_EXIT as i64);
    a.sd(reg, 0, Gpr::t(6));
    let label = format!("__hang_{tag}");
    a.label(&label);
    a.j(&label);
}

/// Emits a per-hart exit (`MMIO_EXIT + 8*mhartid`), then an idle loop.
/// Clobbers `t3`/`t4`. `tag` must be unique per call site.
pub fn emit_exit_hart(a: &mut Assembler, code_reg: Gpr, tag: &str) {
    a.csrr(Gpr::t(3), csr::MHARTID);
    a.slli(Gpr::t(3), Gpr::t(3), 3);
    a.li(Gpr::t(4), MMIO_EXIT as i64);
    a.add(Gpr::t(4), Gpr::t(4), Gpr::t(3));
    a.sd(code_reg, 0, Gpr::t(4));
    let label = format!("__hang_{tag}");
    a.label(&label);
    a.j(&label);
}

/// Emits a spinlock acquire on the word at address in `addr_reg`.
/// Clobbers `t0`/`t1`. `tag` must be unique per call site.
pub fn emit_lock_acquire(a: &mut Assembler, addr_reg: Gpr, tag: &str) {
    let label = format!("__acq_{tag}");
    a.label(&label);
    a.li(Gpr::t(0), 1);
    a.amoswap_w(Gpr::t(1), Gpr::t(0), addr_reg);
    a.bnez(Gpr::t(1), &label);
    a.fence();
}

/// Emits a spinlock release. Clobbers nothing beyond the AMO.
pub fn emit_lock_release(a: &mut Assembler, addr_reg: Gpr) {
    a.fence();
    a.amoswap_w(Gpr::ZERO, Gpr::ZERO, addr_reg);
}

/// Emits a sense-reversing barrier for `nthreads` harts.
///
/// `counter_reg`/`sense_reg` hold the addresses of the barrier counter and
/// sense word; `local_sense` is a callee-owned register holding this hart's
/// current sense (initialized to 0 before the first barrier). Clobbers
/// `t0`–`t2`. `tag` must be unique per call site.
pub fn emit_barrier(
    a: &mut Assembler,
    counter_reg: Gpr,
    sense_reg: Gpr,
    local_sense: Gpr,
    nthreads: i64,
    tag: &str,
) {
    // local_sense = 1 - local_sense
    a.xori(local_sense, local_sense, 1);
    a.fence();
    // arrivals = amoadd(counter, 1) + 1
    a.li(Gpr::t(0), 1);
    a.amoadd_d(Gpr::t(1), Gpr::t(0), counter_reg);
    a.addi(Gpr::t(1), Gpr::t(1), 1);
    a.li(Gpr::t(2), nthreads);
    let last = format!("__bar_last_{tag}");
    let wait = format!("__bar_wait_{tag}");
    let done = format!("__bar_done_{tag}");
    a.beq(Gpr::t(1), Gpr::t(2), &last);
    // Waiters spin until the sense flips.
    a.label(&wait);
    a.lw(Gpr::t(0), 0, sense_reg);
    a.bne(Gpr::t(0), local_sense, &wait);
    a.j(&done);
    // The last arriver resets the counter and flips the sense.
    a.label(&last);
    a.sd(Gpr::ZERO, 0, counter_reg);
    a.fence();
    a.sw(local_sense, 0, sense_reg);
    a.label(&done);
    a.fence();
}

/// Builds a little-endian `u64` data segment from words.
#[must_use]
pub fn words_segment(words: &[u64]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(words.len() * 8);
    for w in words {
        bytes.extend_from_slice(&w.to_le_bytes());
    }
    bytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use riscy_isa::interp::Machine;

    #[test]
    fn page_tables_translate_paged_region() {
        let paging = build_page_tables(1024, RW);
        let mut mem = riscy_isa::mem::SparseMem::new();
        for (pa, bytes) in &paging.segments {
            mem.write_bytes(*pa, bytes);
        }
        // Walk VA PAGED_VA_BASE + 0x5123 by hand.
        let t = riscy_isa::vm::walk_sv39(
            paging.root_ppn,
            PAGED_VA_BASE + 0x5123,
            riscy_isa::vm::Access::Load,
            riscy_isa::csr::Priv::S,
            |pa| mem.read_u64(pa),
        )
        .expect("mapped");
        assert_eq!(t.pa, PAGED_PA_BASE + 0x5123);
        // DRAM gigapage.
        let t2 = riscy_isa::vm::walk_sv39(
            paging.root_ppn,
            DRAM_BASE + 0x1234,
            riscy_isa::vm::Access::Fetch,
            riscy_isa::csr::Priv::S,
            |pa| mem.read_u64(pa),
        )
        .expect("identity mapped");
        assert_eq!(t2.pa, DRAM_BASE + 0x1234);
        // Unmapped page faults.
        assert!(riscy_isa::vm::walk_sv39(
            paging.root_ppn,
            PAGED_VA_BASE + 1024 * 4096,
            riscy_isa::vm::Access::Load,
            riscy_isa::csr::Priv::S,
            |pa| mem.read_u64(pa),
        )
        .is_err());
    }

    #[test]
    fn supervisor_entry_runs_paged_code_on_golden_model() {
        let paging = build_page_tables(4, RW);
        let mut a = Assembler::new(DRAM_BASE);
        emit_enter_supervisor(&mut a, paging.root_ppn, "sv");
        // Touch the paged region.
        a.li(Gpr::t(0), PAGED_VA_BASE as i64);
        a.li(Gpr::t(1), 0xabcd);
        a.sd(Gpr::t(1), 0, Gpr::t(0));
        a.ld(Gpr::s(0), 0, Gpr::t(0));
        emit_exit_reg(&mut a, Gpr::s(0), "t");
        let mut prog = a.assemble();
        for (pa, b) in paging.segments {
            prog.add_data(pa, b);
        }
        let mut m = Machine::with_program(1, &prog);
        m.run(10_000).expect("halts");
        assert_eq!(m.hart(0).halted, Some(0xabcd));
        assert_eq!(m.mem.read_u64(PAGED_PA_BASE), 0xabcd, "VA→PA mapping used");
    }

    #[test]
    fn barrier_and_locks_work_on_golden_model() {
        let mut a = Assembler::new(DRAM_BASE);
        let bar_counter = (DRAM_BASE + 0x20_0000) as i64;
        let bar_sense = bar_counter + 64;
        let lock = bar_counter + 128;
        let shared = bar_counter + 192;
        a.li(Gpr::s(4), bar_counter);
        a.li(Gpr::s(5), bar_sense);
        a.li(Gpr::s(6), lock);
        a.li(Gpr::s(7), shared);
        a.li(Gpr::s(10), 0); // local sense
        for round in 0..3 {
            emit_lock_acquire(&mut a, Gpr::s(6), &format!("r{round}"));
            a.ld(Gpr::t(2), 0, Gpr::s(7));
            a.addi(Gpr::t(2), Gpr::t(2), 1);
            a.sd(Gpr::t(2), 0, Gpr::s(7));
            emit_lock_release(&mut a, Gpr::s(6));
            emit_barrier(
                &mut a,
                Gpr::s(4),
                Gpr::s(5),
                Gpr::s(10),
                2,
                &format!("r{round}"),
            );
        }
        a.ld(Gpr::s(0), 0, Gpr::s(7));
        emit_exit_hart(&mut a, Gpr::s(0), "t");
        let prog = a.assemble();
        let mut m = Machine::with_program(2, &prog);
        m.run(1_000_000).expect("halts");
        // Both harts incremented 3 times under the lock.
        assert_eq!(m.mem.read_u64(shared as u64), 6);
    }
}
