//! # riscy-workloads — synthetic SPEC CINT2006 and PARSEC proxies
//!
//! The paper evaluates RiscyOO on SPEC CINT2006 (ref inputs, Figs. 15–19)
//! and PARSEC (simlarge, Fig. 20). Neither can be cross-compiled here, so
//! this crate generates *proxy* programs with matched characteristics —
//! see DESIGN.md's substitution table. The proxies run bare-metal with
//! Sv39 paging enabled ([`runtime`]), so the TLB and memory-system paths
//! under evaluation are exercised exactly as a real binary would.

pub mod parsec;
pub mod runtime;
pub mod spec;
pub use crate::spec::Workload;
