//! SPEC CINT2006 proxy workloads (DESIGN.md substitution table).
//!
//! Each proxy is a small generated RISC-V program whose *miss-rate profile*
//! (Fig. 16: D TLB, L2 TLB, branch prediction, L1 D, L2 misses per
//! thousand instructions) mimics its namesake qualitatively:
//!
//! | proxy | character |
//! |---|---|
//! | bzip2 | byte-level loop with data-dependent branches |
//! | gcc | pointer-heavy medium-footprint walk |
//! | mcf | huge-footprint random pointer chase (TLB + cache hostile) |
//! | gobmk | branchy evaluation, small data |
//! | hmmer | dense regular array compute (all misses low) |
//! | sjeng | very branchy with random decisions |
//! | libquantum | large streaming sweeps (cache hostile, TLB friendly) |
//! | h264ref | block copies, regular access |
//! | astar | random pointer chase, medium-large footprint |
//! | omnetpp | linked event-queue simulation, TLB hostile |
//! | xalancbmk | mixed pointer walk + branches |
//!
//! All proxies run in S-mode with Sv39 paging on, with their hot data in a
//! 4 KiB-paged region so TLB behavior is real (gigapage-mapped code keeps
//! I-TLB quiet, as in the originals).

use cmd_core::rng::SplitMix64;
use riscy_isa::asm::{Assembler, Program};
use riscy_isa::mem::DRAM_BASE;
use riscy_isa::reg::Gpr;

use crate::runtime::{
    build_page_tables, emit_enter_supervisor, emit_exit_reg, emit_roi_begin, emit_roi_end,
    words_segment, PAGED_PA_BASE, PAGED_VA_BASE, RW,
};

/// Workload scale: `Test` for CI, `Ref` for the benchmark harnesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small (tens of thousands of dynamic instructions).
    Test,
    /// Benchmark size (hundreds of thousands of dynamic instructions).
    Ref,
}

impl Scale {
    fn factor(self) -> i64 {
        match self {
            Scale::Test => 1,
            Scale::Ref => 6,
        }
    }
}

/// A ready-to-run benchmark program.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Benchmark name (paper Fig. 15's x-axis).
    pub name: &'static str,
    /// The program image.
    pub program: Program,
    /// Generous cycle budget for completion.
    pub max_cycles: u64,
}

/// The eleven SPEC CINT2006 proxies (all except perlbench, which the paper
/// could not cross-compile either).
#[must_use]
pub fn spec_suite(scale: Scale) -> Vec<Workload> {
    vec![
        bzip2(scale),
        gcc(scale),
        mcf(scale),
        gobmk(scale),
        hmmer(scale),
        sjeng(scale),
        libquantum(scale),
        h264ref(scale),
        astar(scale),
        omnetpp(scale),
        xalancbmk(scale),
    ]
}

/// Common prologue: paging on, ROI begin. Returns the assembler.
fn prologue(n_pages: usize) -> (Assembler, crate::runtime::Paging) {
    let paging = build_page_tables(n_pages, RW);
    let mut a = Assembler::new(DRAM_BASE);
    emit_enter_supervisor(&mut a, paging.root_ppn, "sv_main");
    emit_roi_begin(&mut a);
    (a, paging)
}

fn epilogue(
    mut a: Assembler,
    paging: crate::runtime::Paging,
    extra: Vec<(u64, Vec<u8>)>,
) -> Program {
    emit_roi_end(&mut a);
    emit_exit_reg(&mut a, Gpr::s(0), "exit");
    let mut prog = a.assemble();
    for (pa, b) in paging.segments {
        prog.add_data(pa, b);
    }
    for (pa, b) in extra {
        prog.add_data(pa, b);
    }
    prog
}

/// Builds a random-permutation pointer-chain in the paged region: one
/// pointer per `stride` bytes, visiting `n_nodes` nodes.
#[cfg(test)]
fn build_chain(seed: u64, n_nodes: usize, stride: u64) -> Vec<(u64, Vec<u8>)> {
    build_chain_at(seed, n_nodes, stride, 0)
}

/// Emits `chains` parallel pointer-chase loops (the memory-level
/// parallelism of mcf/astar: independent traversals whose TLB walks and
/// cache misses can overlap on a non-blocking machine). Chain `k` starts at
/// `PAGED_VA_BASE + k * chain_bytes`. `extra_work` ALU ops dilute the
/// misses; results accumulate into `s0`.
fn emit_chase(a: &mut Assembler, iters: i64, chains: usize, chain_bytes: u64, extra_work: usize) {
    assert!((1..=4).contains(&chains));
    for k in 0..chains {
        a.li(
            Gpr::s(1 + k as u8),
            (PAGED_VA_BASE + k as u64 * chain_bytes) as i64,
        );
    }
    a.li(Gpr::s(6), iters);
    a.li(Gpr::s(0), 0);
    a.label("chase");
    for k in 0..chains {
        a.ld(Gpr::s(1 + k as u8), 0, Gpr::s(1 + k as u8));
    }
    for w in 0..extra_work {
        a.add(Gpr::s(0), Gpr::s(0), Gpr::s(1 + (w % chains) as u8));
    }
    a.addi(Gpr::s(6), Gpr::s(6), -1);
    a.bnez(Gpr::s(6), "chase");
}

/// Builds `chains` disjoint pointer cycles, one per `chain_pages`-page
/// sub-region.
fn build_chains(
    seed: u64,
    chains: usize,
    nodes_per_chain: usize,
    stride: u64,
) -> Vec<(u64, Vec<u8>)> {
    let mut segs = Vec::new();
    for k in 0..chains {
        let base_off = k as u64 * nodes_per_chain as u64 * stride;
        for (pa, bytes) in build_chain_at(seed + k as u64, nodes_per_chain, stride, base_off) {
            segs.push((pa, bytes));
        }
    }
    segs
}

/// `build_chain` generalized to an offset within the paged region. Nodes
/// with page-sized strides land at a pseudo-random cache line within their
/// page (real heap structures are not page-aligned; alignment would fold
/// every node onto a handful of cache sets).
fn build_chain_at(seed: u64, n_nodes: usize, stride: u64, base_off: u64) -> Vec<(u64, Vec<u8>)> {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut order: Vec<usize> = (1..n_nodes).collect();
    for i in (1..order.len()).rev() {
        let j = rng.range_usize(0, i + 1);
        order.swap(i, j);
    }
    let line_off = |n: usize| -> u64 {
        // The chase loop enters each chain at its region base: node 0 must
        // stay there.
        if n == 0 {
            return 0;
        }
        if stride >= 128 {
            let lines = stride / 64;
            let h = (n as u64)
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(seed);
            (h % lines) * 64
        } else {
            0
        }
    };
    let node_addr = |n: usize| PAGED_VA_BASE + base_off + n as u64 * stride + line_off(n);
    let mut next = vec![0u64; n_nodes];
    let mut cur = 0usize;
    for &n in &order {
        next[cur] = node_addr(n);
        cur = n;
    }
    next[cur] = node_addr(0);
    if stride <= 64 {
        let mut bytes = vec![0u8; n_nodes * stride as usize];
        for (i, &p) in next.iter().enumerate() {
            bytes[i * stride as usize..i * stride as usize + 8].copy_from_slice(&p.to_le_bytes());
        }
        vec![(PAGED_PA_BASE + base_off, bytes)]
    } else {
        next.iter()
            .enumerate()
            .map(|(i, &p)| {
                (
                    PAGED_PA_BASE + base_off + i as u64 * stride + line_off(i),
                    p.to_le_bytes().to_vec(),
                )
            })
            .collect()
    }
}

/// Initializes the background-TLB-activity registers: a pointer (`s9`)
/// striding over `bg_pages` pages placed after the benchmark's own data.
/// Real SPEC binaries touch library/stack/heap pages continuously; this
/// background reproduces the small-but-nonzero TLB activity every
/// benchmark shows in paper Fig. 16.
fn emit_bg_init(a: &mut Assembler, data_pages: usize, bg_pages: usize) {
    let base = PAGED_VA_BASE + data_pages as u64 * 4096;
    a.li(Gpr::s(9), base as i64);
    a.li(Gpr::s(10), 7 * 4096); // page stride (co-prime walk)
    a.li(Gpr::s(11), (base + bg_pages as u64 * 4096) as i64);
}

/// One conditional background page touch, taken when
/// `counter & mask == 0`. Clobbers `t6`.
fn emit_bg_touch(a: &mut Assembler, counter: Gpr, mask: i32, bg_pages: usize, tag: &str) {
    let skip = format!("bg_skip_{tag}");
    a.andi(Gpr::t(6), counter, mask);
    a.bnez(Gpr::t(6), &skip);
    a.ld(Gpr::t(6), 0, Gpr::s(9));
    a.add(Gpr::s(9), Gpr::s(9), Gpr::s(10));
    a.bltu(Gpr::s(9), Gpr::s(11), &skip);
    a.li(Gpr::t(6), (bg_pages * 4096) as i64);
    a.sub(Gpr::s(9), Gpr::s(9), Gpr::t(6));
    a.label(&skip);
}

/// mcf: random chase over 3072 pages (12 MiB), one node per page — maximal
/// TLB and cache hostility.
#[must_use]
pub fn mcf(scale: Scale) -> Workload {
    let pages = 3072;
    let (mut a, paging) = prologue(pages);
    emit_chase(&mut a, 400 * scale.factor(), 4, 768 * 4096, 28);
    let chain = build_chains(0x006d_6366, 4, 768, 4096);
    Workload {
        name: "mcf",
        program: epilogue(a, paging, chain),
        max_cycles: 12_000_000 * scale.factor() as u64,
    }
}

/// astar: random chase over 768 pages (3 MiB) with a little more work per
/// node — high D TLB misses, fewer L2 TLB misses than mcf.
#[must_use]
pub fn astar(scale: Scale) -> Workload {
    // Four independent traversals over 10 MiB of pointer-linked pages:
    // past the L2 TLB's reach, so RiscyOO-B pays serial full walks while
    // RiscyOO-T+ overlaps walks and short-circuits them via the walk cache.
    let pages = 2048;
    let (mut a, paging) = prologue(pages);
    emit_chase(&mut a, 500 * scale.factor(), 4, 512 * 4096, 30);
    let chain = build_chains(0x617374, 4, 512, 4096);
    Workload {
        name: "astar",
        program: epilogue(a, paging, chain),
        max_cycles: 12_000_000 * scale.factor() as u64,
    }
}

/// omnetpp: event-queue style — chase over 1536 pages with moderate extra
/// work and some branches.
#[must_use]
pub fn omnetpp(scale: Scale) -> Workload {
    let pages = 1536;
    let (mut a, paging) = prologue(pages);
    a.li(Gpr::s(1), PAGED_VA_BASE as i64);
    a.li(Gpr::s(2), (PAGED_VA_BASE + 768 * 4096) as i64);
    a.li(Gpr::s(6), 700 * scale.factor());
    a.li(Gpr::s(0), 0);
    a.label("evloop");
    a.ld(Gpr::s(1), 0, Gpr::s(1));
    a.ld(Gpr::s(2), 0, Gpr::s(2));
    a.andi(Gpr::t(0), Gpr::s(1), 0x40);
    a.beqz(Gpr::t(0), "ev_skip");
    a.addi(Gpr::s(0), Gpr::s(0), 1);
    a.label("ev_skip");
    for _ in 0..10 {
        a.add(Gpr::s(3), Gpr::s(3), Gpr::s(0));
        a.xor(Gpr::s(0), Gpr::s(0), Gpr::s(3));
    }
    a.addi(Gpr::s(6), Gpr::s(6), -1);
    a.bnez(Gpr::s(6), "evloop");
    let chain = build_chains(0x6f6d6e, 2, 768, 4096);
    Workload {
        name: "omnetpp",
        program: epilogue(a, paging, chain),
        max_cycles: 12_000_000 * scale.factor() as u64,
    }
}

/// gcc: pointer walk within a 96-page (384 KiB) structure — cache misses
/// without much TLB pressure, plus branches.
#[must_use]
pub fn gcc(scale: Scale) -> Workload {
    let pages = 24 + 48;
    let (mut a, paging) = prologue(pages);
    emit_bg_init(&mut a, 24, 48);
    a.li(Gpr::s(1), PAGED_VA_BASE as i64);
    a.li(Gpr::s(3), (PAGED_VA_BASE + 12 * 4096) as i64);
    a.li(Gpr::s(2), 1800 * scale.factor());
    a.li(Gpr::s(0), 0);
    a.label("walk");
    a.ld(Gpr::s(1), 0, Gpr::s(1));
    a.ld(Gpr::s(3), 0, Gpr::s(3));
    a.andi(Gpr::t(0), Gpr::s(1), 0x18);
    a.beqz(Gpr::t(0), "g1");
    a.addi(Gpr::s(0), Gpr::s(0), 2);
    a.j("g2");
    a.label("g1");
    a.addi(Gpr::s(0), Gpr::s(0), 1);
    a.label("g2");
    for _ in 0..4 {
        a.add(Gpr::s(4), Gpr::s(4), Gpr::s(0));
        a.xor(Gpr::s(0), Gpr::s(0), Gpr::s(4));
    }
    emit_bg_touch(&mut a, Gpr::s(2), 15, 48, "gcc");
    a.addi(Gpr::s(2), Gpr::s(2), -1);
    a.bnez(Gpr::s(2), "walk");
    // One node per cache line; two disjoint 12-page cycles.
    let mut chain = build_chain_at(0x676363, 12 * 64, 64, 0);
    chain.extend(build_chain_at(0x676364, 12 * 64, 64, 12 * 4096));
    Workload {
        name: "gcc",
        program: epilogue(a, paging, chain),
        max_cycles: 8_000_000 * scale.factor() as u64,
    }
}

/// xalancbmk: like gcc but a larger footprint and more branching.
#[must_use]
pub fn xalancbmk(scale: Scale) -> Workload {
    let pages = 96 + 48;
    let (mut a, paging) = prologue(pages);
    emit_bg_init(&mut a, 96, 48);
    a.li(Gpr::s(1), PAGED_VA_BASE as i64);
    a.li(Gpr::s(4), (PAGED_VA_BASE + 48 * 4096) as i64);
    a.li(Gpr::s(2), 1400 * scale.factor());
    a.li(Gpr::s(0), 0);
    a.li(Gpr::s(3), 0x9e3779b9);
    a.label("xwalk");
    a.ld(Gpr::s(1), 0, Gpr::s(1));
    a.ld(Gpr::s(4), 0, Gpr::s(4));
    a.xor(Gpr::s(3), Gpr::s(3), Gpr::s(1));
    a.andi(Gpr::t(0), Gpr::s(3), 0x6);
    a.beqz(Gpr::t(0), "x1");
    a.addi(Gpr::s(0), Gpr::s(0), 1);
    a.label("x1");
    a.andi(Gpr::t(1), Gpr::s(3), 0x30);
    a.beqz(Gpr::t(1), "x2");
    a.addi(Gpr::s(0), Gpr::s(0), 1);
    a.label("x2");
    for _ in 0..4 {
        a.add(Gpr::s(5), Gpr::s(5), Gpr::s(3));
        a.xor(Gpr::s(3), Gpr::s(3), Gpr::s(5));
    }
    emit_bg_touch(&mut a, Gpr::s(2), 15, 48, "xal");
    a.addi(Gpr::s(2), Gpr::s(2), -1);
    a.bnez(Gpr::s(2), "xwalk");
    let mut chain = build_chain_at(0x78616c, 48 * 16, 256, 0);
    chain.extend(build_chain_at(0x78616d, 48 * 16, 256, 48 * 4096));
    Workload {
        name: "xalancbmk",
        program: epilogue(a, paging, chain),
        max_cycles: 8_000_000 * scale.factor() as u64,
    }
}

/// libquantum: stream over an 8 MiB array with predictable branches — very
/// high cache miss rates, low TLB pressure (few pages touched per 1 K
/// instructions thanks to sequential access).
#[must_use]
pub fn libquantum(scale: Scale) -> Workload {
    let pages = 2048 + 40; // 8 MiB + background
    let (mut a, paging) = prologue(pages);
    emit_bg_init(&mut a, 2048, 40);
    a.li(Gpr::s(0), 0);
    a.li(Gpr::s(3), 2 * scale.factor()); // sweeps
    a.label("sweep");
    a.li(Gpr::s(1), PAGED_VA_BASE as i64);
    a.li(Gpr::s(2), (pages as i64) * 4096 / 64);
    a.label("qloop");
    a.ld(Gpr::t(0), 0, Gpr::s(1));
    a.xori(Gpr::t(0), Gpr::t(0), 1);
    a.add(Gpr::s(0), Gpr::s(0), Gpr::t(0));
    a.addi(Gpr::s(1), Gpr::s(1), 64);
    emit_bg_touch(&mut a, Gpr::s(2), 63, 40, "q");
    a.addi(Gpr::s(2), Gpr::s(2), -1);
    a.bnez(Gpr::s(2), "qloop");
    a.addi(Gpr::s(3), Gpr::s(3), -1);
    a.bnez(Gpr::s(3), "sweep");
    // Zero-initialized array (sparse memory reads as zero).
    Workload {
        name: "libquantum",
        program: epilogue(a, paging, Vec::new()),
        max_cycles: 20_000_000 * scale.factor() as u64,
    }
}

/// LCG step used by the branchy kernels: `x = x*a + c` (clobbers t0).
fn emit_lcg(a: &mut Assembler, x: Gpr) {
    a.li(Gpr::t(0), 1_103_515_245);
    a.mul(x, x, Gpr::t(0));
    a.addi(x, x, 1234);
}

/// sjeng: random decision tree — the paper reports ~29 mispredicts per 1 K
/// instructions on RiscyOO.
#[must_use]
pub fn sjeng(scale: Scale) -> Workload {
    let (mut a, paging) = prologue(16 + 48);
    emit_bg_init(&mut a, 16, 48);
    a.li(Gpr::s(1), 0x5eed);
    a.li(Gpr::s(2), 3000 * scale.factor());
    a.li(Gpr::s(0), 0);
    a.label("sj");
    emit_lcg(&mut a, Gpr::s(1));
    a.andi(Gpr::t(1), Gpr::s(1), 4);
    a.beqz(Gpr::t(1), "sj1");
    a.addi(Gpr::s(0), Gpr::s(0), 1);
    a.label("sj1");
    a.andi(Gpr::t(1), Gpr::s(1), 8);
    a.beqz(Gpr::t(1), "sj2");
    a.addi(Gpr::s(0), Gpr::s(0), 2);
    a.label("sj2");
    a.andi(Gpr::t(1), Gpr::s(1), 16);
    a.beqz(Gpr::t(1), "sj3");
    a.slli(Gpr::s(0), Gpr::s(0), 1);
    a.label("sj3");
    emit_bg_touch(&mut a, Gpr::s(2), 31, 48, "sj");
    a.addi(Gpr::s(2), Gpr::s(2), -1);
    a.bnez(Gpr::s(2), "sj");
    Workload {
        name: "sjeng",
        program: epilogue(a, paging, Vec::new()),
        max_cycles: 8_000_000 * scale.factor() as u64,
    }
}

/// gobmk: branchy board evaluation with small-table loads.
#[must_use]
pub fn gobmk(scale: Scale) -> Workload {
    let pages = 8 + 48;
    let (mut a, paging) = prologue(pages);
    emit_bg_init(&mut a, 8, 48);
    a.li(Gpr::s(1), 0x60b);
    a.li(Gpr::s(2), 2500 * scale.factor());
    a.li(Gpr::s(0), 0);
    a.li(Gpr::s(3), PAGED_VA_BASE as i64);
    a.label("gb");
    emit_lcg(&mut a, Gpr::s(1));
    a.andi(Gpr::t(1), Gpr::s(1), 0x7f8);
    a.add(Gpr::t(1), Gpr::t(1), Gpr::s(3));
    a.ld(Gpr::t(2), 0, Gpr::t(1));
    a.andi(Gpr::t(2), Gpr::t(2), 1);
    a.beqz(Gpr::t(2), "gb1");
    a.addi(Gpr::s(0), Gpr::s(0), 1);
    a.label("gb1");
    a.andi(Gpr::t(1), Gpr::s(2), 1); // alternating: predictable
    a.beqz(Gpr::t(1), "gb2");
    a.addi(Gpr::s(0), Gpr::s(0), 3);
    a.label("gb2");
    a.add(Gpr::s(4), Gpr::s(4), Gpr::s(0));
    a.add(Gpr::s(5), Gpr::s(5), Gpr::s(4));
    emit_bg_touch(&mut a, Gpr::s(2), 31, 48, "gb");
    a.addi(Gpr::s(2), Gpr::s(2), -1);
    a.bnez(Gpr::s(2), "gb");
    // Random small table.
    let mut rng = SplitMix64::seed_from_u64(0x60b);
    let table: Vec<u64> = (0..pages * 512).map(|_| rng.next_u64()).collect();
    Workload {
        name: "gobmk",
        program: epilogue(a, paging, vec![(PAGED_PA_BASE, words_segment(&table))]),
        max_cycles: 8_000_000 * scale.factor() as u64,
    }
}

/// hmmer: dense, regular, high-ILP inner loop — every miss rate near zero.
#[must_use]
pub fn hmmer(scale: Scale) -> Workload {
    let pages = 4 + 40;
    let (mut a, paging) = prologue(pages);
    emit_bg_init(&mut a, 4, 40);
    a.li(Gpr::s(2), 1200 * scale.factor());
    a.li(Gpr::s(0), 0);
    a.li(Gpr::s(3), PAGED_VA_BASE as i64);
    a.label("hm");
    // Unrolled dense compute over a tiny table (stays in L1).
    for k in 0..4 {
        a.ld(Gpr::t(0), 8 * k, Gpr::s(3));
        a.add(Gpr::s(0), Gpr::s(0), Gpr::t(0));
        a.slli(Gpr::t(1), Gpr::t(0), 1);
        a.xor(Gpr::s(0), Gpr::s(0), Gpr::t(1));
        a.add(Gpr::s(4), Gpr::s(0), Gpr::t(0));
        a.add(Gpr::s(5), Gpr::s(4), Gpr::t(1));
    }
    emit_bg_touch(&mut a, Gpr::s(2), 63, 40, "hm");
    a.addi(Gpr::s(2), Gpr::s(2), -1);
    a.bnez(Gpr::s(2), "hm");
    let table: Vec<u64> = (0..32).map(|i| i * 3 + 1).collect();
    Workload {
        name: "hmmer",
        program: epilogue(a, paging, vec![(PAGED_PA_BASE, words_segment(&table))]),
        max_cycles: 8_000_000 * scale.factor() as u64,
    }
}

/// h264ref: block-copy kernel (16-byte moves) over a frame that fits in L2.
#[must_use]
pub fn h264ref(scale: Scale) -> Workload {
    let pages = 64 + 40;
    let (mut a, paging) = prologue(pages);
    emit_bg_init(&mut a, 64, 40);
    a.li(Gpr::s(2), 300 * scale.factor()); // blocks
    a.li(Gpr::s(0), 0);
    a.li(Gpr::s(3), PAGED_VA_BASE as i64);
    a.li(Gpr::s(4), (PAGED_VA_BASE + 128 * 1024) as i64);
    a.label("blk");
    // Copy a 64-byte block and accumulate a SAD-ish metric.
    for k in 0..8 {
        a.ld(Gpr::t(0), 8 * k, Gpr::s(3));
        a.sd(Gpr::t(0), 8 * k, Gpr::s(4));
        a.add(Gpr::s(0), Gpr::s(0), Gpr::t(0));
    }
    a.addi(Gpr::s(3), Gpr::s(3), 64);
    a.addi(Gpr::s(4), Gpr::s(4), 64);
    // Wrap every 12 KiB: src+dst = 24 KiB — resident in a 32 KB L1,
    // thrashing a 16 KB one (the RiscyOO-C- sensitivity).
    a.li(Gpr::t(1), (PAGED_VA_BASE + 12 * 1024) as i64);
    a.blt(Gpr::s(3), Gpr::t(1), "noreset");
    a.li(Gpr::s(3), PAGED_VA_BASE as i64);
    a.li(Gpr::s(4), (PAGED_VA_BASE + 128 * 1024) as i64);
    a.label("noreset");
    emit_bg_touch(&mut a, Gpr::s(2), 63, 40, "h264");
    a.addi(Gpr::s(2), Gpr::s(2), -1);
    a.bnez(Gpr::s(2), "blk");
    Workload {
        name: "h264ref",
        program: epilogue(a, paging, Vec::new()),
        max_cycles: 8_000_000 * scale.factor() as u64,
    }
}

/// bzip2: byte-granularity loop over pseudo-random data with
/// data-dependent branches (run-length detection).
#[must_use]
pub fn bzip2(scale: Scale) -> Workload {
    let pages = 64 + 48; // 256 KiB buffer + background pages
    let (mut a, paging) = prologue(pages);
    emit_bg_init(&mut a, 64, 48);
    a.li(Gpr::s(1), PAGED_VA_BASE as i64);
    a.li(Gpr::s(2), 4000 * scale.factor());
    a.li(Gpr::s(0), 0);
    a.li(Gpr::s(3), 0); // previous byte
    a.label("bz");
    a.lbu(Gpr::t(1), 0, Gpr::s(1));
    a.beq(Gpr::t(1), Gpr::s(3), "bz_run");
    a.addi(Gpr::s(0), Gpr::s(0), 1);
    a.j("bz_next");
    a.label("bz_run");
    a.slli(Gpr::s(0), Gpr::s(0), 1);
    a.label("bz_next");
    a.mv(Gpr::s(3), Gpr::t(1));
    a.addi(Gpr::s(1), Gpr::s(1), 1);
    // Wrap at the end of the buffer.
    a.li(Gpr::t(2), (PAGED_VA_BASE + 256 * 1024 - 1) as i64);
    a.blt(Gpr::s(1), Gpr::t(2), "bz_cont");
    a.li(Gpr::s(1), PAGED_VA_BASE as i64);
    a.label("bz_cont");
    emit_bg_touch(&mut a, Gpr::s(2), 31, 48, "bz");
    a.addi(Gpr::s(2), Gpr::s(2), -1);
    a.bnez(Gpr::s(2), "bz");
    // Random bytes with some runs.
    let mut rng = SplitMix64::seed_from_u64(0xb21b);
    let mut bytes = vec![0u8; 256 * 1024];
    let mut i = 0;
    while i < bytes.len() {
        let b = rng.below(3) as u8;
        let run = if rng.below(8) == 0 {
            rng.range_usize(4, 12)
        } else {
            rng.range_usize(2, 5)
        };
        for _ in 0..run.min(bytes.len() - i) {
            bytes[i] = b;
            i += 1;
        }
    }
    Workload {
        name: "bzip2",
        program: epilogue(a, paging, vec![(PAGED_PA_BASE, bytes)]),
        max_cycles: 8_000_000 * scale.factor() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use riscy_isa::interp::Machine;

    #[test]
    fn all_proxies_run_on_golden_model() {
        for w in spec_suite(Scale::Test) {
            let mut m = Machine::with_program(1, &w.program);
            let steps = m
                .run(60_000_000)
                .unwrap_or_else(|n| panic!("{} did not halt after {n} steps", w.name));
            assert!(steps > 1_000, "{} too small: {steps} instructions", w.name);
            assert!(m.hart(0).halted.is_some(), "{}", w.name);
            assert!(
                m.hart(0).roi_insts > 500,
                "{} ROI too small: {}",
                w.name,
                m.hart(0).roi_insts
            );
        }
    }

    #[test]
    fn chain_is_a_single_cycle() {
        let segs = build_chain(1, 64, 64);
        assert_eq!(segs.len(), 1);
        let bytes = &segs[0].1;
        let read = |i: usize| u64::from_le_bytes(bytes[i * 64..i * 64 + 8].try_into().unwrap());
        let mut seen = std::collections::HashSet::new();
        let mut cur = 0usize;
        for _ in 0..64 {
            assert!(seen.insert(cur), "revisited node {cur}");
            let next = read(cur);
            cur = ((next - PAGED_VA_BASE) / 64) as usize;
        }
        assert_eq!(cur, 0, "cycle closes");
        assert_eq!(seen.len(), 64);
    }
}
