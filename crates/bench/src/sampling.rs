//! # Interval sampling — detailed-slice IPC estimates over fast-forward
//!
//! SMARTS/SimPoint-style systematic sampling (see `docs/CHECKPOINT.md`
//! §"Sampled simulation"): instead of simulating a workload's every cycle
//! in the detailed out-of-order model, fast-forward through it with the
//! [`riscy_ooo::ff`] functional warmer and drop into detailed simulation
//! only at `n` evenly spaced points. Each detailed slice runs a short
//! *warmup* (drains the cold-start transient the functional warmer cannot
//! capture: in-flight miss timing, queue occupancies) and then a measured
//! *interval*; the whole-run IPC estimate is the pooled
//! `Σ interval insts / Σ interval cycles`.
//!
//! Sample points are placed inside the workload's region of interest
//! (the functional scout pass reads the ROI MMIO markers exactly), and
//! the estimate is compared against the full run's ROI IPC — the metric
//! every other harness in this crate reports — so the error metric
//! (`sample_ipc_err` in the perf gate) is apples-to-apples and excludes
//! the one-time S-mode setup phase that sampling rightly skips. The
//! speed win (`ff_speedup`) comes from the interpreter retiring
//! instructions orders of magnitude faster than the rule-driven detailed
//! model.

use std::time::Instant;

use cmd_core::trace::json::JsonWriter;
use riscy_isa::asm::Program;
use riscy_mem::system::MemConfig;
use riscy_ooo::config::CoreConfig;
use riscy_ooo::ff::FastForward;
use riscy_ooo::soc::SocSim;

/// Shape of a sampled estimate: how many intervals, and how much detailed
/// warmup/measurement each one gets.
#[derive(Debug, Clone, Copy)]
pub struct SamplePlan {
    /// Evenly spaced measurement intervals across the run.
    pub samples: u64,
    /// Committed instructions of (unmeasured) detailed warmup per
    /// interval.
    pub warmup_insts: u64,
    /// Committed instructions measured per interval.
    pub interval_insts: u64,
    /// Detailed-cycle budget per interval (warmup + measurement); a slice
    /// that exhausts it is dropped rather than trusted.
    pub max_cycles_per_sample: u64,
}

impl Default for SamplePlan {
    /// 10 × (6k warmup + 3k measured): on the spec suite this keeps the
    /// IPC error under 1 % while the detailed slices stay a small
    /// fraction of the run (see `docs/CHECKPOINT.md` for the
    /// calibration).
    fn default() -> Self {
        SamplePlan {
            samples: 10,
            warmup_insts: 6_000,
            interval_insts: 3_000,
            max_cycles_per_sample: 400_000,
        }
    }
}

impl SamplePlan {
    /// The shortest sample-window span (in instructions) this plan can
    /// sample honestly: the detailed slices must stay a minority of the
    /// window or "sampling" degenerates into a shuffled full run whose
    /// speedup and error are both meaningless. Callers skip (and say so
    /// — never silently) workloads below this.
    #[must_use]
    pub fn min_window_insts(&self) -> u64 {
        4 * self.samples * (self.warmup_insts + self.interval_insts)
    }
}

/// One measured detailed slice.
#[derive(Debug, Clone, Copy)]
pub struct SamplePoint {
    /// Functionally executed instructions when the slice began.
    pub start_inst: u64,
    /// Instructions committed inside the measured interval.
    pub insts: u64,
    /// Cycles the measured interval took.
    pub cycles: u64,
}

impl SamplePoint {
    /// The slice's instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.insts as f64 / self.cycles as f64
        }
    }
}

/// A sampled whole-run estimate.
#[derive(Debug, Clone)]
pub struct SampleEstimate {
    /// Instructions the workload executes functionally (per hart).
    pub total_insts: u64,
    /// The measured slices (fewer than planned when the program halts
    /// early or a slice blows its cycle budget).
    pub points: Vec<SamplePoint>,
    /// Instructions covered by fast-forward rather than detail.
    pub ff_insts: u64,
}

impl SampleEstimate {
    /// The pooled IPC estimate: `Σ insts / Σ cycles` over every slice.
    #[must_use]
    pub fn est_ipc(&self) -> f64 {
        let insts: u64 = self.points.iter().map(|p| p.insts).sum();
        let cycles: u64 = self.points.iter().map(|p| p.cycles).sum();
        if cycles == 0 {
            0.0
        } else {
            insts as f64 / cycles as f64
        }
    }
}

/// What the functional scout pass learned about a workload: how many
/// instructions it executes and where its region of interest lies
/// (instruction-count window, exact — the interpreter records the ROI
/// MMIO markers' `instret`).
#[derive(Debug, Clone, Copy)]
pub struct FunctionalProfile {
    /// Instructions executed to completion (per hart).
    pub total_insts: u64,
    /// `[begin, end)` ROI window in executed-instruction counts, when the
    /// workload raised ROI markers.
    pub roi: Option<(u64, u64)>,
}

impl FunctionalProfile {
    /// The window sample points are placed in: the ROI when the workload
    /// declares one, else the whole run.
    #[must_use]
    pub fn sample_window(&self) -> (u64, u64) {
        self.roi.unwrap_or((0, self.total_insts))
    }
}

/// Scouts a single-core workload functionally (capped at `cap`
/// instructions): total length plus the ROI window that places sample
/// points.
#[must_use]
pub fn functional_profile(
    cfg: CoreConfig,
    mem: MemConfig,
    program: &Program,
    cap: u64,
) -> FunctionalProfile {
    let mut ff = FastForward::new(cfg, mem, 1, program);
    let mut total = 0u64;
    let mut roi_begin = None;
    while total < cap {
        let step = ff.run((cap - total).min(4_096));
        total += step;
        if roi_begin.is_none() {
            roi_begin = ff.machine().hart(0).roi_start;
        }
        if step == 0 {
            break;
        }
    }
    let roi_len = ff.machine().hart(0).roi_insts;
    FunctionalProfile {
        total_insts: total,
        roi: roi_begin.filter(|_| roi_len > 0).map(|b| (b, b + roi_len)),
    }
}

/// Runs the sampled estimate: one fast-forward session advanced
/// incrementally, with a detailed handoff at each of the plan's sample
/// points, spread evenly across `profile`'s sample window (the ROI when
/// one exists — the same region whose IPC the full-run comparison uses).
/// Single-core workloads only (the detailed slices read core 0).
#[must_use]
pub fn sampled_run(
    cfg: CoreConfig,
    mem: MemConfig,
    program: &Program,
    plan: &SamplePlan,
    profile: &FunctionalProfile,
) -> SampleEstimate {
    let mut ff = FastForward::new(cfg, mem, 1, program);
    let mut points = Vec::new();
    let mut executed = 0u64;
    let (begin, end) = profile.sample_window();
    // samples+1 periods put the points strictly inside the window: no
    // slice starts exactly at the cold boundary or right at the end.
    let period = ((end.saturating_sub(begin)) / (plan.samples + 1)).max(1);
    for k in 1..=plan.samples {
        let target = begin + k * period;
        if target >= end {
            break;
        }
        if target <= executed {
            continue;
        }
        executed += ff.run(target - executed);
        if ff.halted() {
            break;
        }
        let mut sim = ff.handoff();
        let committed = |s: &SocSim| s.soc().cores[0].stats.committed;
        let measure_at = plan.warmup_insts;
        let stop_at = plan.warmup_insts + plan.interval_insts;
        let mut budget = plan.max_cycles_per_sample;
        while committed(&sim) < measure_at && !sim.soc().all_exited() && budget > 0 {
            sim.cycle();
            budget -= 1;
        }
        let (c0, i0) = (sim.cycles(), committed(&sim));
        while committed(&sim) < stop_at && !sim.soc().all_exited() && budget > 0 {
            sim.cycle();
            budget -= 1;
        }
        let (insts, cycles) = (committed(&sim) - i0, sim.cycles() - c0);
        if insts > 0 && cycles > 0 && budget > 0 {
            points.push(SamplePoint {
                start_inst: target,
                insts,
                cycles,
            });
        }
    }
    SampleEstimate {
        total_insts: profile.total_insts,
        points,
        ff_insts: executed,
    }
}

/// One workload's sampled-vs-full comparison, as measured by
/// [`compare_sampled`] (and serialized into `sample_report.json`).
#[derive(Debug, Clone)]
pub struct SampledWorkload {
    /// Workload name.
    pub name: String,
    /// Whole-run IPC of the full detailed simulation.
    pub full_ipc: f64,
    /// Host seconds the full detailed run took.
    pub full_wall_s: f64,
    /// The sampled estimate.
    pub estimate: SampleEstimate,
    /// The sampled estimate's pooled IPC.
    pub est_ipc: f64,
    /// Host seconds the sampled pass took (functional count pass
    /// included).
    pub sampled_wall_s: f64,
}

impl SampledWorkload {
    /// Relative IPC error of the estimate against the full run.
    #[must_use]
    pub fn ipc_err(&self) -> f64 {
        if self.full_ipc == 0.0 {
            0.0
        } else {
            (self.est_ipc - self.full_ipc).abs() / self.full_ipc
        }
    }

    /// Wall-clock speedup of the sampled pass over the full run.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        if self.sampled_wall_s > 0.0 {
            self.full_wall_s / self.sampled_wall_s
        } else {
            0.0
        }
    }
}

/// Runs one single-core workload both ways — full detailed simulation and
/// fast-forward + sampling — and returns the comparison.
///
/// # Panics
///
/// Panics when the full detailed run fails to complete (a simulator bug:
/// the workload is expected to fit its own cycle budget).
#[must_use]
pub fn compare_sampled(
    cfg: CoreConfig,
    mem: MemConfig,
    name: &str,
    program: &Program,
    max_cycles: u64,
    plan: &SamplePlan,
) -> SampledWorkload {
    let t0 = Instant::now();
    let mut sim = SocSim::new(cfg, mem, 1, program);
    sim.run_to_completion(max_cycles)
        .unwrap_or_else(|e| panic!("{name}: full run failed: {e}"));
    let full_wall_s = t0.elapsed().as_secs_f64();
    // The full-run reference IPC is the ROI IPC when the workload raises
    // ROI markers (the metric every other harness in this crate reports);
    // the sample points live inside the same window, so the comparison is
    // apples-to-apples. Marker-less workloads fall back to whole-run IPC.
    let st = sim.soc().cores[0].stats;
    let full_ipc = if st.roi_cycles > 0 {
        st.roi_insts as f64 / st.roi_cycles as f64
    } else {
        st.committed as f64 / sim.cycles() as f64
    };

    let t1 = Instant::now();
    let profile = functional_profile(cfg, mem, program, max_cycles.saturating_mul(8));
    let estimate = sampled_run(cfg, mem, program, plan, &profile);
    let sampled_wall_s = t1.elapsed().as_secs_f64();
    let est_ipc = estimate.est_ipc();
    SampledWorkload {
        name: name.to_string(),
        full_ipc,
        full_wall_s,
        estimate,
        est_ipc,
        sampled_wall_s,
    }
}

/// Serializes a set of per-workload comparisons as the
/// `sample_report.json` CI artifact: per-workload IPCs, errors, and raw
/// sample points, plus the aggregate `ff_speedup` /
/// `sample_ipc_err_max` the perf gate floors.
#[must_use]
pub fn sample_report_json(entries: &[SampledWorkload]) -> String {
    let full_wall: f64 = entries.iter().map(|e| e.full_wall_s).sum();
    let sampled_wall: f64 = entries.iter().map(|e| e.sampled_wall_s).sum();
    let speedup = if sampled_wall > 0.0 {
        full_wall / sampled_wall
    } else {
        0.0
    };
    let err_max = entries
        .iter()
        .map(SampledWorkload::ipc_err)
        .fold(0.0, f64::max);
    let err_mean = if entries.is_empty() {
        0.0
    } else {
        entries.iter().map(SampledWorkload::ipc_err).sum::<f64>() / entries.len() as f64
    };
    let mut w = JsonWriter::new();
    w.begin_object();
    w.schema_version();
    w.field_f64("ff_speedup", speedup);
    w.field_f64("sample_ipc_err_max", err_max);
    w.field_f64("sample_ipc_err_mean", err_mean);
    w.key("workloads");
    w.begin_array();
    for e in entries {
        w.begin_object();
        w.field_str("name", &e.name);
        w.field_u64("total_insts", e.estimate.total_insts);
        w.field_u64("ff_insts", e.estimate.ff_insts);
        w.field_f64("full_ipc", e.full_ipc);
        w.field_f64("est_ipc", e.est_ipc);
        w.field_f64("ipc_err", e.ipc_err());
        w.field_f64("full_wall_s", e.full_wall_s);
        w.field_f64("sampled_wall_s", e.sampled_wall_s);
        w.field_f64("speedup", e.speedup());
        w.key("samples");
        w.begin_array();
        for p in &e.estimate.points {
            w.begin_object();
            w.field_u64("start_inst", p.start_inst);
            w.field_u64("insts", p.insts);
            w.field_u64("cycles", p.cycles);
            w.field_f64("ipc", p.ipc());
            w.end_object();
        }
        w.end_array();
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use riscy_isa::asm::Assembler;
    use riscy_isa::mem::{DRAM_BASE, MMIO_EXIT};
    use riscy_isa::reg::Gpr;
    use riscy_ooo::config::mem_riscyoo_b;

    /// A steady-state loop long enough to place several samples.
    fn steady_prog(iters: i64) -> Program {
        let mut a = Assembler::new(DRAM_BASE);
        a.li(Gpr::s(1), iters);
        a.li(Gpr::s(2), 0);
        a.label("loop");
        a.addi(Gpr::s(2), Gpr::s(2), 3);
        a.addi(Gpr::s(1), Gpr::s(1), -1);
        a.bnez(Gpr::s(1), "loop");
        a.li(Gpr::t(6), MMIO_EXIT as i64);
        a.li(Gpr::t(5), 1);
        a.sd(Gpr::t(5), 0, Gpr::t(6));
        a.label("hang");
        a.j("hang");
        a.assemble()
    }

    #[test]
    fn functional_scout_sees_the_whole_loop() {
        let prog = steady_prog(1_000);
        let p = functional_profile(
            riscy_ooo::config::CoreConfig::riscyoo_t_plus(),
            mem_riscyoo_b(),
            &prog,
            1_000_000,
        );
        // 3 insts per iteration plus prologue/exit; no ROI markers.
        assert!(p.total_insts > 3_000 && p.total_insts < 3_100, "{p:?}");
        assert!(p.roi.is_none());
        assert_eq!(p.sample_window(), (0, p.total_insts));
    }

    #[test]
    fn sampled_estimate_tracks_the_full_run() {
        let cfg = riscy_ooo::config::CoreConfig::riscyoo_t_plus();
        let mem = mem_riscyoo_b();
        let prog = steady_prog(4_000);
        let plan = SamplePlan {
            samples: 4,
            warmup_insts: 500,
            interval_insts: 1_000,
            max_cycles_per_sample: 100_000,
        };
        let cmp = compare_sampled(cfg, mem, "steady", &prog, 2_000_000, &plan);
        assert!(!cmp.estimate.points.is_empty());
        assert!(cmp.full_ipc > 0.0);
        // A steady loop has one phase: the estimate should be close. The
        // tight 2% CI gate is enforced on the release-mode `sampled_sim`
        // binary; this debug-build unit test allows a looser 10%.
        assert!(
            cmp.ipc_err() < 0.10,
            "est {} vs full {}",
            cmp.est_ipc,
            cmp.full_ipc
        );
    }
}
