//! # Work-stealing fleet runner — many SoCs per process
//!
//! [`SchedulerMode::Parallel`] keeps a *single* simulation deterministic
//! under the wave-barrier discipline (see `docs/PARALLELISM.md`); this
//! module supplies the second half of the parallelism story: **scale-out
//! across independent simulations**. A campaign is a grid of
//! [`FleetUnit`]s (seed × config × workload); [`run_fleet`] executes the
//! grid on a pool of host threads with work stealing, streams one
//! stats-JSON file per finished unit into the campaign directory, and
//! folds everything into a [`FleetReport`] whose
//! [`deterministic_json`](FleetReport::deterministic_json) bytes are
//! independent of thread count, steal order, and kill/resume history.
//!
//! Each simulation kernel is thread-confined (`Rc`/`RefCell` state), so
//! the unit — not the rule — is the granule that crosses threads: a
//! worker owns a whole `SocSim` from construction to completion. Units
//! are seeded deterministically and never share state, so any schedule of
//! units over workers produces the same per-unit results; the report
//! sorts by unit id before serializing, which is the entire determinism
//! argument at this layer.
//!
//! ## Kill and resume
//!
//! With a campaign directory, every completed unit is persisted as
//! `unit_<id>.json` (written to a temp file and renamed, so a kill can
//! only lose in-flight units, never corrupt finished ones). A rerun of
//! the same grid loads finished units from disk and only simulates the
//! remainder; the final aggregate report is byte-identical to a
//! single-shot run. [`FleetOpts::stop_after`] bounds how many units one
//! invocation completes, which is how the resume tests simulate a kill.
//!
//! ## Mid-unit checkpoints
//!
//! [`FleetOpts::checkpoint_every`] shrinks the kill-loss granule from a
//! whole unit to a checkpoint stride: every N simulated cycles the runner
//! snapshots the live SoC ([`SocSim::save_snapshot`], see
//! `docs/CHECKPOINT.md`) into `unit_<id>.ckpt` (temp file + rename, like
//! the unit files). A resumed campaign restores the snapshot and
//! continues from the checkpointed cycle instead of cycle zero; because
//! snapshots round-trip bit-identically, the aggregate report bytes stay
//! equal to a single-shot run's. Finished units delete their checkpoint;
//! a checkpoint that fails to restore (stale grid, version skew) is
//! discarded and the unit replays from scratch — always safe. Chaos units
//! never checkpoint: snapshots refuse live fault engines.
//! [`FleetOpts::abort_after_ckpts`] is the testing hook that simulates a
//! kill *mid-unit*, right after the Nth checkpoint lands on disk.

#![warn(missing_docs)]

use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use cmd_core::chaos::{FaultEngine, FaultPlan};
use cmd_core::sched::SchedulerMode;
use cmd_core::trace::json::JsonWriter;
use riscy_ooo::config::{mem_riscyoo_b, mem_riscyoo_c_minus, CoreConfig};
use riscy_ooo::soc::{RunError, SocSim};
use riscy_workloads::spec::Workload;

/// One cell of the campaign grid: a fully specified, independent
/// simulation. `id` is the unit's position in the grid enumeration order
/// and doubles as its resume key, so the same grid arguments must always
/// enumerate the same ids (which [`fleet_grid`] guarantees).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetUnit {
    /// Grid index; stable across invocations of the same grid.
    pub id: usize,
    /// Chaos / placement seed for this unit.
    pub seed: u64,
    /// Config label, e.g. `"t+"` or `"c-"` (see [`SocFleet::run_unit`]).
    pub config: String,
    /// Workload name, resolved against the fleet's workload list.
    pub workload: String,
}

/// What one finished unit reports. Everything here is simulation-domain
/// (deterministic); host wall time lives in [`UnitRecord`] instead so it
/// can be excluded from the deterministic report bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnitStats {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Instructions committed in the region of interest.
    pub insts: u64,
    /// Whether the run completed cleanly (a chaos plan may legitimately
    /// push a run past its cycle budget; that is recorded, not fatal).
    pub exit_ok: bool,
}

/// A unit paired with its result and bookkeeping about *how* it was
/// obtained this invocation.
#[derive(Debug, Clone)]
pub struct UnitRecord {
    /// The grid cell.
    pub unit: FleetUnit,
    /// Its simulation-domain result.
    pub stats: UnitStats,
    /// Host seconds spent simulating it this invocation (`0.0` if the
    /// result was loaded from a campaign directory).
    pub wall_s: f64,
    /// True when the result was resumed from disk rather than simulated.
    pub resumed: bool,
}

/// Execution knobs for [`run_fleet`].
#[derive(Debug, Clone, Default)]
pub struct FleetOpts {
    /// Worker threads (clamped to at least 1).
    pub threads: usize,
    /// Campaign directory for per-unit persistence and resume.
    pub campaign_dir: Option<PathBuf>,
    /// Stop after completing this many units this invocation (testing
    /// hook: simulates a mid-campaign kill for the resume tests).
    pub stop_after: Option<usize>,
    /// Snapshot each in-flight unit every this many simulated cycles
    /// (needs [`FleetOpts::campaign_dir`]; see module docs §"Mid-unit
    /// checkpoints").
    pub checkpoint_every: Option<u64>,
    /// Abort the campaign right after this many checkpoints have been
    /// written, fleet-wide (testing hook: simulates a kill *mid-unit*,
    /// with a checkpoint on disk and the unit unfinished).
    pub abort_after_ckpts: Option<usize>,
}

/// Per-unit execution context [`run_fleet`] hands to the runner: where
/// this unit's mid-run checkpoint lives, how often to take one, and the
/// shared abort budget behind [`FleetOpts::abort_after_ckpts`].
#[derive(Debug)]
pub struct UnitCtx<'a> {
    /// This unit's checkpoint file (`unit_<id>.ckpt`), present only when
    /// the campaign has both a directory and a checkpoint stride.
    pub ckpt_path: Option<PathBuf>,
    /// Simulated-cycle stride between checkpoints.
    pub checkpoint_every: Option<u64>,
    /// Remaining fleet-wide checkpoint tickets (`None` = unlimited).
    ckpt_tickets: Option<&'a AtomicUsize>,
}

impl UnitCtx<'_> {
    /// A context with checkpointing disabled (single-shot callers).
    #[must_use]
    pub fn none() -> Self {
        UnitCtx {
            ckpt_path: None,
            checkpoint_every: None,
            ckpt_tickets: None,
        }
    }

    /// Consumes one checkpoint ticket after a checkpoint has been written.
    /// Returns `false` when the ticket budget is now exhausted: the runner
    /// must abandon its unit (returning `None`), exactly as if the process
    /// had been killed the instant the checkpoint landed on disk.
    #[must_use]
    pub fn take_ckpt_ticket(&self) -> bool {
        let Some(t) = self.ckpt_tickets else {
            return true;
        };
        t.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |b| b.checked_sub(1))
            .is_ok_and(|prev| prev > 1)
    }
}

/// Aggregated outcome of one [`run_fleet`] invocation.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Finished units in ascending unit-id order (resumed and fresh).
    /// When the run was stopped early, only completed units appear.
    pub records: Vec<UnitRecord>,
    /// Worker threads used.
    pub threads: usize,
    /// Host seconds for the whole invocation.
    pub wall_s: f64,
    /// Units a worker obtained from another worker's queue.
    pub steals: u64,
    /// True when [`FleetOpts::stop_after`] ended the run with units
    /// still pending.
    pub stopped_early: bool,
}

impl FleetReport {
    /// Simulated cycles across all finished units (resumed included).
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.records.iter().map(|r| r.stats.cycles).sum()
    }

    /// Committed ROI instructions across all finished units.
    #[must_use]
    pub fn total_insts(&self) -> u64 {
        self.records.iter().map(|r| r.stats.insts).sum()
    }

    /// Simulated cycles actually executed *this invocation* (excludes
    /// units resumed from disk) — the numerator of [`agg_cps`](Self::agg_cps).
    #[must_use]
    pub fn fresh_cycles(&self) -> u64 {
        self.records
            .iter()
            .filter(|r| !r.resumed)
            .map(|r| r.stats.cycles)
            .sum()
    }

    /// True when every finished unit exited cleanly.
    #[must_use]
    pub fn all_ok(&self) -> bool {
        self.records.iter().all(|r| r.stats.exit_ok)
    }

    /// Aggregate simulation throughput: simulated cycles executed this
    /// invocation per host second, summed over all workers. This is the
    /// fleet's headline metric (`fleet_agg_cps` in the perf gate).
    #[must_use]
    pub fn agg_cps(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.fresh_cycles() as f64 / self.wall_s
        } else {
            0.0
        }
    }

    /// The campaign report with every host-dependent field (wall time,
    /// steal count, thread count, resume provenance) excluded: two
    /// invocations that finished the same grid produce byte-identical
    /// output regardless of thread count, steal schedule, or how the
    /// campaign was split across kill/resume boundaries.
    #[must_use]
    pub fn deterministic_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_u64("schema_version", 1);
        w.field_u64("units", self.records.len() as u64);
        w.field_u64("total_cycles", self.total_cycles());
        w.field_u64("total_insts", self.total_insts());
        w.key("all_ok");
        w.boolean(self.all_ok());
        w.key("runs");
        w.begin_array();
        for r in &self.records {
            w.begin_object();
            w.field_u64("id", r.unit.id as u64);
            w.field_u64("seed", r.unit.seed);
            w.field_str("config", &r.unit.config);
            w.field_str("workload", &r.unit.workload);
            w.field_u64("cycles", r.stats.cycles);
            w.field_u64("insts", r.stats.insts);
            w.key("exit_ok");
            w.boolean(r.stats.exit_ok);
            w.end_object();
        }
        w.end_array();
        w.end_object();
        w.finish()
    }
}

/// Enumerates the seed × config × workload grid in the canonical order
/// (seed outermost, workload innermost) and assigns unit ids from that
/// order. Resume keys depend on this enumeration being stable.
#[must_use]
pub fn fleet_grid(seeds: &[u64], configs: &[&str], workloads: &[&Workload]) -> Vec<FleetUnit> {
    let mut units = Vec::with_capacity(seeds.len() * configs.len() * workloads.len());
    for &seed in seeds {
        for &config in configs {
            for w in workloads {
                units.push(FleetUnit {
                    id: units.len(),
                    seed,
                    config: config.to_string(),
                    workload: w.name.to_string(),
                });
            }
        }
    }
    units
}

/// Runs `units` to completion on `opts.threads` workers with work
/// stealing and returns the aggregate report.
///
/// Units are dealt round-robin onto per-worker deques; a worker pops its
/// own queue from the front and, when empty, steals from the *back* of
/// the other queues. Because every unit is an independent simulation,
/// the schedule affects only wall time — never results — so the report's
/// [`deterministic_json`](FleetReport::deterministic_json) is identical
/// for any thread count.
///
/// With [`FleetOpts::campaign_dir`] set, previously persisted units are
/// loaded instead of re-simulated and fresh completions are persisted
/// atomically (temp file + rename).
///
/// The runner receives a [`UnitCtx`] describing the unit's checkpoint
/// policy and returns `None` when it abandoned the unit mid-run (the
/// checkpoint-ticket budget ran out — the simulated kill). An abandoned
/// unit stops the whole invocation: remaining tickets are zeroed so no
/// worker claims further units, the unit is neither recorded nor
/// persisted, and only its `unit_<id>.ckpt` survives for the next resume.
///
/// # Panics
///
/// Panics when the campaign directory cannot be created or a unit file
/// cannot be written — a campaign that silently loses persistence would
/// break the resume contract.
pub fn run_fleet<F>(units: Vec<FleetUnit>, opts: &FleetOpts, runner: F) -> FleetReport
where
    F: Fn(&FleetUnit, &UnitCtx<'_>) -> Option<UnitStats> + Sync,
{
    let start = Instant::now();
    let threads = opts.threads.max(1);

    // Resume: split the grid into already-finished records and pending work.
    let mut records: Vec<UnitRecord> = Vec::new();
    let mut pending: Vec<FleetUnit> = Vec::new();
    if let Some(dir) = &opts.campaign_dir {
        std::fs::create_dir_all(dir)
            .unwrap_or_else(|e| panic!("fleet: cannot create {}: {e}", dir.display()));
        for u in units {
            match load_unit(dir, &u) {
                Some(stats) => records.push(UnitRecord {
                    unit: u,
                    stats,
                    wall_s: 0.0,
                    resumed: true,
                }),
                None => pending.push(u),
            }
        }
    } else {
        pending = units;
    }
    let pending_total = pending.len();

    // Deal pending units round-robin onto per-worker deques.
    let queues: Vec<Mutex<VecDeque<FleetUnit>>> =
        (0..threads).map(|_| Mutex::new(VecDeque::new())).collect();
    for (i, u) in pending.into_iter().enumerate() {
        queues[i % threads].lock().unwrap().push_back(u);
    }

    let steals = AtomicU64::new(0);
    let budget = AtomicUsize::new(opts.stop_after.unwrap_or(usize::MAX));
    let ckpt_tickets = opts.abort_after_ckpts.map(AtomicUsize::new);
    let done: Mutex<Vec<UnitRecord>> = Mutex::new(Vec::new());
    let dir = opts.campaign_dir.as_deref();

    std::thread::scope(|s| {
        for me in 0..threads {
            let queues = &queues;
            let steals = &steals;
            let budget = &budget;
            let ckpt_tickets = ckpt_tickets.as_ref();
            let done = &done;
            let runner = &runner;
            s.spawn(move || loop {
                // Claim a completion ticket *before* taking a unit so a
                // stopped run leaves unclaimed units on the queues (and
                // on disk as "not yet finished") rather than half-done.
                if budget
                    .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |b| b.checked_sub(1))
                    .is_err()
                {
                    return;
                }
                let unit = {
                    let own = queues[me].lock().unwrap().pop_front();
                    own.or_else(|| {
                        (1..threads).find_map(|d| {
                            let victim = (me + d) % threads;
                            let stolen = queues[victim].lock().unwrap().pop_back();
                            if stolen.is_some() {
                                steals.fetch_add(1, Ordering::Relaxed);
                            }
                            stolen
                        })
                    })
                };
                let Some(unit) = unit else {
                    // Out of work everywhere; return the unused ticket for
                    // bookkeeping symmetry and retire.
                    budget.fetch_add(1, Ordering::SeqCst);
                    return;
                };
                let ctx = UnitCtx {
                    ckpt_path: dir
                        .filter(|_| opts.checkpoint_every.is_some())
                        .map(|d| ckpt_path(d, unit.id)),
                    checkpoint_every: opts.checkpoint_every,
                    ckpt_tickets,
                };
                let t0 = Instant::now();
                let Some(stats) = runner(&unit, &ctx) else {
                    // The unit was abandoned mid-run (simulated kill):
                    // zero the completion budget so no worker claims
                    // further units and this invocation winds down.
                    budget.store(0, Ordering::SeqCst);
                    return;
                };
                let wall_s = t0.elapsed().as_secs_f64();
                if let Some(dir) = dir {
                    persist_unit(dir, &unit, &stats);
                }
                done.lock().unwrap().push(UnitRecord {
                    unit,
                    stats,
                    wall_s,
                    resumed: false,
                });
            });
        }
    });

    let fresh = done.into_inner().unwrap();
    let stopped_early = fresh.len() < pending_total;
    records.extend(fresh);
    records.sort_by_key(|r| r.unit.id);
    FleetReport {
        records,
        threads,
        wall_s: start.elapsed().as_secs_f64(),
        steals: steals.load(Ordering::Relaxed),
        stopped_early,
    }
}

fn unit_path(dir: &Path, id: usize) -> PathBuf {
    dir.join(format!("unit_{id}.json"))
}

fn ckpt_path(dir: &Path, id: usize) -> PathBuf {
    dir.join(format!("unit_{id}.ckpt"))
}

/// Writes a mid-run checkpoint atomically (temp file + rename), the same
/// torn-write discipline as the unit files.
///
/// # Panics
///
/// Panics when the checkpoint cannot be written — the operator asked for
/// checkpointing, so silently losing it would break the resume contract.
pub fn write_ckpt(path: &Path, bytes: &[u8]) {
    let tmp = path.with_extension("ckpt.tmp");
    std::fs::write(&tmp, bytes)
        .and_then(|()| std::fs::rename(&tmp, path))
        .unwrap_or_else(|e| panic!("fleet: cannot write checkpoint {}: {e}", path.display()));
}

/// Serializes one finished unit as a flat JSON object.
fn unit_json(unit: &FleetUnit, stats: &UnitStats) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_u64("id", unit.id as u64);
    w.field_u64("seed", unit.seed);
    w.field_str("config", &unit.config);
    w.field_str("workload", &unit.workload);
    w.field_u64("cycles", stats.cycles);
    w.field_u64("insts", stats.insts);
    w.key("exit_ok");
    w.boolean(stats.exit_ok);
    w.end_object();
    w.finish()
}

/// Writes the unit file atomically: temp file in the same directory, then
/// rename, so a kill mid-write never leaves a torn `unit_<id>.json`.
fn persist_unit(dir: &Path, unit: &FleetUnit, stats: &UnitStats) {
    let tmp = dir.join(format!("unit_{}.json.tmp", unit.id));
    let path = unit_path(dir, unit.id);
    std::fs::write(&tmp, unit_json(unit, stats))
        .and_then(|()| std::fs::rename(&tmp, &path))
        .unwrap_or_else(|e| panic!("fleet: cannot persist {}: {e}", path.display()));
}

/// Loads a persisted unit result, verifying it describes the *same* grid
/// cell (a stale campaign directory from a different grid must not be
/// silently accepted as progress).
fn load_unit(dir: &Path, unit: &FleetUnit) -> Option<UnitStats> {
    let text = std::fs::read_to_string(unit_path(dir, unit.id)).ok()?;
    let obj = parse_flat_json(&text)?;
    let field_u64 = |k: &str| -> Option<u64> {
        match obj.iter().find(|(key, _)| key == k)? {
            (_, JsonValue::Num(n)) => Some(*n),
            _ => None,
        }
    };
    let field_str = |k: &str| -> Option<&str> {
        match obj.iter().find(|(key, _)| key == k)? {
            (_, JsonValue::Str(s)) => Some(s.as_str()),
            _ => None,
        }
    };
    let field_bool = |k: &str| -> Option<bool> {
        match obj.iter().find(|(key, _)| key == k)? {
            (_, JsonValue::Bool(b)) => Some(*b),
            _ => None,
        }
    };
    if field_u64("id")? != unit.id as u64
        || field_u64("seed")? != unit.seed
        || field_str("config")? != unit.config
        || field_str("workload")? != unit.workload
    {
        return None;
    }
    Some(UnitStats {
        cycles: field_u64("cycles")?,
        insts: field_u64("insts")?,
        exit_ok: field_bool("exit_ok")?,
    })
}

/// A value in the flat unit-file JSON dialect.
#[derive(Debug, Clone, PartialEq, Eq)]
enum JsonValue {
    Num(u64),
    Str(String),
    Bool(bool),
}

/// Parses a single flat JSON object (`{"k": v, ...}` with string, bool,
/// and non-negative integer values — exactly what [`unit_json`] emits).
/// Returns `None` on anything else; a malformed unit file then just
/// re-runs the unit, which is always safe.
fn parse_flat_json(text: &str) -> Option<Vec<(String, JsonValue)>> {
    let mut chars = text.trim().chars().peekable();
    if chars.next()? != '{' {
        return None;
    }
    let mut out = Vec::new();
    loop {
        while chars.peek().is_some_and(|c| c.is_whitespace() || *c == ',') {
            chars.next();
        }
        match chars.peek()? {
            '}' => {
                chars.next();
                return Some(out);
            }
            '"' => {}
            _ => return None,
        }
        let key = parse_string(&mut chars)?;
        while chars.peek().is_some_and(|c| c.is_whitespace()) {
            chars.next();
        }
        if chars.next()? != ':' {
            return None;
        }
        while chars.peek().is_some_and(|c| c.is_whitespace()) {
            chars.next();
        }
        let val = match chars.peek()? {
            '"' => JsonValue::Str(parse_string(&mut chars)?),
            't' | 'f' => {
                let mut word = String::new();
                while chars.peek().is_some_and(|c| c.is_ascii_alphabetic()) {
                    word.push(chars.next()?);
                }
                match word.as_str() {
                    "true" => JsonValue::Bool(true),
                    "false" => JsonValue::Bool(false),
                    _ => return None,
                }
            }
            c if c.is_ascii_digit() => {
                let mut n: u64 = 0;
                while chars.peek().is_some_and(char::is_ascii_digit) {
                    n = n
                        .checked_mul(10)?
                        .checked_add(u64::from(chars.next()?.to_digit(10)?))?;
                }
                JsonValue::Num(n)
            }
            _ => return None,
        };
        out.push((key, val));
    }
}

/// Parses a JSON string literal (leading quote still pending). Only the
/// escapes [`unit_json`] can produce are understood.
fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Option<String> {
    if chars.next()? != '"' {
        return None;
    }
    let mut s = String::new();
    loop {
        match chars.next()? {
            '"' => return Some(s),
            '\\' => match chars.next()? {
                '"' => s.push('"'),
                '\\' => s.push('\\'),
                'n' => s.push('\n'),
                'r' => s.push('\r'),
                't' => s.push('\t'),
                _ => return None,
            },
            c => s.push(c),
        }
    }
}

/// A campaign harness over the real SoC: holds the resolved workload
/// list and run policy, maps config labels to machine configurations,
/// and runs one grid cell end to end.
#[derive(Debug)]
pub struct SocFleet {
    /// Workloads the grid's names resolve against.
    pub workloads: Vec<Workload>,
    /// Scheduler mode every unit runs under.
    pub sched: SchedulerMode,
    /// Attach a per-unit seeded chaos [`FaultPlan`] to each run.
    pub chaos: bool,
}

impl SocFleet {
    /// Maps a config label to `(core, memory)` configurations. `"t+"` is
    /// the paper's T+ single-core with the B memory system; `"c-"` pairs
    /// it with the C– memory system (Fig. 17's second column).
    ///
    /// # Panics
    ///
    /// Panics on an unknown label — a typo'd grid must not silently
    /// shrink the campaign.
    #[must_use]
    pub fn config_for(label: &str) -> (CoreConfig, riscy_mem::system::MemConfig) {
        match label {
            "t+" => (CoreConfig::riscyoo_t_plus(), mem_riscyoo_b()),
            "c-" => (CoreConfig::riscyoo_t_plus(), mem_riscyoo_c_minus()),
            other => panic!("fleet: unknown config label {other:?} (t+|c-)"),
        }
    }

    /// Runs one grid cell: builds the SoC for the unit's config, seeds
    /// chaos from the unit's seed when enabled, and simulates to
    /// completion (or budget exhaustion, which is recorded as
    /// `exit_ok: false` rather than a panic — a chaos plan may
    /// legitimately starve a run).
    ///
    /// With a checkpoint policy in `ctx`, the unit resumes from its
    /// `unit_<id>.ckpt` when one exists, snapshots itself every
    /// [`UnitCtx::checkpoint_every`] simulated cycles, and deletes the
    /// checkpoint on completion. Returns `None` only when the
    /// checkpoint-ticket budget expired mid-run (the simulated kill; see
    /// [`FleetOpts::abort_after_ckpts`]). Chaos units take no checkpoints:
    /// snapshots refuse live fault engines, and a seeded fault plan
    /// replays deterministically from cycle zero anyway.
    ///
    /// # Panics
    ///
    /// Panics when the unit names a workload the fleet does not carry.
    #[must_use]
    pub fn run_unit(&self, unit: &FleetUnit, ctx: &UnitCtx<'_>) -> Option<UnitStats> {
        let w = self
            .workloads
            .iter()
            .find(|w| w.name == unit.workload)
            .unwrap_or_else(|| panic!("fleet: unknown workload {:?}", unit.workload));
        let (cfg, mem) = Self::config_for(&unit.config);
        let mut sim = SocSim::new(cfg, mem, 1, &w.program);
        sim.set_scheduler(self.sched);
        if self.chaos {
            let plan = FaultPlan::new(unit.seed)
                .guard_stall("c0.issue*", 0.001)
                .rule_abort("c0.alu*", 0.0005);
            let engine = FaultEngine::new(plan);
            sim.attach_chaos(&engine);
            let exit_ok = sim.run_to_completion(w.max_cycles).is_ok();
            return Some(UnitStats {
                cycles: sim.cycles(),
                insts: sim.soc().cores[0].stats.roi_insts,
                exit_ok,
            });
        }
        // Resume from a mid-run checkpoint when one exists. A checkpoint
        // that fails to restore (stale grid, version skew, torn bytes) is
        // discarded and the unit replays from cycle zero — the same
        // re-run-is-always-safe posture as a malformed unit file.
        if let Some(path) = &ctx.ckpt_path {
            if let Ok(bytes) = std::fs::read(path) {
                if sim.restore_snapshot(&bytes).is_err() {
                    sim = SocSim::new(cfg, mem, 1, &w.program);
                    sim.set_scheduler(self.sched);
                }
            }
        }
        let stride = ctx.checkpoint_every.filter(|_| ctx.ckpt_path.is_some());
        let exit_ok = loop {
            let executed = sim.cycles();
            if executed >= w.max_cycles {
                break false;
            }
            let left = w.max_cycles - executed;
            let chunk = stride.map_or(left, |s| s.min(left));
            match sim.run_to_completion(chunk) {
                Ok(_) => break true,
                Err(RunError::Budget { .. }) if chunk < left => {
                    // Checkpoint boundary, not real budget exhaustion.
                    if let (Some(path), Ok(bytes)) = (&ctx.ckpt_path, sim.save_snapshot()) {
                        write_ckpt(path, &bytes);
                        if !ctx.take_ckpt_ticket() {
                            return None;
                        }
                    }
                }
                Err(_) => break false,
            }
        };
        if let Some(path) = &ctx.ckpt_path {
            std::fs::remove_file(path).ok();
        }
        Some(UnitStats {
            cycles: sim.cycles(),
            insts: sim.soc().cores[0].stats.roi_insts,
            exit_ok,
        })
    }
}
