//! # Work-stealing fleet runner — many SoCs per process
//!
//! [`SchedulerMode::Parallel`] keeps a *single* simulation deterministic
//! under the wave-barrier discipline (see `docs/PARALLELISM.md`); this
//! module supplies the second half of the parallelism story: **scale-out
//! across independent simulations**. A campaign is a grid of
//! [`FleetUnit`]s (seed × config × workload); [`run_fleet`] executes the
//! grid on a pool of host threads with work stealing, streams one
//! stats-JSON file per finished unit into the campaign directory, and
//! folds everything into a [`FleetReport`] whose
//! [`deterministic_json`](FleetReport::deterministic_json) bytes are
//! independent of thread count, steal order, and kill/resume history.
//!
//! Each simulation kernel is thread-confined (`Rc`/`RefCell` state), so
//! the unit — not the rule — is the granule that crosses threads: a
//! worker owns a whole `SocSim` from construction to completion. Units
//! are seeded deterministically and never share state, so any schedule of
//! units over workers produces the same per-unit results; the report
//! sorts by unit id before serializing, which is the entire determinism
//! argument at this layer.
//!
//! ## Kill and resume
//!
//! With a campaign directory, every completed unit is persisted as
//! `unit_<id>.json` (written to a temp file and renamed, so a kill can
//! only lose in-flight units, never corrupt finished ones). A rerun of
//! the same grid loads finished units from disk and only simulates the
//! remainder; the final aggregate report is byte-identical to a
//! single-shot run. [`FleetOpts::stop_after`] bounds how many units one
//! invocation completes, which is how the resume tests simulate a kill.
//!
//! ## Mid-unit checkpoints
//!
//! [`FleetOpts::checkpoint_every`] shrinks the kill-loss granule from a
//! whole unit to a checkpoint stride: every N simulated cycles the runner
//! snapshots the live SoC ([`SocSim::save_snapshot`], see
//! `docs/CHECKPOINT.md`) into `unit_<id>.ckpt` (temp file + rename, like
//! the unit files). A resumed campaign restores the snapshot and
//! continues from the checkpointed cycle instead of cycle zero; because
//! snapshots round-trip bit-identically, the aggregate report bytes stay
//! equal to a single-shot run's. Finished units delete their checkpoint;
//! a checkpoint that fails to restore (stale grid, version skew) is
//! discarded and the unit replays from scratch — always safe. Chaos units
//! never checkpoint: snapshots refuse live fault engines.
//! [`FleetOpts::abort_after_ckpts`] is the testing hook that simulates a
//! kill *mid-unit*, right after the Nth checkpoint lands on disk.

#![warn(missing_docs)]

use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use cmd_core::chaos::{FaultEngine, FaultPlan};
use cmd_core::sched::SchedulerMode;
use cmd_core::trace::json::JsonWriter;
use riscy_ooo::config::{mem_riscyoo_b, mem_riscyoo_c_minus, CoreConfig};
use riscy_ooo::soc::{RunError, SocSim};
use riscy_workloads::spec::Workload;

/// One cell of the campaign grid: a fully specified, independent
/// simulation. `id` is the unit's position in the grid enumeration order
/// and doubles as its resume key, so the same grid arguments must always
/// enumerate the same ids (which [`fleet_grid`] guarantees).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetUnit {
    /// Grid index; stable across invocations of the same grid.
    pub id: usize,
    /// Chaos / placement seed for this unit.
    pub seed: u64,
    /// Config label, e.g. `"t+"` or `"c-"` (see [`SocFleet::run_unit`]).
    pub config: String,
    /// Workload name, resolved against the fleet's workload list.
    pub workload: String,
}

/// What one finished unit reports. Everything here is simulation-domain
/// (deterministic); host wall time lives in [`UnitRecord`] instead so it
/// can be excluded from the deterministic report bytes.
#[derive(Debug, Clone, PartialEq)]
pub struct UnitStats {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Instructions committed in the region of interest.
    pub insts: u64,
    /// Whether the run completed cleanly (a chaos plan may legitimately
    /// push a run past its cycle budget; that is recorded, not fatal).
    pub exit_ok: bool,
    /// Named simulation-domain metrics (IPC, miss rates, config axes …)
    /// the sweep aggregator folds into Pareto reports (see
    /// [`crate::sweep`]). Deterministic: derived only from counters and
    /// the unit's configuration, never from host time.
    pub metrics: Vec<(String, f64)>,
}

/// A unit paired with its result and bookkeeping about *how* it was
/// obtained this invocation.
#[derive(Debug, Clone)]
pub struct UnitRecord {
    /// The grid cell.
    pub unit: FleetUnit,
    /// Its simulation-domain result.
    pub stats: UnitStats,
    /// Host seconds spent simulating it this invocation (`0.0` if the
    /// result was loaded from a campaign directory).
    pub wall_s: f64,
    /// True when the result was resumed from disk rather than simulated.
    pub resumed: bool,
}

/// Execution knobs for [`run_fleet`].
#[derive(Debug, Clone, Default)]
pub struct FleetOpts {
    /// Worker threads (clamped to at least 1).
    pub threads: usize,
    /// Campaign directory for per-unit persistence and resume.
    pub campaign_dir: Option<PathBuf>,
    /// Stop after completing this many units this invocation (testing
    /// hook: simulates a mid-campaign kill for the resume tests).
    pub stop_after: Option<usize>,
    /// Snapshot each in-flight unit every this many simulated cycles
    /// (needs [`FleetOpts::campaign_dir`]; see module docs §"Mid-unit
    /// checkpoints").
    pub checkpoint_every: Option<u64>,
    /// Abort the campaign right after this many checkpoints have been
    /// written, fleet-wide (testing hook: simulates a kill *mid-unit*,
    /// with a checkpoint on disk and the unit unfinished).
    pub abort_after_ckpts: Option<usize>,
    /// Append a heartbeat record to `heartbeats.ndjson` every this many
    /// simulated cycles per unit (needs [`FleetOpts::campaign_dir`]; see
    /// [`Heartbeats`]). Host-dependent by design and therefore excluded
    /// from [`FleetReport::deterministic_json`].
    pub heartbeat_every: Option<u64>,
    /// Per-unit wall-clock budget in host seconds. A unit that exceeds it
    /// stops at the next chunk boundary, persists a structured
    /// wait-graph bundle as `unit_<id>.stall.json`, and records
    /// `exit_ok: false` — the campaign keeps going instead of sitting
    /// silently on a hung unit. Diagnostic mode: because the cut point
    /// depends on host speed, reports from timed-out campaigns are not
    /// byte-comparable.
    pub unit_timeout: Option<f64>,
    /// Enable windowed kernel telemetry on every unit as
    /// `(window_cycles, max_windows)`; each finished unit writes its ring
    /// as `unit_<id>.telemetry.json` (needs [`FleetOpts::campaign_dir`]).
    pub telemetry: Option<(u64, usize)>,
}

/// The fleet's live-monitoring stream: newline-delimited JSON heartbeat
/// records in the campaign directory (`heartbeats.ndjson`), one object
/// per beat (`unit`, `phase`, `cycles`, `insts`, `ckpts`, `cps`, `eta_s`,
/// `wall_s`). The whole file is rewritten atomically (temp file + rename)
/// on every beat so `fleet --watch` never reads a torn line, and existing
/// lines are preloaded on resume so a campaign's monitoring history
/// survives kill/resume. Heartbeats carry host time on purpose — they are
/// for operators, and are excluded from every deterministic artifact.
#[derive(Debug)]
pub struct Heartbeats {
    path: PathBuf,
    lines: Mutex<Vec<String>>,
}

impl Heartbeats {
    /// Opens (or creates) the stream at `dir/heartbeats.ndjson`,
    /// preloading any lines a previous invocation left behind.
    #[must_use]
    pub fn open(dir: &Path) -> Self {
        let path = dir.join("heartbeats.ndjson");
        let lines = std::fs::read_to_string(&path)
            .map(|t| t.lines().map(str::to_string).collect())
            .unwrap_or_default();
        Heartbeats {
            path,
            lines: Mutex::new(lines),
        }
    }

    /// Appends one record and rewrites the file atomically.
    ///
    /// # Panics
    ///
    /// Panics when the stream cannot be written — the operator asked for
    /// monitoring, so silently dropping it would defeat the point.
    pub fn beat(&self, line: String) {
        let mut lines = self.lines.lock().unwrap();
        lines.push(line);
        let mut text = lines.join("\n");
        text.push('\n');
        let tmp = self.path.with_extension("ndjson.tmp");
        std::fs::write(&tmp, text)
            .and_then(|()| std::fs::rename(&tmp, &self.path))
            .unwrap_or_else(|e| panic!("fleet: cannot write {}: {e}", self.path.display()));
    }
}

/// Serializes one heartbeat record as a single NDJSON line.
#[allow(clippy::too_many_arguments)]
fn heartbeat_line(
    unit: usize,
    phase: &str,
    cycles: u64,
    insts: u64,
    ckpts: u64,
    cps: f64,
    eta_s: f64,
    wall_s: f64,
) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_u64("unit", unit as u64);
    w.field_str("phase", phase);
    w.field_u64("cycles", cycles);
    w.field_u64("insts", insts);
    w.field_u64("ckpts", ckpts);
    w.field_f64("cps", cps);
    w.field_f64("eta_s", eta_s);
    w.field_f64("wall_s", wall_s);
    w.end_object();
    w.finish()
}

/// Per-unit execution context [`run_fleet`] hands to the runner: where
/// this unit's mid-run checkpoint lives, how often to take one, and the
/// shared abort budget behind [`FleetOpts::abort_after_ckpts`].
#[derive(Debug)]
pub struct UnitCtx<'a> {
    /// This unit's checkpoint file (`unit_<id>.ckpt`), present only when
    /// the campaign has both a directory and a checkpoint stride.
    pub ckpt_path: Option<PathBuf>,
    /// Simulated-cycle stride between checkpoints.
    pub checkpoint_every: Option<u64>,
    /// Remaining fleet-wide checkpoint tickets (`None` = unlimited).
    ckpt_tickets: Option<&'a AtomicUsize>,
    /// The campaign's heartbeat stream, when monitoring is on.
    pub heartbeats: Option<&'a Heartbeats>,
    /// Simulated-cycle stride between heartbeat records.
    pub heartbeat_every: Option<u64>,
    /// Per-unit wall-clock budget in host seconds (see
    /// [`FleetOpts::unit_timeout`]).
    pub unit_timeout: Option<f64>,
    /// Where this unit's stall bundle goes on timeout
    /// (`unit_<id>.stall.json`).
    pub stall_path: Option<PathBuf>,
    /// Windowed-telemetry policy as `(window_cycles, max_windows)`.
    pub telemetry: Option<(u64, usize)>,
    /// Where this unit's telemetry ring goes on completion
    /// (`unit_<id>.telemetry.json`).
    pub telemetry_path: Option<PathBuf>,
}

impl UnitCtx<'_> {
    /// A context with checkpointing, monitoring, and telemetry disabled
    /// (single-shot callers).
    #[must_use]
    pub fn none() -> Self {
        UnitCtx {
            ckpt_path: None,
            checkpoint_every: None,
            ckpt_tickets: None,
            heartbeats: None,
            heartbeat_every: None,
            unit_timeout: None,
            stall_path: None,
            telemetry: None,
            telemetry_path: None,
        }
    }

    /// Consumes one checkpoint ticket after a checkpoint has been written.
    /// Returns `false` when the ticket budget is now exhausted: the runner
    /// must abandon its unit (returning `None`), exactly as if the process
    /// had been killed the instant the checkpoint landed on disk.
    #[must_use]
    pub fn take_ckpt_ticket(&self) -> bool {
        let Some(t) = self.ckpt_tickets else {
            return true;
        };
        t.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |b| b.checked_sub(1))
            .is_ok_and(|prev| prev > 1)
    }
}

/// Aggregated outcome of one [`run_fleet`] invocation.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Finished units in ascending unit-id order (resumed and fresh).
    /// When the run was stopped early, only completed units appear.
    pub records: Vec<UnitRecord>,
    /// Worker threads used.
    pub threads: usize,
    /// Host seconds for the whole invocation.
    pub wall_s: f64,
    /// Units a worker obtained from another worker's queue.
    pub steals: u64,
    /// True when [`FleetOpts::stop_after`] ended the run with units
    /// still pending.
    pub stopped_early: bool,
}

impl FleetReport {
    /// Simulated cycles across all finished units (resumed included).
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.records.iter().map(|r| r.stats.cycles).sum()
    }

    /// Committed ROI instructions across all finished units.
    #[must_use]
    pub fn total_insts(&self) -> u64 {
        self.records.iter().map(|r| r.stats.insts).sum()
    }

    /// Simulated cycles actually executed *this invocation* (excludes
    /// units resumed from disk) — the numerator of [`agg_cps`](Self::agg_cps).
    #[must_use]
    pub fn fresh_cycles(&self) -> u64 {
        self.records
            .iter()
            .filter(|r| !r.resumed)
            .map(|r| r.stats.cycles)
            .sum()
    }

    /// True when every finished unit exited cleanly.
    #[must_use]
    pub fn all_ok(&self) -> bool {
        self.records.iter().all(|r| r.stats.exit_ok)
    }

    /// Aggregate simulation throughput: simulated cycles executed this
    /// invocation per host second, summed over all workers. This is the
    /// fleet's headline metric (`fleet_agg_cps` in the perf gate).
    #[must_use]
    pub fn agg_cps(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.fresh_cycles() as f64 / self.wall_s
        } else {
            0.0
        }
    }

    /// The campaign report with every host-dependent field (wall time,
    /// steal count, thread count, resume provenance) excluded: two
    /// invocations that finished the same grid produce byte-identical
    /// output regardless of thread count, steal schedule, or how the
    /// campaign was split across kill/resume boundaries.
    #[must_use]
    pub fn deterministic_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.schema_version();
        w.field_u64("units", self.records.len() as u64);
        w.field_u64("total_cycles", self.total_cycles());
        w.field_u64("total_insts", self.total_insts());
        w.key("all_ok");
        w.boolean(self.all_ok());
        w.key("runs");
        w.begin_array();
        for r in &self.records {
            w.begin_object();
            w.field_u64("id", r.unit.id as u64);
            w.field_u64("seed", r.unit.seed);
            w.field_str("config", &r.unit.config);
            w.field_str("workload", &r.unit.workload);
            w.field_u64("cycles", r.stats.cycles);
            w.field_u64("insts", r.stats.insts);
            w.key("exit_ok");
            w.boolean(r.stats.exit_ok);
            w.key("metrics");
            w.begin_object();
            for (name, value) in &r.stats.metrics {
                w.field_f64(name, *value);
            }
            w.end_object();
            w.end_object();
        }
        w.end_array();
        w.end_object();
        w.finish()
    }
}

/// Enumerates the seed × config × workload grid in the canonical order
/// (seed outermost, workload innermost) and assigns unit ids from that
/// order. Resume keys depend on this enumeration being stable.
#[must_use]
pub fn fleet_grid(seeds: &[u64], configs: &[&str], workloads: &[&Workload]) -> Vec<FleetUnit> {
    let mut units = Vec::with_capacity(seeds.len() * configs.len() * workloads.len());
    for &seed in seeds {
        for &config in configs {
            for w in workloads {
                units.push(FleetUnit {
                    id: units.len(),
                    seed,
                    config: config.to_string(),
                    workload: w.name.to_string(),
                });
            }
        }
    }
    units
}

/// Runs `units` to completion on `opts.threads` workers with work
/// stealing and returns the aggregate report.
///
/// Units are dealt round-robin onto per-worker deques; a worker pops its
/// own queue from the front and, when empty, steals from the *back* of
/// the other queues. Because every unit is an independent simulation,
/// the schedule affects only wall time — never results — so the report's
/// [`deterministic_json`](FleetReport::deterministic_json) is identical
/// for any thread count.
///
/// With [`FleetOpts::campaign_dir`] set, previously persisted units are
/// loaded instead of re-simulated and fresh completions are persisted
/// atomically (temp file + rename).
///
/// The runner receives a [`UnitCtx`] describing the unit's checkpoint
/// policy and returns `None` when it abandoned the unit mid-run (the
/// checkpoint-ticket budget ran out — the simulated kill). An abandoned
/// unit stops the whole invocation: remaining tickets are zeroed so no
/// worker claims further units, the unit is neither recorded nor
/// persisted, and only its `unit_<id>.ckpt` survives for the next resume.
///
/// # Panics
///
/// Panics when the campaign directory cannot be created or a unit file
/// cannot be written — a campaign that silently loses persistence would
/// break the resume contract.
pub fn run_fleet<F>(units: Vec<FleetUnit>, opts: &FleetOpts, runner: F) -> FleetReport
where
    F: Fn(&FleetUnit, &UnitCtx<'_>) -> Option<UnitStats> + Sync,
{
    let start = Instant::now();
    let threads = opts.threads.max(1);

    // Resume: split the grid into already-finished records and pending work.
    let mut records: Vec<UnitRecord> = Vec::new();
    let mut pending: Vec<FleetUnit> = Vec::new();
    if let Some(dir) = &opts.campaign_dir {
        std::fs::create_dir_all(dir)
            .unwrap_or_else(|e| panic!("fleet: cannot create {}: {e}", dir.display()));
        for u in units {
            match load_unit(dir, &u) {
                Some(stats) => records.push(UnitRecord {
                    unit: u,
                    stats,
                    wall_s: 0.0,
                    resumed: true,
                }),
                None => pending.push(u),
            }
        }
    } else {
        pending = units;
    }
    let pending_total = pending.len();

    // Deal pending units round-robin onto per-worker deques.
    let queues: Vec<Mutex<VecDeque<FleetUnit>>> =
        (0..threads).map(|_| Mutex::new(VecDeque::new())).collect();
    for (i, u) in pending.into_iter().enumerate() {
        queues[i % threads].lock().unwrap().push_back(u);
    }

    let steals = AtomicU64::new(0);
    let budget = AtomicUsize::new(opts.stop_after.unwrap_or(usize::MAX));
    let ckpt_tickets = opts.abort_after_ckpts.map(AtomicUsize::new);
    let done: Mutex<Vec<UnitRecord>> = Mutex::new(Vec::new());
    let dir = opts.campaign_dir.as_deref();
    let heartbeats = dir
        .filter(|_| opts.heartbeat_every.is_some() || opts.unit_timeout.is_some())
        .map(Heartbeats::open);

    std::thread::scope(|s| {
        for me in 0..threads {
            let queues = &queues;
            let steals = &steals;
            let budget = &budget;
            let ckpt_tickets = ckpt_tickets.as_ref();
            let heartbeats = heartbeats.as_ref();
            let done = &done;
            let runner = &runner;
            s.spawn(move || loop {
                // Claim a completion ticket *before* taking a unit so a
                // stopped run leaves unclaimed units on the queues (and
                // on disk as "not yet finished") rather than half-done.
                if budget
                    .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |b| b.checked_sub(1))
                    .is_err()
                {
                    return;
                }
                let unit = {
                    let own = queues[me].lock().unwrap().pop_front();
                    own.or_else(|| {
                        (1..threads).find_map(|d| {
                            let victim = (me + d) % threads;
                            let stolen = queues[victim].lock().unwrap().pop_back();
                            if stolen.is_some() {
                                steals.fetch_add(1, Ordering::Relaxed);
                            }
                            stolen
                        })
                    })
                };
                let Some(unit) = unit else {
                    // Out of work everywhere; return the unused ticket for
                    // bookkeeping symmetry and retire.
                    budget.fetch_add(1, Ordering::SeqCst);
                    return;
                };
                let ctx = UnitCtx {
                    ckpt_path: dir
                        .filter(|_| opts.checkpoint_every.is_some())
                        .map(|d| ckpt_path(d, unit.id)),
                    checkpoint_every: opts.checkpoint_every,
                    ckpt_tickets,
                    heartbeats,
                    heartbeat_every: opts.heartbeat_every,
                    unit_timeout: opts.unit_timeout,
                    stall_path: dir.map(|d| stall_path(d, unit.id)),
                    telemetry: opts.telemetry,
                    telemetry_path: dir
                        .filter(|_| opts.telemetry.is_some())
                        .map(|d| telemetry_path(d, unit.id)),
                };
                let t0 = Instant::now();
                let Some(stats) = runner(&unit, &ctx) else {
                    // The unit was abandoned mid-run (simulated kill):
                    // zero the completion budget so no worker claims
                    // further units and this invocation winds down.
                    budget.store(0, Ordering::SeqCst);
                    return;
                };
                let wall_s = t0.elapsed().as_secs_f64();
                if let Some(dir) = dir {
                    persist_unit(dir, &unit, &stats);
                }
                done.lock().unwrap().push(UnitRecord {
                    unit,
                    stats,
                    wall_s,
                    resumed: false,
                });
            });
        }
    });

    let fresh = done.into_inner().unwrap();
    let stopped_early = fresh.len() < pending_total;
    records.extend(fresh);
    records.sort_by_key(|r| r.unit.id);
    FleetReport {
        records,
        threads,
        wall_s: start.elapsed().as_secs_f64(),
        steals: steals.load(Ordering::Relaxed),
        stopped_early,
    }
}

fn unit_path(dir: &Path, id: usize) -> PathBuf {
    dir.join(format!("unit_{id}.json"))
}

fn ckpt_path(dir: &Path, id: usize) -> PathBuf {
    dir.join(format!("unit_{id}.ckpt"))
}

fn stall_path(dir: &Path, id: usize) -> PathBuf {
    dir.join(format!("unit_{id}.stall.json"))
}

fn telemetry_path(dir: &Path, id: usize) -> PathBuf {
    dir.join(format!("unit_{id}.telemetry.json"))
}

/// How often (in simulated cycles) a unit with *only* a wall-clock
/// timeout re-checks the clock: fine enough that a hung unit is caught
/// within seconds, coarse enough that the chunked run loop stays cheap.
const TIMEOUT_CHECK_STRIDE: u64 = 50_000;

/// Writes a per-unit campaign artifact atomically (temp file + rename),
/// quietly — campaigns write many of these.
fn write_unit_artifact(path: &Path, contents: &str) {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, contents)
        .and_then(|()| std::fs::rename(&tmp, path))
        .unwrap_or_else(|e| panic!("fleet: cannot write {}: {e}", path.display()));
}

/// Persists the structured diagnosis of a timed-out unit: identity,
/// progress at the cut, and the kernel's wait graph (which rules are
/// stalled and on what guard / conflict-matrix edge), so a hung campaign
/// unit is debuggable from the campaign directory alone.
fn write_stall_bundle(path: &Path, unit: &FleetUnit, sim: &SocSim, wall_s: f64) {
    let report = sim.wait_graph();
    let mut w = JsonWriter::new();
    w.begin_object();
    w.schema_version();
    w.field_u64("unit", unit.id as u64);
    w.field_u64("seed", unit.seed);
    w.field_str("config", &unit.config);
    w.field_str("workload", &unit.workload);
    w.field_u64("cycles", sim.cycles());
    w.field_u64("insts", sim.soc().cores[0].stats.roi_insts);
    w.field_f64("wall_s", wall_s);
    w.field_u64("stalled_for", report.stalled_for);
    w.key("waits");
    w.begin_array();
    for wait in &report.waits {
        w.begin_object();
        w.field_str("rule", &wait.rule);
        w.field_str("cause", &wait.cause.to_string());
        w.end_object();
    }
    w.end_array();
    w.end_object();
    write_unit_artifact(path, &w.finish());
}

/// Writes a mid-run checkpoint atomically (temp file + rename), the same
/// torn-write discipline as the unit files.
///
/// # Panics
///
/// Panics when the checkpoint cannot be written — the operator asked for
/// checkpointing, so silently losing it would break the resume contract.
pub fn write_ckpt(path: &Path, bytes: &[u8]) {
    let tmp = path.with_extension("ckpt.tmp");
    std::fs::write(&tmp, bytes)
        .and_then(|()| std::fs::rename(&tmp, path))
        .unwrap_or_else(|e| panic!("fleet: cannot write checkpoint {}: {e}", path.display()));
}

/// Serializes one finished unit as a flat JSON object. Metrics are
/// flattened as `m_<name>` keys so the file stays in the one-level
/// dialect [`parse_flat_json`] understands.
fn unit_json(unit: &FleetUnit, stats: &UnitStats) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.schema_version();
    w.field_u64("id", unit.id as u64);
    w.field_u64("seed", unit.seed);
    w.field_str("config", &unit.config);
    w.field_str("workload", &unit.workload);
    w.field_u64("cycles", stats.cycles);
    w.field_u64("insts", stats.insts);
    w.key("exit_ok");
    w.boolean(stats.exit_ok);
    for (name, value) in &stats.metrics {
        w.field_f64(&format!("m_{name}"), *value);
    }
    w.end_object();
    w.finish()
}

/// Writes the unit file atomically: temp file in the same directory, then
/// rename, so a kill mid-write never leaves a torn `unit_<id>.json`.
fn persist_unit(dir: &Path, unit: &FleetUnit, stats: &UnitStats) {
    let tmp = dir.join(format!("unit_{}.json.tmp", unit.id));
    let path = unit_path(dir, unit.id);
    std::fs::write(&tmp, unit_json(unit, stats))
        .and_then(|()| std::fs::rename(&tmp, &path))
        .unwrap_or_else(|e| panic!("fleet: cannot persist {}: {e}", path.display()));
}

/// Parses one persisted unit file back into its grid cell and result.
/// Returns `None` on malformed input; the caller then just re-runs the
/// unit, which is always safe.
#[must_use]
pub fn parse_unit_file(text: &str) -> Option<(FleetUnit, UnitStats)> {
    let obj = parse_flat_json(text)?;
    let field_u64 = |k: &str| -> Option<u64> {
        match obj.iter().find(|(key, _)| key == k)? {
            (_, JsonValue::Num(n)) => Some(*n),
            _ => None,
        }
    };
    let field_str = |k: &str| -> Option<&str> {
        match obj.iter().find(|(key, _)| key == k)? {
            (_, JsonValue::Str(s)) => Some(s.as_str()),
            _ => None,
        }
    };
    let field_bool = |k: &str| -> Option<bool> {
        match obj.iter().find(|(key, _)| key == k)? {
            (_, JsonValue::Bool(b)) => Some(*b),
            _ => None,
        }
    };
    let metrics = obj
        .iter()
        .filter_map(|(key, v)| {
            let name = key.strip_prefix("m_")?;
            let value = match v {
                JsonValue::Num(n) => *n as f64,
                JsonValue::Float(x) => *x,
                _ => return None,
            };
            Some((name.to_string(), value))
        })
        .collect();
    Some((
        FleetUnit {
            id: usize::try_from(field_u64("id")?).ok()?,
            seed: field_u64("seed")?,
            config: field_str("config")?.to_string(),
            workload: field_str("workload")?.to_string(),
        },
        UnitStats {
            cycles: field_u64("cycles")?,
            insts: field_u64("insts")?,
            exit_ok: field_bool("exit_ok")?,
            metrics,
        },
    ))
}

/// Loads a persisted unit result, verifying it describes the *same* grid
/// cell (a stale campaign directory from a different grid must not be
/// silently accepted as progress).
fn load_unit(dir: &Path, unit: &FleetUnit) -> Option<UnitStats> {
    let text = std::fs::read_to_string(unit_path(dir, unit.id)).ok()?;
    let (parsed, stats) = parse_unit_file(&text)?;
    if parsed != *unit {
        return None;
    }
    Some(stats)
}

/// Loads every `unit_<id>.json` in a campaign directory in ascending
/// unit-id order — the sweep aggregator's input (see [`crate::sweep`]).
/// Malformed or unreadable files are skipped, exactly as resume skips
/// them.
///
/// # Panics
///
/// Panics when the directory itself cannot be read: aggregating a
/// campaign that does not exist is an operator error, not an empty sweep.
#[must_use]
pub fn load_campaign(dir: &Path) -> Vec<(FleetUnit, UnitStats)> {
    let entries = std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("fleet: cannot read campaign {}: {e}", dir.display()));
    let mut ids: Vec<usize> = entries
        .filter_map(Result::ok)
        .filter_map(|e| {
            let name = e.file_name().into_string().ok()?;
            name.strip_prefix("unit_")?
                .strip_suffix(".json")?
                .parse()
                .ok()
        })
        .collect();
    ids.sort_unstable();
    ids.iter()
        .filter_map(|&id| {
            let text = std::fs::read_to_string(unit_path(dir, id)).ok()?;
            parse_unit_file(&text).filter(|(u, _)| u.id == id)
        })
        .collect()
}

/// Renders a one-screen status snapshot of a live campaign from its
/// on-disk monitoring state (`fleet --watch`): the latest heartbeat per
/// unit, which units have finished (`unit_<id>.json` on disk), and which
/// are flagged as stalled (a `stalled` heartbeat or a
/// `unit_<id>.stall.json` bundle). Read-only and safe to run while the
/// campaign is executing — heartbeats and unit files are rename-atomic,
/// so a snapshot never observes a torn record.
///
/// # Panics
///
/// Panics when the campaign directory cannot be read.
#[must_use]
pub fn watch_snapshot(dir: &Path) -> String {
    use std::collections::BTreeMap;
    use std::fmt::Write as _;

    let mut latest: BTreeMap<u64, Vec<(String, JsonValue)>> = BTreeMap::new();
    let mut beats = 0usize;
    if let Ok(text) = std::fs::read_to_string(dir.join("heartbeats.ndjson")) {
        for line in text.lines() {
            let Some(obj) = parse_flat_json(line) else {
                continue;
            };
            let Some((_, JsonValue::Num(id))) = obj.iter().find(|(k, _)| k == "unit") else {
                continue;
            };
            beats += 1;
            latest.insert(*id, obj);
        }
    }
    let mut done: Vec<usize> = Vec::new();
    let mut stalled_bundles: Vec<usize> = Vec::new();
    let entries = std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("fleet: cannot read campaign {}: {e}", dir.display()));
    for e in entries.filter_map(Result::ok) {
        let Ok(name) = e.file_name().into_string() else {
            continue;
        };
        if let Some(id) = name
            .strip_prefix("unit_")
            .and_then(|r| r.strip_suffix(".stall.json"))
            .and_then(|r| r.parse().ok())
        {
            stalled_bundles.push(id);
        } else if let Some(id) = name
            .strip_prefix("unit_")
            .and_then(|r| r.strip_suffix(".json"))
            .and_then(|r| r.parse().ok())
        {
            done.push(id);
        }
    }
    done.sort_unstable();
    stalled_bundles.sort_unstable();

    let get_u64 = |obj: &[(String, JsonValue)], k: &str| -> u64 {
        match obj.iter().find(|(key, _)| key == k) {
            Some((_, JsonValue::Num(n))) => *n,
            _ => 0,
        }
    };
    let get_f64 = |obj: &[(String, JsonValue)], k: &str| -> f64 {
        match obj.iter().find(|(key, _)| key == k) {
            Some((_, JsonValue::Float(x))) => *x,
            Some((_, JsonValue::Num(n))) => *n as f64,
            _ => 0.0,
        }
    };
    let get_str = |obj: &[(String, JsonValue)], k: &str| -> String {
        match obj.iter().find(|(key, _)| key == k) {
            Some((_, JsonValue::Str(s))) => s.clone(),
            _ => String::from("?"),
        }
    };

    let mut out = String::new();
    let _ = writeln!(
        out,
        "campaign {}: {} units finished, {} heartbeats",
        dir.display(),
        done.len(),
        beats,
    );
    let _ = writeln!(
        out,
        "{:<6} {:<8} {:>14} {:>12} {:>12} {:>8} {:>6}",
        "unit", "phase", "cycles", "insts", "cps", "eta_s", "ckpts"
    );
    for (id, obj) in &latest {
        let phase = get_str(obj, "phase");
        let finished = done.contains(&usize::try_from(*id).unwrap_or(usize::MAX));
        let shown = if finished && phase != "stalled" {
            "done".to_string()
        } else {
            phase.clone()
        };
        let flag = if phase == "stalled" {
            "  << STALLED"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "{:<6} {:<8} {:>14} {:>12} {:>12.0} {:>8.1} {:>6}{}",
            id,
            shown,
            get_u64(obj, "cycles"),
            get_u64(obj, "insts"),
            get_f64(obj, "cps"),
            get_f64(obj, "eta_s"),
            get_u64(obj, "ckpts"),
            flag,
        );
    }
    for id in &stalled_bundles {
        let _ = writeln!(out, "stall bundle on disk: unit_{id}.stall.json");
    }
    out
}

/// A value in the flat unit-file JSON dialect.
#[derive(Debug, Clone, PartialEq)]
enum JsonValue {
    Num(u64),
    Float(f64),
    Str(String),
    Bool(bool),
}

/// Parses a single flat JSON object (`{"k": v, ...}` with string, bool,
/// and number values — exactly what [`unit_json`] and [`heartbeat_line`]
/// emit; numbers with a `.`, exponent, or sign parse as [`JsonValue::Float`]).
/// Returns `None` on anything else; a malformed unit file then just
/// re-runs the unit, which is always safe.
fn parse_flat_json(text: &str) -> Option<Vec<(String, JsonValue)>> {
    let mut chars = text.trim().chars().peekable();
    if chars.next()? != '{' {
        return None;
    }
    let mut out = Vec::new();
    loop {
        while chars.peek().is_some_and(|c| c.is_whitespace() || *c == ',') {
            chars.next();
        }
        match chars.peek()? {
            '}' => {
                chars.next();
                return Some(out);
            }
            '"' => {}
            _ => return None,
        }
        let key = parse_string(&mut chars)?;
        while chars.peek().is_some_and(|c| c.is_whitespace()) {
            chars.next();
        }
        if chars.next()? != ':' {
            return None;
        }
        while chars.peek().is_some_and(|c| c.is_whitespace()) {
            chars.next();
        }
        let val = match chars.peek()? {
            '"' => JsonValue::Str(parse_string(&mut chars)?),
            't' | 'f' => {
                let mut word = String::new();
                while chars.peek().is_some_and(|c| c.is_ascii_alphabetic()) {
                    word.push(chars.next()?);
                }
                match word.as_str() {
                    "true" => JsonValue::Bool(true),
                    "false" => JsonValue::Bool(false),
                    _ => return None,
                }
            }
            c if c.is_ascii_digit() || *c == '-' => {
                let mut lit = String::new();
                while chars
                    .peek()
                    .is_some_and(|c| c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E'))
                {
                    lit.push(chars.next()?);
                }
                if lit.chars().all(|c| c.is_ascii_digit()) {
                    JsonValue::Num(lit.parse().ok()?)
                } else {
                    JsonValue::Float(lit.parse().ok()?)
                }
            }
            _ => return None,
        };
        out.push((key, val));
    }
}

/// Parses a JSON string literal (leading quote still pending). Only the
/// escapes [`unit_json`] can produce are understood.
fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Option<String> {
    if chars.next()? != '"' {
        return None;
    }
    let mut s = String::new();
    loop {
        match chars.next()? {
            '"' => return Some(s),
            '\\' => match chars.next()? {
                '"' => s.push('"'),
                '\\' => s.push('\\'),
                'n' => s.push('\n'),
                'r' => s.push('\r'),
                't' => s.push('\t'),
                _ => return None,
            },
            c => s.push(c),
        }
    }
}

/// A campaign harness over the real SoC: holds the resolved workload
/// list and run policy, maps config labels to machine configurations,
/// and runs one grid cell end to end.
#[derive(Debug)]
pub struct SocFleet {
    /// Workloads the grid's names resolve against.
    pub workloads: Vec<Workload>,
    /// Scheduler mode every unit runs under.
    pub sched: SchedulerMode,
    /// Attach a per-unit seeded chaos [`FaultPlan`] to each run.
    pub chaos: bool,
}

impl SocFleet {
    /// Maps a config label to `(core, memory)` configurations. `"t+"` is
    /// the paper's T+ single-core with the B memory system; `"c-"` pairs
    /// it with the C– memory system (Fig. 17's second column).
    ///
    /// Labels compose with `:key=value` overrides for sweep campaigns —
    /// `"t+:rob=48:iq=24"` is the T+ core with a 48-entry ROB and a
    /// 24-entry issue queue. Recognized keys: `rob`, `iq`, `lq`, `sq`,
    /// `sb`, `width`. Because the label is the unit's identity on disk,
    /// the same label always resolves to the same machine.
    ///
    /// # Panics
    ///
    /// Panics on an unknown label or override key — a typo'd grid must
    /// not silently shrink or distort the campaign.
    #[must_use]
    pub fn config_for(label: &str) -> (CoreConfig, riscy_mem::system::MemConfig) {
        let mut parts = label.split(':');
        let base = parts.next().expect("split yields at least one part");
        let (mut cfg, mem) = match base {
            "t+" => (CoreConfig::riscyoo_t_plus(), mem_riscyoo_b()),
            "c-" => (CoreConfig::riscyoo_t_plus(), mem_riscyoo_c_minus()),
            other => panic!("fleet: unknown config label {other:?} (t+|c-)"),
        };
        for part in parts {
            let (key, value) = part
                .split_once('=')
                .unwrap_or_else(|| panic!("fleet: config override {part:?} is not key=value"));
            let n: usize = value
                .parse()
                .unwrap_or_else(|_| panic!("fleet: config override {part:?}: not a number"));
            match key {
                "rob" => cfg.rob_entries = n,
                "iq" => cfg.iq_entries = n,
                "lq" => cfg.lq_entries = n,
                "sq" => cfg.sq_entries = n,
                "sb" => cfg.sb_entries = n,
                "width" => cfg.width = n,
                other => {
                    panic!("fleet: unknown config override key {other:?} (rob|iq|lq|sq|sb|width)")
                }
            }
        }
        (cfg, mem)
    }

    /// The deterministic per-unit metrics the sweep aggregator consumes:
    /// IPC and event rates from the finished simulation, plus the unit's
    /// structure sizes as `axis.*` entries so a Pareto report can trade
    /// performance off against cost (the paper's Fig. 12/13 axes).
    fn unit_metrics(sim: &SocSim, cfg: &CoreConfig) -> Vec<(String, f64)> {
        let soc = sim.soc();
        let st = &soc.cores[0].stats;
        let insts = st.roi_insts.max(1) as f64;
        let ipc = if st.roi_cycles == 0 {
            0.0
        } else {
            st.roi_insts as f64 / st.roi_cycles as f64
        };
        vec![
            ("ipc".to_string(), ipc),
            (
                "brpred_pki".to_string(),
                1000.0 * st.mispredicts as f64 / insts,
            ),
            (
                "dcache_pki".to_string(),
                1000.0 * soc.mem.dcache_ref(0).stats.misses as f64 / insts,
            ),
            ("axis.rob_entries".to_string(), cfg.rob_entries as f64),
            ("axis.iq_entries".to_string(), cfg.iq_entries as f64),
        ]
    }

    /// Runs one grid cell: builds the SoC for the unit's config, seeds
    /// chaos from the unit's seed when enabled, and simulates to
    /// completion (or budget exhaustion, which is recorded as
    /// `exit_ok: false` rather than a panic — a chaos plan may
    /// legitimately starve a run).
    ///
    /// With a checkpoint policy in `ctx`, the unit resumes from its
    /// `unit_<id>.ckpt` when one exists, snapshots itself every
    /// [`UnitCtx::checkpoint_every`] simulated cycles, and deletes the
    /// checkpoint on completion. Returns `None` only when the
    /// checkpoint-ticket budget expired mid-run (the simulated kill; see
    /// [`FleetOpts::abort_after_ckpts`]). Chaos units take no checkpoints:
    /// snapshots refuse live fault engines, and a seeded fault plan
    /// replays deterministically from cycle zero anyway.
    ///
    /// # Panics
    ///
    /// Panics when the unit names a workload the fleet does not carry.
    #[must_use]
    pub fn run_unit(&self, unit: &FleetUnit, ctx: &UnitCtx<'_>) -> Option<UnitStats> {
        let w = self
            .workloads
            .iter()
            .find(|w| w.name == unit.workload)
            .unwrap_or_else(|| panic!("fleet: unknown workload {:?}", unit.workload));
        let (cfg, mem) = Self::config_for(&unit.config);
        let mut sim = SocSim::new(cfg, mem, 1, &w.program);
        sim.set_scheduler(self.sched);
        // Telemetry goes on before any snapshot restore: the snapshot
        // contract requires restore-side enablement to match save-side.
        if let Some((win, cap)) = ctx.telemetry {
            sim.enable_telemetry(win, cap);
        }
        let start = Instant::now();
        let mut ckpts_taken: u64 = 0;
        let beat = |sim: &SocSim, phase: &str, ckpts: u64| {
            let Some(hb) = ctx.heartbeats else { return };
            let cycles = sim.cycles();
            let insts = sim.soc().cores[0].stats.roi_insts;
            let wall_s = start.elapsed().as_secs_f64();
            let cps = if wall_s > 0.0 {
                cycles as f64 / wall_s
            } else {
                0.0
            };
            let eta_s = if cps > 0.0 {
                w.max_cycles.saturating_sub(cycles) as f64 / cps
            } else {
                0.0
            };
            hb.beat(heartbeat_line(
                unit.id, phase, cycles, insts, ckpts, cps, eta_s, wall_s,
            ));
        };
        if self.chaos {
            let plan = FaultPlan::new(unit.seed)
                .guard_stall("c0.issue*", 0.001)
                .rule_abort("c0.alu*", 0.0005);
            let engine = FaultEngine::new(plan);
            sim.attach_chaos(&engine);
            beat(&sim, "start", 0);
            let exit_ok = sim.run_to_completion(w.max_cycles).is_ok();
            beat(&sim, "done", 0);
            if let Some(path) = &ctx.telemetry_path {
                write_unit_artifact(path, &sim.telemetry_json());
            }
            return Some(UnitStats {
                cycles: sim.cycles(),
                insts: sim.soc().cores[0].stats.roi_insts,
                exit_ok,
                metrics: Self::unit_metrics(&sim, &cfg),
            });
        }
        // Resume from a mid-run checkpoint when one exists. A checkpoint
        // that fails to restore (stale grid, version skew, torn bytes) is
        // discarded and the unit replays from cycle zero — the same
        // re-run-is-always-safe posture as a malformed unit file.
        if let Some(path) = &ctx.ckpt_path {
            if let Ok(bytes) = std::fs::read(path) {
                if sim.restore_snapshot(&bytes).is_err() {
                    sim = SocSim::new(cfg, mem, 1, &w.program);
                    sim.set_scheduler(self.sched);
                    if let Some((win, cap)) = ctx.telemetry {
                        sim.enable_telemetry(win, cap);
                    }
                }
            }
        }
        beat(&sim, "start", 0);
        // The chunk stride is the finest of the requested cadences; each
        // instrument fires only when its own stride has elapsed, so a
        // coarse checkpoint cadence composes with fine heartbeats.
        let ckpt_stride = ctx.checkpoint_every.filter(|_| ctx.ckpt_path.is_some());
        let hb_stride = ctx.heartbeat_every.filter(|_| ctx.heartbeats.is_some());
        let timeout_stride = ctx.unit_timeout.map(|_| TIMEOUT_CHECK_STRIDE);
        let stride = [ckpt_stride, hb_stride, timeout_stride]
            .into_iter()
            .flatten()
            .min();
        let mut last_ckpt = sim.cycles();
        let mut last_beat = sim.cycles();
        let mut timed_out = false;
        let exit_ok = loop {
            let executed = sim.cycles();
            if executed >= w.max_cycles {
                break false;
            }
            if ctx
                .unit_timeout
                .is_some_and(|t| start.elapsed().as_secs_f64() > t)
            {
                timed_out = true;
                break false;
            }
            let left = w.max_cycles - executed;
            let chunk = stride.map_or(left, |s| s.min(left));
            match sim.run_to_completion(chunk) {
                Ok(_) => break true,
                Err(RunError::Budget { .. }) if chunk < left => {
                    // Chunk boundary, not real budget exhaustion.
                    let cycles = sim.cycles();
                    if ckpt_stride.is_some_and(|s| cycles - last_ckpt >= s) {
                        last_ckpt = cycles;
                        if let (Some(path), Ok(bytes)) = (&ctx.ckpt_path, sim.save_snapshot()) {
                            write_ckpt(path, &bytes);
                            ckpts_taken += 1;
                            if !ctx.take_ckpt_ticket() {
                                return None;
                            }
                        }
                    }
                    if hb_stride.is_some_and(|s| cycles - last_beat >= s) {
                        last_beat = cycles;
                        beat(&sim, "run", ckpts_taken);
                    }
                }
                Err(_) => break false,
            }
        };
        if timed_out {
            // The unit blew its wall-clock budget: leave a structured
            // diagnosis behind instead of a silent hang, then let the
            // campaign move on.
            if let Some(path) = &ctx.stall_path {
                write_stall_bundle(path, unit, &sim, start.elapsed().as_secs_f64());
            }
            beat(&sim, "stalled", ckpts_taken);
        } else {
            beat(&sim, "done", ckpts_taken);
        }
        if let Some(path) = &ctx.ckpt_path {
            std::fs::remove_file(path).ok();
        }
        if let Some(path) = &ctx.telemetry_path {
            write_unit_artifact(path, &sim.telemetry_json());
        }
        Some(UnitStats {
            cycles: sim.cycles(),
            insts: sim.soc().cores[0].stats.roi_insts,
            exit_ok,
            metrics: Self::unit_metrics(&sim, &cfg),
        })
    }
}
