//! Fault-injection smoke campaign on the OoO SoC.
//!
//! Runs `mcf` (test scale) under a seeded [`FaultPlan`] combining three
//! fault kinds — forced guard stalls on issue rules, bit flips in the
//! fetch PC, and dropped interconnect messages — then reruns every seed
//! and checks the campaign reproduces bit-for-bit:
//!
//! * every outcome is a structured `Ok`/[`RunError`] — a panic anywhere
//!   is a robustness bug;
//! * the fault log of the rerun is identical to the first run;
//! * the outcome of the rerun is identical to the first run.
//!
//! Exits non-zero on any mismatch, so CI can gate on it.

use cmd_core::chaos::{FaultEngine, FaultPlan, FaultRecord};
use riscy_ooo::config::{mem_riscyoo_b, CoreConfig};
use riscy_ooo::soc::SocSim;
use riscy_workloads::spec::{mcf, Scale};

const BUDGET: u64 = 400_000;
const SEEDS: u64 = 6;

fn campaign(seed: u64) -> (String, Vec<FaultRecord>) {
    let w = mcf(Scale::Test);
    let mut sim = SocSim::new(CoreConfig::riscyoo_t_plus(), mem_riscyoo_b(), 1, &w.program);
    let plan = FaultPlan::new(seed)
        .guard_stall("c0.issue*", 0.002)
        .bit_flip("c0.fetch_pc", 0.0002)
        .msg_drop("mem.p2c", 0.01)
        .msg_drop("mem.c2p_req", 0.01);
    let engine = FaultEngine::new(plan);
    sim.attach_chaos(&engine);
    let outcome = match sim.run_to_completion(BUDGET) {
        Ok(cycles) => format!("completed in {cycles} cycles"),
        Err(e) => format!("structured error: {e}"),
    };
    (outcome, engine.log())
}

fn main() {
    let mut failures = 0u32;
    let mut all_kinds = std::collections::BTreeSet::new();
    for seed in 0..SEEDS {
        let (out_a, log_a) = campaign(seed);
        let (out_b, log_b) = campaign(seed);
        let kinds: std::collections::BTreeSet<_> =
            log_a.iter().map(|r| r.kind.to_string()).collect();
        all_kinds.extend(kinds.iter().cloned());
        println!(
            "seed {seed}: {out_a} | {} faults injected ({})",
            log_a.len(),
            kinds.into_iter().collect::<Vec<_>>().join(", "),
        );
        if log_a != log_b {
            println!("  FAIL: rerun fault log diverged ({} vs {})", log_a.len(), log_b.len());
            failures += 1;
        }
        if out_a != out_b {
            println!("  FAIL: rerun outcome diverged: {out_b}");
            failures += 1;
        }
        if log_a.is_empty() {
            println!("  FAIL: campaign injected nothing");
            failures += 1;
        }
    }
    for kind in ["guard-stall", "bit-flip", "msg-drop"] {
        if !all_kinds.contains(kind) {
            println!("FAIL: campaign never exercised {kind}");
            failures += 1;
        }
    }
    if failures > 0 {
        println!("chaos smoke: {failures} failure(s)");
        std::process::exit(1);
    }
    println!("chaos smoke: all {SEEDS} seeds reproducible, zero panics");
}
