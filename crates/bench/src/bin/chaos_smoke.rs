//! Fault-injection smoke campaign on the OoO SoC.
//!
//! Runs `mcf` (test scale) under a seeded [`FaultPlan`] combining three
//! fault kinds — forced guard stalls on issue rules, bit flips in the
//! fetch PC, and dropped interconnect messages — then reruns every seed
//! and checks the campaign reproduces bit-for-bit:
//!
//! * every outcome is a structured `Ok`/[`RunError`] — a panic anywhere
//!   is a robustness bug — *and* classifies into a known bucket
//!   (`completed`, `budget-exhausted`, `deadlock`, `reg-conflict`,
//!   `cycle-limit`); anything else is a hard failure;
//! * the fault log of the rerun is identical to the first run;
//! * the outcome of the rerun is identical to the first run.
//!
//! Also prints a per-fault-kind injection tally across the whole campaign,
//! so a plan change that silently stops exercising a fault kind shows up
//! in the output even before the coverage check trips.
//!
//! Exits non-zero on any mismatch, so CI can gate on it.

use cmd_core::chaos::{FaultEngine, FaultPlan, FaultRecord};
use cmd_core::sim::SimError;
use riscy_ooo::config::{mem_riscyoo_b, CoreConfig};
use riscy_ooo::soc::{RunError, SocSim};
use riscy_workloads::spec::{mcf, Scale};
use std::collections::BTreeMap;

const BUDGET: u64 = 400_000;
const SEEDS: u64 = 6;

/// Buckets an outcome into the campaign's known failure taxonomy.
///
/// `None` means the outcome is *outside* the taxonomy — under fault
/// injection the SoC may fail, but only in ways the error model names.
/// An unclassifiable error (e.g. a cosim divergence report) means a fault
/// corrupted architectural state in a way the structured errors were
/// supposed to rule out, and the campaign treats it as a hard failure.
fn classify(outcome: &Result<u64, RunError>) -> Option<&'static str> {
    match outcome {
        Ok(_) => Some("completed"),
        Err(RunError::Budget { .. }) => Some("budget-exhausted"),
        Err(RunError::Sim(SimError::Deadlock { .. })) => Some("deadlock"),
        Err(RunError::Sim(SimError::RegConflict { .. })) => Some("reg-conflict"),
        Err(RunError::Sim(SimError::CycleLimit { .. })) => Some("cycle-limit"),
        Err(_) => None,
    }
}

fn campaign(seed: u64) -> (String, Option<&'static str>, Vec<FaultRecord>) {
    let w = mcf(Scale::Test);
    let mut sim = SocSim::new(CoreConfig::riscyoo_t_plus(), mem_riscyoo_b(), 1, &w.program);
    let plan = FaultPlan::new(seed)
        .guard_stall("c0.issue*", 0.002)
        .bit_flip("c0.fetch_pc", 0.0002)
        .msg_drop("mem.p2c", 0.01)
        .msg_drop("mem.c2p_req", 0.01);
    let engine = FaultEngine::new(plan);
    sim.attach_chaos(&engine);
    let result = sim.run_to_completion(BUDGET);
    let class = classify(&result);
    let outcome = match result {
        Ok(cycles) => format!("completed in {cycles} cycles"),
        Err(e) => format!("structured error: {e}"),
    };
    (outcome, class, engine.log())
}

fn main() {
    let mut failures = 0u32;
    let mut all_kinds = std::collections::BTreeSet::new();
    let mut tally: BTreeMap<String, u64> = BTreeMap::new();
    let mut outcomes: BTreeMap<&'static str, u64> = BTreeMap::new();
    for seed in 0..SEEDS {
        let (out_a, class_a, log_a) = campaign(seed);
        let (out_b, _, log_b) = campaign(seed);
        let kinds: std::collections::BTreeSet<_> =
            log_a.iter().map(|r| r.kind.to_string()).collect();
        all_kinds.extend(kinds.iter().cloned());
        for r in &log_a {
            *tally.entry(r.kind.to_string()).or_default() += 1;
        }
        match class_a {
            Some(class) => {
                *outcomes.entry(class).or_default() += 1;
                println!(
                    "seed {seed}: [{class}] {out_a} | {} faults injected ({})",
                    log_a.len(),
                    kinds.into_iter().collect::<Vec<_>>().join(", "),
                );
            }
            None => {
                println!("seed {seed}: FAIL: unclassifiable outcome: {out_a}");
                failures += 1;
            }
        }
        if log_a != log_b {
            println!(
                "  FAIL: rerun fault log diverged ({} vs {})",
                log_a.len(),
                log_b.len()
            );
            failures += 1;
        }
        if out_a != out_b {
            println!("  FAIL: rerun outcome diverged: {out_b}");
            failures += 1;
        }
        if log_a.is_empty() {
            println!("  FAIL: campaign injected nothing");
            failures += 1;
        }
    }
    for kind in ["guard-stall", "bit-flip", "msg-drop"] {
        if !all_kinds.contains(kind) {
            println!("FAIL: campaign never exercised {kind}");
            failures += 1;
        }
    }
    println!("\nper-fault injection tally ({SEEDS} seeds):");
    for (kind, n) in &tally {
        println!("  {kind:<14} {n:>8}");
    }
    println!("outcome histogram:");
    for (class, n) in &outcomes {
        println!("  {class:<18} {n:>4}");
    }
    if failures > 0 {
        println!("chaos smoke: {failures} failure(s)");
        std::process::exit(1);
    }
    println!("chaos smoke: all {SEEDS} seeds reproducible, zero panics");
}
