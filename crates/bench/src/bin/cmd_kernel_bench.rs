//! Micro-benchmarks of the CMD kernel and the paper's §III/§IV tutorial
//! designs — the ablations DESIGN.md calls out:
//!
//! * `mkGCD` vs `mkTwoGCD` throughput (paper §III-B);
//! * bypassed vs non-bypassed RDYB (paper §IV-C);
//! * `issue<wakeup` vs `wakeup<issue` IQ orderings (paper §IV-D);
//! * raw scheduler overhead per rule firing;
//! * the ring-of-64 wakeup benchmark: fast scheduler vs the reference
//!   one-rule-at-a-time oracle (see `docs/SCHEDULING.md`), the workload
//!   behind the CI perf gate's `--bench-json` artifact.
//!
//! A dependency-free harness (simple best-of-N wall-clock timing with
//! `std::time::Instant`) replaces criterion: the container builds offline,
//! and the quantities of interest here are architectural cycle counts plus
//! coarse host-time ratios, not microsecond-precision distributions.

use cmd_core::demo::gcd::{stream_gcd, Gcd, TwoGcd};
use cmd_core::demo::iq::{dependent_chain, run_iq_demo, IqDemoConfig, IqOrdering, RdybKind};
use cmd_core::prelude::*;
use riscy_bench::{bench_json_path, metrics_json, stats_json_path, write_artifact};
use std::hint::black_box;
use std::time::Instant;

/// Best-of-`reps` wall time for `f`, in nanoseconds per call.
fn bench<R>(label: &str, reps: usize, iters: u32, mut f: impl FnMut() -> R) {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let dt = t0.elapsed().as_secs_f64() / f64::from(iters);
        best = best.min(dt);
    }
    println!("{label:<44} {:>12.0} ns/iter", best * 1e9);
}

fn bench_gcd() {
    let inputs: Vec<(u32, u32)> = (0..16).map(|i| (5040 + i, 7 + i)).collect();
    bench("gcd_throughput/mkGCD", 5, 50, || {
        let clk = Clock::new();
        let unit = Gcd::new(&clk);
        stream_gcd(clk, unit, inputs.clone())
    });
    bench("gcd_throughput/mkTwoGCD", 5, 50, || {
        let clk = Clock::new();
        let unit = TwoGcd::new(&clk);
        stream_gcd(clk, unit, inputs.clone())
    });
}

fn bench_iq_orderings() {
    let chain = dependent_chain(48);
    for (label, cfg) in [
        (
            "iq_rdyb_cm_ablation/bypassed_issue_before_wakeup",
            IqDemoConfig {
                rdyb: RdybKind::Bypassed,
                ordering: IqOrdering::IssueBeforeWakeup,
                iq_size: 8,
            },
        ),
        (
            "iq_rdyb_cm_ablation/bypassed_wakeup_before_issue",
            IqDemoConfig {
                rdyb: RdybKind::Bypassed,
                ordering: IqOrdering::WakeupBeforeIssue,
                iq_size: 8,
            },
        ),
        (
            "iq_rdyb_cm_ablation/nonbypassed_issue_before_wakeup",
            IqDemoConfig {
                rdyb: RdybKind::NonBypassed,
                ordering: IqOrdering::IssueBeforeWakeup,
                iq_size: 8,
            },
        ),
    ] {
        bench(label, 5, 20, || run_iq_demo(cfg, &chain).unwrap());
    }

    // Also print the architectural cycle counts (the paper's point is
    // about *cycles*, not host time).
    for (label, cfg) in [
        ("issue<wakeup (IV-C)", IqOrdering::IssueBeforeWakeup),
        ("wakeup<issue (IV-D)", IqOrdering::WakeupBeforeIssue),
    ] {
        let stats = run_iq_demo(
            IqDemoConfig {
                ordering: cfg,
                ..IqDemoConfig::default()
            },
            &chain,
        )
        .unwrap();
        println!(
            "[cycles] {label}: {} cycles for 48 dependent ops",
            stats.cycles
        );
    }
}

fn bench_scheduler_overhead() {
    struct St {
        x: Ehr<u64>,
        q: PipelineFifo<u64>,
    }
    let clk = Clock::new();
    let st = St {
        x: Ehr::new(&clk, 0),
        q: PipelineFifo::new(&clk, 4),
    };
    let mut sim = Sim::new(clk, st);
    sim.rule("deq", |s: &mut St| {
        let v = s.q.deq()?;
        s.x.update(|x| *x += v);
        Ok(())
    });
    sim.rule("enq", |s: &mut St| s.q.enq(1));
    bench("scheduler_rule_firing (100 cycles)", 5, 200, || {
        sim.run(100);
        sim.state().x.read()
    });
}

/// The ring-of-64 wakeup benchmark: one token circulates through 64
/// slots, each slot guarded by its *own* mailbox cell (a shared token
/// cell would republish every cycle and wake all 64 sleepers). Per
/// cycle exactly one rule can fire, so the reference scheduler evaluates
/// 64 guards per cycle while the fast scheduler's wakeup layer evaluates
/// ~2 (the firing rule plus the freshly woken successor) — the sparse
/// schedule the wakeup layer exists for.
const RING: usize = 64;
const RING_CYCLES: u64 = 20_000;

struct Ring {
    slots: Vec<Ehr<u64>>,
}

fn build_ring(mode: SchedulerMode) -> Sim<Ring> {
    let clk = Clock::new();
    let slots = (0..RING)
        .map(|i| Ehr::new(&clk, u64::from(i == 0)))
        .collect();
    let mut sim = Sim::new(clk, Ring { slots });
    sim.set_scheduler(mode);
    // Register consumers before their producers (descending slot order) so
    // a slot's mailbox write only becomes readable the following cycle and
    // the token advances exactly one slot per cycle (the slot63→slot0
    // wraparound bypasses within the cycle, identically in both modes).
    for i in (0..RING).rev() {
        let next = (i + 1) % RING;
        let id = sim.rule(format!("slot{i}"), move |s: &mut Ring| {
            let tokens = s.slots[i].read();
            if tokens == 0 {
                return Err(Stall::new("no token"));
            }
            s.slots[i].write(0);
            s.slots[next].update(|t| *t += tokens);
            Ok(())
        });
        sim.set_wakeup(id, Wakeup::Inferred);
    }
    sim
}

/// Best-of-`reps` wall seconds for a `RING_CYCLES`-cycle ring run, plus
/// the total rule firings (the cross-mode equivalence checksum).
fn time_ring(mode: SchedulerMode, reps: usize) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut fires = 0;
    for _ in 0..reps {
        let mut sim = build_ring(mode);
        let t0 = Instant::now();
        sim.run(RING_CYCLES);
        best = best.min(t0.elapsed().as_secs_f64());
        fires = sim.all_rule_stats().map(|(_, s)| s.fired).sum();
    }
    (best, fires)
}

fn bench_ring() -> Vec<(&'static str, f64)> {
    let (fast_s, fast_fires) = time_ring(SchedulerMode::Fast, 5);
    let (ref_s, ref_fires) = time_ring(SchedulerMode::Reference, 5);
    assert_eq!(
        fast_fires, ref_fires,
        "ring benchmark diverged between schedulers"
    );
    let cps = |s: f64| RING_CYCLES as f64 / s;
    let speedup = ref_s / fast_s;
    println!(
        "{:<44} {:>12.0} ns/cycle ({:.2e} cycles/s)",
        "ring64_wakeup/reference",
        ref_s * 1e9 / RING_CYCLES as f64,
        cps(ref_s)
    );
    println!(
        "{:<44} {:>12.0} ns/cycle ({:.2e} cycles/s)",
        "ring64_wakeup/fast",
        fast_s * 1e9 / RING_CYCLES as f64,
        cps(fast_s)
    );
    println!("[speedup] ring64_wakeup fast vs reference: {speedup:.2}x");
    vec![
        ("ring_sim_cycles", RING_CYCLES as f64),
        ("ring_fires", fast_fires as f64),
        ("ring_reference_wall_ms", ref_s * 1e3),
        ("ring_fast_wall_ms", fast_s * 1e3),
        ("ring_reference_cps", cps(ref_s)),
        ("ring_fast_cps", cps(fast_s)),
        ("ring_speedup", speedup),
    ]
}

/// With any profiling flag present, re-runs the ring under the fast
/// scheduler with the causal profiler on. The ring's rules sleep on
/// inferred watch sets, so the publish→wake causality edges — and hence
/// per-window critical paths — are populated here (unlike on the SoC,
/// whose rules never sleep).
fn profile_ring() {
    let opts = riscy_bench::profile_opts();
    if !opts.enabled() {
        return;
    }
    let mut sim = build_ring(SchedulerMode::Fast);
    sim.enable_profiling();
    let chrome = opts.chrome_trace.as_ref().map(|_| {
        let t = std::rc::Rc::new(std::cell::RefCell::new(ChromeTrace::new()));
        sim.set_tracer(Tracer::new(t.clone()));
        t
    });
    sim.run(RING_CYCLES);
    println!("\n=== causal profile: ring64_wakeup ===");
    print!("{}", sim.report());
    for (window, names) in sim.critical_path_names().iter().rev().take(3).rev() {
        println!("critical path (window {window}): {}", names.join(" -> "));
    }
    if let Some(path) = &opts.profile_json {
        riscy_bench::write_artifact(path, &sim.profile_json());
    }
    if let Some((path, t)) = opts.chrome_trace.as_ref().zip(chrome) {
        riscy_bench::write_artifact(path, &t.borrow_mut().finish_json());
    }
}

fn main() {
    bench_gcd();
    bench_iq_orderings();
    bench_scheduler_overhead();
    let ring_metrics = bench_ring();
    if let Some(path) = bench_json_path() {
        // Wall-clock numbers go into the *bench* artifact (not the stats
        // one): the perf gate compares the host-neutral speedup ratio and
        // the exact firing counts, not raw nanoseconds.
        write_artifact(&path, &metrics_json(&ring_metrics));
    }
    if let Some(path) = stats_json_path() {
        // Only the architectural cycle counts go into the artifact:
        // wall-clock numbers vary run to run and would make the JSON
        // useless for regression comparison.
        let chain = dependent_chain(48);
        let cycles = |ordering| {
            run_iq_demo(
                IqDemoConfig {
                    ordering,
                    ..IqDemoConfig::default()
                },
                &chain,
            )
            .unwrap()
            .cycles as f64
        };
        let json = metrics_json(&[
            (
                "iq_issue_before_wakeup_cycles",
                cycles(IqOrdering::IssueBeforeWakeup),
            ),
            (
                "iq_wakeup_before_issue_cycles",
                cycles(IqOrdering::WakeupBeforeIssue),
            ),
        ]);
        write_artifact(&path, &json);
    }
    profile_ring();
}
