//! Micro-benchmarks of the CMD kernel and the paper's §III/§IV tutorial
//! designs — the ablations DESIGN.md calls out:
//!
//! * `mkGCD` vs `mkTwoGCD` throughput (paper §III-B);
//! * bypassed vs non-bypassed RDYB (paper §IV-C);
//! * `issue<wakeup` vs `wakeup<issue` IQ orderings (paper §IV-D);
//! * raw scheduler overhead per rule firing;
//! * the ring-of-64 wakeup benchmark: fast scheduler vs the reference
//!   one-rule-at-a-time oracle (see `docs/SCHEDULING.md`), the workload
//!   behind the CI perf gate's `--bench-json` artifact.
//!
//! A dependency-free harness (simple best-of-N wall-clock timing with
//! `std::time::Instant`) replaces criterion: the container builds offline,
//! and the quantities of interest here are architectural cycle counts plus
//! coarse host-time ratios, not microsecond-precision distributions.

use cmd_core::demo::gcd::{stream_gcd, Gcd, TwoGcd};
use cmd_core::demo::iq::{dependent_chain, run_iq_demo, IqDemoConfig, IqOrdering, RdybKind};
use cmd_core::prelude::*;
use riscy_bench::{bench_json_path, metrics_json, stats_json_path, write_artifact};
use std::hint::black_box;
use std::time::Instant;

/// Best-of-`reps` wall time for `f`, in nanoseconds per call.
fn bench<R>(label: &str, reps: usize, iters: u32, mut f: impl FnMut() -> R) {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let dt = t0.elapsed().as_secs_f64() / f64::from(iters);
        best = best.min(dt);
    }
    println!("{label:<44} {:>12.0} ns/iter", best * 1e9);
}

fn bench_gcd() {
    let inputs: Vec<(u32, u32)> = (0..16).map(|i| (5040 + i, 7 + i)).collect();
    bench("gcd_throughput/mkGCD", 5, 50, || {
        let clk = Clock::new();
        let unit = Gcd::new(&clk);
        stream_gcd(clk, unit, inputs.clone())
    });
    bench("gcd_throughput/mkTwoGCD", 5, 50, || {
        let clk = Clock::new();
        let unit = TwoGcd::new(&clk);
        stream_gcd(clk, unit, inputs.clone())
    });
}

fn bench_iq_orderings() {
    let chain = dependent_chain(48);
    for (label, cfg) in [
        (
            "iq_rdyb_cm_ablation/bypassed_issue_before_wakeup",
            IqDemoConfig {
                rdyb: RdybKind::Bypassed,
                ordering: IqOrdering::IssueBeforeWakeup,
                iq_size: 8,
            },
        ),
        (
            "iq_rdyb_cm_ablation/bypassed_wakeup_before_issue",
            IqDemoConfig {
                rdyb: RdybKind::Bypassed,
                ordering: IqOrdering::WakeupBeforeIssue,
                iq_size: 8,
            },
        ),
        (
            "iq_rdyb_cm_ablation/nonbypassed_issue_before_wakeup",
            IqDemoConfig {
                rdyb: RdybKind::NonBypassed,
                ordering: IqOrdering::IssueBeforeWakeup,
                iq_size: 8,
            },
        ),
    ] {
        bench(label, 5, 20, || run_iq_demo(cfg, &chain).unwrap());
    }

    // Also print the architectural cycle counts (the paper's point is
    // about *cycles*, not host time).
    for (label, cfg) in [
        ("issue<wakeup (IV-C)", IqOrdering::IssueBeforeWakeup),
        ("wakeup<issue (IV-D)", IqOrdering::WakeupBeforeIssue),
    ] {
        let stats = run_iq_demo(
            IqDemoConfig {
                ordering: cfg,
                ..IqDemoConfig::default()
            },
            &chain,
        )
        .unwrap();
        println!(
            "[cycles] {label}: {} cycles for 48 dependent ops",
            stats.cycles
        );
    }
}

fn bench_scheduler_overhead() {
    struct St {
        x: Ehr<u64>,
        q: PipelineFifo<u64>,
    }
    let clk = Clock::new();
    let st = St {
        x: Ehr::new(&clk, 0),
        q: PipelineFifo::new(&clk, 4),
    };
    let mut sim = Sim::new(clk, st);
    sim.rule("deq", |s: &mut St| {
        let v = s.q.deq()?;
        s.x.update(|x| *x += v);
        Ok(())
    });
    sim.rule("enq", |s: &mut St| s.q.enq(1));
    bench("scheduler_rule_firing (100 cycles)", 5, 200, || {
        sim.run(100);
        sim.state().x.read()
    });
}

/// The ring-of-64 wakeup benchmark: one token circulates through 64
/// slots, each slot guarded by its *own* mailbox cell (a shared token
/// cell would republish every cycle and wake all 64 sleepers). Per
/// cycle exactly one rule can fire, so the reference scheduler evaluates
/// 64 guards per cycle while the fast scheduler's wakeup layer evaluates
/// ~2 (the firing rule plus the freshly woken successor) — the sparse
/// schedule the wakeup layer exists for.
const RING: usize = 64;
const RING_CYCLES: u64 = 20_000;

struct Ring {
    slots: Vec<Ehr<u64>>,
}

fn build_ring(mode: SchedulerMode) -> Sim<Ring> {
    let clk = Clock::new();
    let slots = (0..RING)
        .map(|i| Ehr::new(&clk, u64::from(i == 0)))
        .collect();
    let mut sim = Sim::new(clk, Ring { slots });
    sim.set_scheduler(mode);
    // Register consumers before their producers (descending slot order) so
    // a slot's mailbox write only becomes readable the following cycle and
    // the token advances exactly one slot per cycle (the slot63→slot0
    // wraparound bypasses within the cycle, identically in both modes).
    for i in (0..RING).rev() {
        let next = (i + 1) % RING;
        let id = sim.rule(format!("slot{i}"), move |s: &mut Ring| {
            let tokens = s.slots[i].read();
            if tokens == 0 {
                return Err(Stall::new("no token"));
            }
            s.slots[i].write(0);
            s.slots[next].update(|t| *t += tokens);
            Ok(())
        });
        sim.set_wakeup(id, Wakeup::Inferred);
    }
    sim
}

/// Interleaved best-of-`rounds` timing: each round runs every mode once,
/// so machine-frequency drift lands on all modes equally instead of
/// skewing the speedup ratios (block-per-mode timing was worth ±30% on
/// the ratio on a busy host). Returns per-mode best wall seconds plus
/// each mode's total rule firings (the cross-mode equivalence checksum).
fn time_modes<S>(
    build: impl Fn(SchedulerMode) -> Sim<S>,
    cycles: u64,
    modes: &[SchedulerMode],
    rounds: usize,
) -> (Vec<f64>, Vec<u64>) {
    let mut best = vec![f64::INFINITY; modes.len()];
    let mut fires = vec![0u64; modes.len()];
    for _ in 0..rounds {
        for (k, &mode) in modes.iter().enumerate() {
            let mut sim = build(mode);
            let t0 = Instant::now();
            sim.run(cycles);
            best[k] = best[k].min(t0.elapsed().as_secs_f64());
            fires[k] = sim.all_rule_stats().map(|(_, s)| s.fired).sum();
        }
    }
    (best, fires)
}

fn bench_ring() -> Vec<(&'static str, f64)> {
    let (times, fires) = time_modes(
        build_ring,
        RING_CYCLES,
        &[SchedulerMode::Fast, SchedulerMode::Reference],
        5,
    );
    let (fast_s, ref_s) = (times[0], times[1]);
    let (fast_fires, ref_fires) = (fires[0], fires[1]);
    assert_eq!(
        fast_fires, ref_fires,
        "ring benchmark diverged between schedulers"
    );
    let cps = |s: f64| RING_CYCLES as f64 / s;
    let speedup = ref_s / fast_s;
    println!(
        "{:<44} {:>12.0} ns/cycle ({:.2e} cycles/s)",
        "ring64_wakeup/reference",
        ref_s * 1e9 / RING_CYCLES as f64,
        cps(ref_s)
    );
    println!(
        "{:<44} {:>12.0} ns/cycle ({:.2e} cycles/s)",
        "ring64_wakeup/fast",
        fast_s * 1e9 / RING_CYCLES as f64,
        cps(fast_s)
    );
    println!("[speedup] ring64_wakeup fast vs reference: {speedup:.2}x");
    vec![
        ("ring_sim_cycles", RING_CYCLES as f64),
        ("ring_fires", fast_fires as f64),
        ("ring_reference_wall_ms", ref_s * 1e3),
        ("ring_fast_wall_ms", fast_s * 1e3),
        ("ring_reference_cps", cps(ref_s)),
        ("ring_fast_cps", cps(fast_s)),
        ("ring_speedup", speedup),
    ]
}

/// The fig17-shaped wakeup microbench: 44 CM-free rules with the same
/// *shape* as a one-busy-core slice of the RiscyOO SoC in
/// `crates/ooo/src/soc.rs` — an always-firing substrate that advances
/// plain memory state and pokes a `mem_event` signal cell when its
/// observable digest changes, a saturated 8-rule pipeline that fires
/// every cycle (the part of the SoC the wakeup layer cannot help), a
/// load unit blocked on a multi-cycle miss latency
/// (`Wakeup::InferredPlus(mem_event)`, asleep for the whole latency
/// window), and thirty-two rarely-fed side units (`Wakeup::Inferred`,
/// asleep almost always — the MD/FP pipes and quiescent-core machinery
/// of the other cores during a memory-bound phase). The live:asleep
/// ratio (~9:35) matches what the wakeup layer is designed for;
/// Reference evaluates all 44 guards every cycle, Fast/Compiled only
/// the live ones — so a scheduler regression in sleep entry, wake
/// draining, or wave skipping shows up here in milliseconds instead of
/// a 30-second fig17 run.
const SOCW_CYCLES: u64 = 20_000;
const SOCW_MISS_LAT: u32 = 32;
const SOCW_MD_UNITS: usize = 32;

struct SocW {
    clk: Clock,
    // Hot pipeline: acc[k] feeds acc[k+1]; all 8 stage rules fire every
    // cycle, like rename/issue/exec on a saturated trace.
    acc: Vec<Ehr<u64>>,
    // One in-flight load: ld_q -> (plain-state latency) -> wb_q.
    ld_q: PipelineFifo<u64>,
    wb_q: PipelineFifo<u64>,
    mem_busy: u32,
    mem_ready: bool,
    mem_addr: u64,
    mem_digest: u64,
    mem_event: CellId,
    // Rarely-fed side units (think MD/FP pipes): mailbox per unit.
    md_req: Vec<Ehr<u64>>,
    md_done: Ehr<u64>,
    completed: u64,
}

fn build_socw(mode: SchedulerMode) -> Sim<SocW> {
    let clk = Clock::new();
    let st = SocW {
        acc: (0..9).map(|i| Ehr::new(&clk, u64::from(i == 0))).collect(),
        ld_q: PipelineFifo::new(&clk, 4),
        wb_q: PipelineFifo::new(&clk, 4),
        mem_busy: 0,
        mem_ready: false,
        mem_addr: 0,
        mem_digest: u64::MAX,
        mem_event: clk.signal_cell(),
        md_req: (0..SOCW_MD_UNITS).map(|_| Ehr::new(&clk, 0)).collect(),
        md_done: Ehr::new(&clk, 0),
        completed: 0,
        clk: clk.clone(),
    };
    let mut sim = Sim::new(clk, st);
    sim.set_scheduler(mode);
    // Substrate first, exactly like the SoC: the memory system's clock. It
    // always fires and republishes the plain observables (busy/ready) as a
    // digest, poking `mem_event` only on change — the latency countdown
    // itself publishes nothing, so the load unit sleeps through the window.
    sim.rule("substrate", |s: &mut SocW| {
        if s.mem_busy > 0 {
            s.mem_busy -= 1;
            if s.mem_busy == 0 {
                s.mem_ready = true;
            }
        }
        let digest = u64::from(s.mem_busy > 0) | u64::from(s.mem_ready) << 1;
        if digest != s.mem_digest {
            s.mem_digest = digest;
            s.clk.poke(s.mem_event);
        }
        Ok(())
    });
    // Load unit: guards read the plain memory state, so both rules are
    // `InferredPlus(mem_event)` — the digest poke is their wake signal.
    let id = sim.rule("ldIssue", |s: &mut SocW| {
        if s.mem_busy > 0 || s.mem_ready {
            return Err(Stall::new("mem busy"));
        }
        let addr = s.ld_q.deq()?;
        s.mem_busy = SOCW_MISS_LAT;
        s.mem_addr = addr;
        Ok(())
    });
    let mem_event = sim.state().mem_event;
    sim.set_wakeup(id, Wakeup::InferredPlus(vec![mem_event]));
    let id = sim.rule("ldResp", |s: &mut SocW| {
        if !s.mem_ready {
            return Err(Stall::new("no mem resp"));
        }
        s.wb_q.enq(s.mem_addr)?;
        s.mem_ready = false;
        Ok(())
    });
    sim.set_wakeup(id, Wakeup::InferredPlus(vec![mem_event]));
    // Writeback: completes the load, refills the load queue (one miss in
    // flight forever), and feeds a side unit every 8th completion.
    let id = sim.rule("wbLd", |s: &mut SocW| {
        let addr = s.wb_q.deq()?;
        s.ld_q.enq(addr.wrapping_add(64))?;
        s.completed += 1;
        if s.completed.is_multiple_of(8) {
            let i = (s.completed / 8) as usize % SOCW_MD_UNITS;
            s.md_req[i].update(|v| *v += 1);
        }
        Ok(())
    });
    sim.set_wakeup(id, Wakeup::Inferred);
    // The saturated pipeline: 8 always-firing stages.
    for k in 0..8 {
        sim.rule(format!("stage{k}"), move |s: &mut SocW| {
            let v = s.acc[k].read();
            s.acc[k + 1].update(|x| *x = x.wrapping_add(v));
            Ok(())
        });
    }
    // The side units, each watching its own mailbox; fed once per 8
    // completed loads, round-robin, so each sleeps for thousands of cycles.
    for i in 0..SOCW_MD_UNITS {
        let id = sim.rule(format!("md{i}"), move |s: &mut SocW| {
            let n = s.md_req[i].read();
            if n == 0 {
                return Err(Stall::new("no md op"));
            }
            s.md_req[i].write(0);
            s.md_done.update(|v| *v += n);
            Ok(())
        });
        sim.set_wakeup(id, Wakeup::Inferred);
    }
    // Prime the load loop (outside any rule, the write applies
    // immediately — the kernel's reset-value idiom).
    sim.state_mut().ld_q.enq(0).expect("prime ld_q");
    sim
}

fn bench_socw() -> Vec<(&'static str, f64)> {
    let (times, fires) = time_modes(
        build_socw,
        SOCW_CYCLES,
        &[
            SchedulerMode::Reference,
            SchedulerMode::Fast,
            SchedulerMode::Compiled,
            SchedulerMode::Parallel,
        ],
        7,
    );
    let (ref_s, fast_s, comp_s, par_s) = (times[0], times[1], times[2], times[3]);
    let (ref_fires, fast_fires, comp_fires, par_fires) = (fires[0], fires[1], fires[2], fires[3]);
    assert_eq!(fast_fires, ref_fires, "socw diverged: fast vs reference");
    assert_eq!(
        comp_fires, ref_fires,
        "socw diverged: compiled vs reference"
    );
    assert_eq!(par_fires, ref_fires, "socw diverged: parallel vs reference");
    let cps = |s: f64| SOCW_CYCLES as f64 / s;
    for (label, s) in [
        ("soc_wakeup/reference", ref_s),
        ("soc_wakeup/fast", fast_s),
        ("soc_wakeup/compiled", comp_s),
        ("soc_wakeup/parallel", par_s),
    ] {
        println!(
            "{label:<44} {:>12.0} ns/cycle ({:.2e} cycles/s)",
            s * 1e9 / SOCW_CYCLES as f64,
            cps(s)
        );
    }
    println!(
        "[speedup] soc_wakeup compiled vs reference: {:.2}x (fast {:.2}x, parallel {:.2}x)",
        ref_s / comp_s,
        ref_s / fast_s,
        ref_s / par_s
    );
    // Wave occupancy under the parallel discipline (see
    // `docs/PARALLELISM.md`): how much same-wave width the conflict matrix
    // actually exposes on this design.
    let mut psim = build_socw(SchedulerMode::Parallel);
    psim.run(SOCW_CYCLES);
    let par = psim.parallelism_report();
    println!(
        "[occupancy] soc_wakeup parallel: {} waves executed, {} skipped, \
         mean width {:.1}, widest {}",
        par.waves_executed,
        par.waves_skipped,
        par.mean_wave_width(),
        par.widest_wave
    );
    vec![
        ("socw_sim_cycles", SOCW_CYCLES as f64),
        ("socw_fires", fast_fires as f64),
        ("socw_reference_wall_ms", ref_s * 1e3),
        ("socw_fast_wall_ms", fast_s * 1e3),
        ("socw_compiled_wall_ms", comp_s * 1e3),
        ("socw_parallel_wall_ms", par_s * 1e3),
        ("socw_reference_cps", cps(ref_s)),
        ("socw_fast_cps", cps(fast_s)),
        ("socw_compiled_cps", cps(comp_s)),
        ("socw_parallel_cps", cps(par_s)),
        ("socw_fast_speedup", ref_s / fast_s),
        ("socw_speedup", ref_s / comp_s),
        ("socw_parallel_speedup", ref_s / par_s),
    ]
}

/// With any profiling flag present, re-runs the ring under the fast
/// scheduler with the causal profiler on. The ring's rules sleep on
/// inferred watch sets, so the publish→wake causality edges — and hence
/// per-window critical paths — are populated here (unlike on the SoC,
/// whose rules never sleep).
fn profile_ring() {
    let opts = riscy_bench::profile_opts();
    if !opts.enabled() {
        return;
    }
    let mut sim = build_ring(SchedulerMode::Fast);
    sim.enable_profiling();
    let chrome = opts.chrome_trace.as_ref().map(|_| {
        let t = std::rc::Rc::new(std::cell::RefCell::new(ChromeTrace::new()));
        sim.set_tracer(Tracer::new(t.clone()));
        t
    });
    sim.run(RING_CYCLES);
    println!("\n=== causal profile: ring64_wakeup ===");
    print!("{}", sim.report());
    for (window, names) in sim.critical_path_names().iter().rev().take(3).rev() {
        println!("critical path (window {window}): {}", names.join(" -> "));
    }
    if let Some(path) = &opts.profile_json {
        riscy_bench::write_artifact(path, &sim.profile_json());
    }
    if let Some((path, t)) = opts.chrome_trace.as_ref().zip(chrome) {
        riscy_bench::write_artifact(path, &t.borrow_mut().finish_json());
    }
}

fn main() {
    bench_gcd();
    bench_iq_orderings();
    bench_scheduler_overhead();
    let mut ring_metrics = bench_ring();
    ring_metrics.extend(bench_socw());
    if let Some(path) = bench_json_path() {
        // Wall-clock numbers go into the *bench* artifact (not the stats
        // one): the perf gate compares the host-neutral speedup ratios and
        // the exact firing counts, not raw nanoseconds.
        write_artifact(&path, &metrics_json(&ring_metrics));
    }
    if let Some(path) = stats_json_path() {
        // Only the architectural cycle counts go into the artifact:
        // wall-clock numbers vary run to run and would make the JSON
        // useless for regression comparison.
        let chain = dependent_chain(48);
        let cycles = |ordering| {
            run_iq_demo(
                IqDemoConfig {
                    ordering,
                    ..IqDemoConfig::default()
                },
                &chain,
            )
            .unwrap()
            .cycles as f64
        };
        let json = metrics_json(&[
            (
                "iq_issue_before_wakeup_cycles",
                cycles(IqOrdering::IssueBeforeWakeup),
            ),
            (
                "iq_wakeup_before_issue_cycles",
                cycles(IqOrdering::WakeupBeforeIssue),
            ),
        ]);
        write_artifact(&path, &json);
    }
    profile_ring();
}
