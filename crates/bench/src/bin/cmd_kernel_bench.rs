//! Micro-benchmarks of the CMD kernel and the paper's §III/§IV tutorial
//! designs — the ablations DESIGN.md calls out:
//!
//! * `mkGCD` vs `mkTwoGCD` throughput (paper §III-B);
//! * bypassed vs non-bypassed RDYB (paper §IV-C);
//! * `issue<wakeup` vs `wakeup<issue` IQ orderings (paper §IV-D);
//! * raw scheduler overhead per rule firing.
//!
//! A dependency-free harness (simple best-of-N wall-clock timing with
//! `std::time::Instant`) replaces criterion: the container builds offline,
//! and the quantities of interest here are architectural cycle counts plus
//! coarse host-time ratios, not microsecond-precision distributions.

use cmd_core::demo::gcd::{stream_gcd, Gcd, TwoGcd};
use cmd_core::demo::iq::{dependent_chain, run_iq_demo, IqDemoConfig, IqOrdering, RdybKind};
use cmd_core::prelude::*;
use riscy_bench::{metrics_json, stats_json_path, write_artifact};
use std::hint::black_box;
use std::time::Instant;

/// Best-of-`reps` wall time for `f`, in nanoseconds per call.
fn bench<R>(label: &str, reps: usize, iters: u32, mut f: impl FnMut() -> R) {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let dt = t0.elapsed().as_secs_f64() / f64::from(iters);
        best = best.min(dt);
    }
    println!("{label:<44} {:>12.0} ns/iter", best * 1e9);
}

fn bench_gcd() {
    let inputs: Vec<(u32, u32)> = (0..16).map(|i| (5040 + i, 7 + i)).collect();
    bench("gcd_throughput/mkGCD", 5, 50, || {
        let clk = Clock::new();
        let unit = Gcd::new(&clk);
        stream_gcd(clk, unit, inputs.clone())
    });
    bench("gcd_throughput/mkTwoGCD", 5, 50, || {
        let clk = Clock::new();
        let unit = TwoGcd::new(&clk);
        stream_gcd(clk, unit, inputs.clone())
    });
}

fn bench_iq_orderings() {
    let chain = dependent_chain(48);
    for (label, cfg) in [
        (
            "iq_rdyb_cm_ablation/bypassed_issue_before_wakeup",
            IqDemoConfig {
                rdyb: RdybKind::Bypassed,
                ordering: IqOrdering::IssueBeforeWakeup,
                iq_size: 8,
            },
        ),
        (
            "iq_rdyb_cm_ablation/bypassed_wakeup_before_issue",
            IqDemoConfig {
                rdyb: RdybKind::Bypassed,
                ordering: IqOrdering::WakeupBeforeIssue,
                iq_size: 8,
            },
        ),
        (
            "iq_rdyb_cm_ablation/nonbypassed_issue_before_wakeup",
            IqDemoConfig {
                rdyb: RdybKind::NonBypassed,
                ordering: IqOrdering::IssueBeforeWakeup,
                iq_size: 8,
            },
        ),
    ] {
        bench(label, 5, 20, || run_iq_demo(cfg, &chain).unwrap());
    }

    // Also print the architectural cycle counts (the paper's point is
    // about *cycles*, not host time).
    for (label, cfg) in [
        ("issue<wakeup (IV-C)", IqOrdering::IssueBeforeWakeup),
        ("wakeup<issue (IV-D)", IqOrdering::WakeupBeforeIssue),
    ] {
        let stats = run_iq_demo(
            IqDemoConfig {
                ordering: cfg,
                ..IqDemoConfig::default()
            },
            &chain,
        )
        .unwrap();
        println!("[cycles] {label}: {} cycles for 48 dependent ops", stats.cycles);
    }
}

fn bench_scheduler_overhead() {
    struct St {
        x: Ehr<u64>,
        q: PipelineFifo<u64>,
    }
    let clk = Clock::new();
    let st = St {
        x: Ehr::new(&clk, 0),
        q: PipelineFifo::new(&clk, 4),
    };
    let mut sim = Sim::new(clk, st);
    sim.rule("deq", |s: &mut St| {
        let v = s.q.deq()?;
        s.x.update(|x| *x += v);
        Ok(())
    });
    sim.rule("enq", |s: &mut St| s.q.enq(1));
    bench("scheduler_rule_firing (100 cycles)", 5, 200, || {
        sim.run(100);
        sim.state().x.read()
    });
}

fn main() {
    bench_gcd();
    bench_iq_orderings();
    bench_scheduler_overhead();
    if let Some(path) = stats_json_path() {
        // Only the architectural cycle counts go into the artifact:
        // wall-clock numbers vary run to run and would make the JSON
        // useless for regression comparison.
        let chain = dependent_chain(48);
        let cycles = |ordering| {
            run_iq_demo(
                IqDemoConfig {
                    ordering,
                    ..IqDemoConfig::default()
                },
                &chain,
            )
            .unwrap()
            .cycles as f64
        };
        let json = metrics_json(&[
            ("iq_issue_before_wakeup_cycles", cycles(IqOrdering::IssueBeforeWakeup)),
            ("iq_wakeup_before_issue_cycles", cycles(IqOrdering::WakeupBeforeIssue)),
        ]);
        write_artifact(&path, &json);
    }
}
