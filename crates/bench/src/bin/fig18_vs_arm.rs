//! Regenerates paper Fig. 18: commercial-ARM proxies (A57, Denver)
//! normalized to RiscyOO-T+.
//!
//! The proxies are wider OOO configurations standing in for silicon (see
//! DESIGN.md); the reproduction target is the *shape*: the wide cores win
//! on average, but RiscyOO-T+ catches up or wins on the TLB-bound
//! benchmarks (mcf, astar, omnetpp) thanks to its TLB optimizations.

use cmd_core::sched::SchedulerMode;
use riscy_bench::{
    geomean, maybe_profile_run, maybe_telemetry_run, results_json, run_ooo, scale_from_args,
    stats_json_path, write_artifact,
};
use riscy_ooo::config::{mem_arm_proxy, mem_riscyoo_b, CoreConfig};
use riscy_workloads::spec::spec_suite;

fn main() {
    let scale = scale_from_args();
    println!("=== Fig. 18: A57/Denver proxies normalized to RiscyOO-T+ ===");
    println!("(paper: A57 ≈ +34%, Denver ≈ +45% on average; T+ wins mcf/astar/omnetpp)\n");
    println!("{:<14}{:>12}{:>12}", "benchmark", "A57", "Denver");
    let (mut a57s, mut denvers) = (Vec::new(), Vec::new());
    let (mut ts, mut ars, mut drs) = (Vec::new(), Vec::new(), Vec::new());
    for w in spec_suite(scale) {
        let t = run_ooo(CoreConfig::riscyoo_t_plus(), mem_riscyoo_b(), &w);
        let a57 = run_ooo(CoreConfig::a57_proxy(), mem_arm_proxy(), &w);
        let den = run_ooo(CoreConfig::denver_proxy(), mem_arm_proxy(), &w);
        let ra = t.roi_cycles as f64 / a57.roi_cycles as f64;
        let rd = t.roi_cycles as f64 / den.roi_cycles as f64;
        a57s.push(ra);
        denvers.push(rd);
        println!("{:<14}{:>12.3}{:>12.3}", w.name, ra, rd);
        ts.push(t);
        ars.push(a57);
        drs.push(den);
    }
    println!(
        "{:<14}{:>12.3}{:>12.3}",
        "geo-mean",
        geomean(&a57s),
        geomean(&denvers)
    );
    if let Some(path) = stats_json_path() {
        let json = results_json(&[("RiscyOO-T+", &ts), ("A57", &ars), ("Denver", &drs)]);
        write_artifact(&path, &json);
    }
    if let Some(w) = spec_suite(scale).into_iter().next() {
        maybe_profile_run(
            CoreConfig::riscyoo_t_plus(),
            mem_riscyoo_b(),
            1,
            &w,
            SchedulerMode::default(),
        );
        maybe_telemetry_run(
            CoreConfig::riscyoo_t_plus(),
            mem_riscyoo_b(),
            1,
            &w,
            SchedulerMode::default(),
        );
    }
}
