//! Fleet campaign driver: many independent SoC simulations per process.
//!
//! Enumerates a seed × config × workload grid, runs it on a work-stealing
//! thread pool ([`riscy_bench::fleet`]), and reports aggregate simulation
//! throughput (simulated cycles per host second summed over all workers —
//! the `fleet_agg_cps` metric the CI perf gate floors).
//!
//! ```text
//! fleet [--seeds N] [--configs t+,c-] [--threads N]
//!       [--scheduler reference|fast|compiled|parallel] [--chaos]
//!       [--scale test|ref] [--workloads a,b,...] [--stop-after N]
//!       [--campaign-dir DIR] [--checkpoint-every CYCLES]
//!       [--abort-after-ckpts N] [--report PATH] [--bench-json PATH]
//!       [--heartbeat-every CYCLES] [--unit-timeout SECONDS]
//!       [--telemetry] [--telemetry-window CYCLES] [--telemetry-windows N]
//!       [--watch [--once]]
//! ```
//!
//! With `--campaign-dir`, finished units persist as `unit_<id>.json` and a
//! rerun of the same grid resumes instead of recomputing; the final
//! `--report` bytes are identical either way (see `docs/PARALLELISM.md`
//! §"Fleet campaigns"). Adding `--checkpoint-every N` additionally
//! snapshots each in-flight unit every N simulated cycles as
//! `unit_<id>.ckpt`, so a killed campaign resumes *mid-unit* from the
//! checkpointed cycle instead of replaying the unit (see
//! `docs/CHECKPOINT.md`). `--abort-after-ckpts N` is the CI hook that
//! simulates such a kill right after the Nth checkpoint lands.
//!
//! Monitoring (see `docs/OBSERVABILITY.md` §telemetry):
//! `--heartbeat-every N` streams per-unit progress records into
//! `heartbeats.ndjson`; `--unit-timeout S` bounds each unit's wall time
//! and leaves a `unit_<id>.stall.json` wait-graph bundle behind instead
//! of hanging silently; `--telemetry` writes each unit's windowed
//! time-series as `unit_<id>.telemetry.json`. `fleet --watch
//! --campaign-dir DIR` renders the live campaign status from another
//! terminal (`--once` prints a single snapshot for scripting); finished
//! campaigns aggregate with the `sweep_report` binary.

use std::path::PathBuf;

use riscy_bench::fleet::{fleet_grid, run_fleet, watch_snapshot, FleetOpts, SocFleet};
use riscy_bench::{
    bench_json_path, metrics_json, path_arg, scale_from_args, scheduler_from_args, telemetry_opts,
    write_artifact,
};
use riscy_workloads::spec::spec_suite;

fn main() {
    if std::env::args().any(|a| a == "--watch") {
        let dir = path_arg("--campaign-dir")
            .map(PathBuf::from)
            .expect("fleet --watch: --campaign-dir is required");
        let once = std::env::args().any(|a| a == "--once");
        loop {
            print!("{}", watch_snapshot(&dir));
            if once {
                return;
            }
            std::thread::sleep(std::time::Duration::from_secs(1));
            println!();
        }
    }
    let scale = scale_from_args();
    let sched = scheduler_from_args();
    let seeds: u64 = path_arg("--seeds").map_or(2, |v| {
        v.parse()
            .unwrap_or_else(|_| panic!("--seeds {v}: not a number"))
    });
    let configs: Vec<String> = path_arg("--configs")
        .unwrap_or_else(|| "t+,c-".to_string())
        .split(',')
        .map(str::to_string)
        .collect();
    let threads: usize = path_arg("--threads").map_or_else(
        || std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        |v| {
            v.parse()
                .unwrap_or_else(|_| panic!("--threads {v}: not a number"))
        },
    );
    let chaos = std::env::args().any(|a| a == "--chaos");
    let stop_after = path_arg("--stop-after").map(|v| {
        v.parse()
            .unwrap_or_else(|_| panic!("--stop-after {v}: not a number"))
    });
    let checkpoint_every = path_arg("--checkpoint-every").map(|v| {
        v.parse()
            .unwrap_or_else(|_| panic!("--checkpoint-every {v}: not a number"))
    });
    let abort_after_ckpts = path_arg("--abort-after-ckpts").map(|v| {
        v.parse()
            .unwrap_or_else(|_| panic!("--abort-after-ckpts {v}: not a number"))
    });
    let heartbeat_every = path_arg("--heartbeat-every").map(|v| {
        v.parse()
            .unwrap_or_else(|_| panic!("--heartbeat-every {v}: not a number"))
    });
    let unit_timeout = path_arg("--unit-timeout").map(|v| {
        v.parse()
            .unwrap_or_else(|_| panic!("--unit-timeout {v}: not a number"))
    });
    let telemetry = std::env::args().any(|a| a == "--telemetry").then(|| {
        let t = telemetry_opts();
        (t.window, t.max_windows)
    });

    let mut workloads = spec_suite(scale);
    if let Some(filter) = path_arg("--workloads") {
        let keep: Vec<&str> = filter.split(',').collect();
        workloads.retain(|w| keep.contains(&w.name));
        assert!(
            !workloads.is_empty(),
            "--workloads {filter}: nothing matched"
        );
    }

    let seed_list: Vec<u64> = (0..seeds).collect();
    let config_refs: Vec<&str> = configs.iter().map(String::as_str).collect();
    let workload_refs: Vec<&riscy_workloads::spec::Workload> = workloads.iter().collect();
    let units = fleet_grid(&seed_list, &config_refs, &workload_refs);
    println!(
        "fleet: {} units ({} seeds x {} configs x {} workloads), {} threads, sched {sched:?}{}",
        units.len(),
        seeds,
        configs.len(),
        workloads.len(),
        threads,
        if chaos { ", chaos on" } else { "" },
    );

    let harness = SocFleet {
        workloads: workloads.clone(),
        sched,
        chaos,
    };
    let opts = FleetOpts {
        threads,
        campaign_dir: path_arg("--campaign-dir").map(PathBuf::from),
        stop_after,
        checkpoint_every,
        abort_after_ckpts,
        heartbeat_every,
        unit_timeout,
        telemetry,
    };
    let report = run_fleet(units, &opts, |u, ctx| harness.run_unit(u, ctx));

    println!(
        "\n{:<4} {:>6} {:<4} {:<14} {:>12} {:>12} {:>5}",
        "id", "seed", "cfg", "workload", "cycles", "insts", "ok"
    );
    for r in &report.records {
        println!(
            "{:<4} {:>6} {:<4} {:<14} {:>12} {:>12} {:>5}{}",
            r.unit.id,
            r.unit.seed,
            r.unit.config,
            r.unit.workload,
            r.stats.cycles,
            r.stats.insts,
            r.stats.exit_ok,
            if r.resumed { "  (resumed)" } else { "" },
        );
    }
    println!(
        "\nfleet: {} units done ({} resumed), {} steals, {:.2}s wall{}",
        report.records.len(),
        report.records.iter().filter(|r| r.resumed).count(),
        report.steals,
        report.wall_s,
        if report.stopped_early {
            " [stopped early]"
        } else {
            ""
        },
    );
    println!(
        "fleet: {:.0} simulated cycles executed, aggregate {:.0} cycles/s",
        report.fresh_cycles() as f64,
        report.agg_cps(),
    );

    if let Some(path) = path_arg("--report") {
        write_artifact(&path, &report.deterministic_json());
    }
    if let Some(path) = bench_json_path() {
        let metrics = [
            ("fleet_agg_cps", report.agg_cps()),
            ("fleet_sim_cycles_total", report.total_cycles() as f64),
            ("fleet_units", report.records.len() as f64),
            ("fleet_threads", report.threads as f64),
            ("fleet_steals", report.steals as f64),
            ("fleet_wall_ms", report.wall_s * 1e3),
        ];
        write_artifact(&path, &metrics_json(&metrics));
    }
}
