//! Regenerates paper Fig. 17: RiscyOO-C-, Rocket-10, and Rocket-120
//! normalized to RiscyOO-T+ (the out-of-order vs in-order comparison).

use cmd_core::sched::SchedulerMode;
use riscy_baseline::InOrderConfig;
use riscy_bench::fleet::{fleet_grid, run_fleet, FleetOpts, SocFleet};
use riscy_bench::{
    bench_json_path, geomean, maybe_profile_run, maybe_telemetry_run, metrics_json, results_json,
    run_inorder, run_ooo_with_scheduler, scale_from_args, scheduler_from_args, stats_json_path,
    write_artifact,
};
use riscy_ooo::config::{mem_riscyoo_b, mem_riscyoo_c_minus, CoreConfig};
use riscy_workloads::spec::{spec_suite, Scale, Workload};
use std::time::Instant;

const TIMED_MODES: [SchedulerMode; 4] = [
    SchedulerMode::Fast,
    SchedulerMode::Compiled,
    SchedulerMode::Parallel,
    SchedulerMode::Reference,
];

/// Times the whole T+ suite under all four schedulers, interleaved per
/// workload (each workload runs back-to-back under every mode, twice,
/// keeping the per-mode minimum) so host-frequency drift lands on all
/// modes equally instead of skewing the speedup ratios — single-rep
/// block-per-mode timing was worth ±10% on the ratio on a busy host.
/// Returns per-mode wall seconds and total ROI cycles in [`TIMED_MODES`]
/// order; the cycle totals double as the cross-scheduler determinism
/// checksum the perf gate verifies.
fn time_suite(scale: Scale) -> ([f64; 4], [u64; 4]) {
    const ROUNDS: usize = 2;
    let mut secs = [0.0f64; 4];
    let mut cycles = [0u64; 4];
    for w in spec_suite(scale) {
        let mut best = [f64::INFINITY; 4];
        for round in 0..ROUNDS {
            for (k, &mode) in TIMED_MODES.iter().enumerate() {
                let t0 = Instant::now();
                let c =
                    run_ooo_with_scheduler(CoreConfig::riscyoo_t_plus(), mem_riscyoo_b(), &w, mode)
                        .roi_cycles;
                best[k] = best[k].min(t0.elapsed().as_secs_f64());
                if round == 0 {
                    cycles[k] += c;
                }
            }
        }
        for k in 0..4 {
            secs[k] += best[k];
        }
    }
    (secs, cycles)
}

/// Wall seconds to run the whole T+ suite as a fleet of independent
/// units on `threads` workers (see `docs/PARALLELISM.md` §"Fleet
/// campaigns"). The 1-thread vs N-thread ratio is `fig17_parallel_speedup`:
/// the scale-out half of the parallelism story, measured on the same
/// suite the per-mode timings above use.
fn time_fleet(scale: Scale, threads: usize) -> f64 {
    let suite = spec_suite(scale);
    let refs: Vec<&Workload> = suite.iter().collect();
    let units = fleet_grid(&[0], &["t+"], &refs);
    let harness = SocFleet {
        workloads: suite.clone(),
        sched: SchedulerMode::Parallel,
        chaos: false,
    };
    let opts = FleetOpts {
        threads,
        ..FleetOpts::default()
    };
    run_fleet(units, &opts, |u, ctx| harness.run_unit(u, ctx)).wall_s
}

fn main() {
    let scale = scale_from_args();
    let mode = scheduler_from_args();
    println!("=== Fig. 17: normalized to RiscyOO-T+ (higher is better) ===");
    println!("(paper: T+ beats Rocket-120 by ~319% and Rocket-10 by ~53%)\n");
    println!(
        "{:<14}{:>14}{:>14}{:>14}",
        "benchmark", "RiscyOO-C-", "Rocket-10", "Rocket-120"
    );
    let (mut rc, mut r10, mut r120) = (Vec::new(), Vec::new(), Vec::new());
    let (mut ts, mut cs, mut k10s, mut k120s) = (Vec::new(), Vec::new(), Vec::new(), Vec::new());
    for w in spec_suite(scale) {
        let t = run_ooo_with_scheduler(CoreConfig::riscyoo_t_plus(), mem_riscyoo_b(), &w, mode);
        let c = run_ooo_with_scheduler(
            CoreConfig::riscyoo_t_plus(),
            mem_riscyoo_c_minus(),
            &w,
            mode,
        );
        let k10 = run_inorder(InOrderConfig::rocket(10), &w);
        let k120 = run_inorder(InOrderConfig::rocket(120), &w);
        let n = |x: u64| t.roi_cycles as f64 / x as f64;
        let (a, b, cc) = (n(c.roi_cycles), n(k10.roi_cycles), n(k120.roi_cycles));
        rc.push(a);
        r10.push(b);
        r120.push(cc);
        println!("{:<14}{:>14.3}{:>14.3}{:>14.3}", w.name, a, b, cc);
        ts.push(t);
        cs.push(c);
        k10s.push(k10);
        k120s.push(k120);
    }
    println!(
        "{:<14}{:>14.3}{:>14.3}{:>14.3}",
        "geo-mean",
        geomean(&rc),
        geomean(&r10),
        geomean(&r120)
    );
    if let Some(path) = stats_json_path() {
        let json = results_json(&[
            ("RiscyOO-T+", &ts),
            ("RiscyOO-C-", &cs),
            ("Rocket-10", &k10s),
            ("Rocket-120", &k120s),
        ]);
        write_artifact(&path, &json);
    }
    if let Some(path) = bench_json_path() {
        // Perf-gate artifact: the T+ suite timed under all four
        // schedulers. SoC rules carry real wakeup policies (see `soc.rs`),
        // so Fast/Compiled/Parallel skip sleeping rules; Compiled and
        // Parallel additionally run the branch-free plain dispatch lane.
        // The gate enforces exact cycle equality across the four modes
        // plus the reference/compiled speedup floor (`fig17_speedup`).
        let (secs, cycles) = time_suite(scale);
        let ([fast_s, comp_s, par_s, ref_s], [fast_cycles, comp_cycles, par_cycles, ref_cycles]) =
            (secs, cycles);
        // Scale-out: the same suite as a fleet, 1 thread vs min(host, 4).
        // `fig17_host_threads` tells the gate whether the host can even
        // express a speedup (a 1-core CI runner cannot).
        let host = std::thread::available_parallelism()
            .map_or(1, std::num::NonZeroUsize::get)
            .min(4);
        let fleet_1 = time_fleet(scale, 1);
        let fleet_n = if host > 1 {
            time_fleet(scale, host)
        } else {
            fleet_1
        };
        let json = metrics_json(&[
            ("fig17_sim_cycles_fast", fast_cycles as f64),
            ("fig17_sim_cycles_compiled", comp_cycles as f64),
            ("fig17_sim_cycles_parallel", par_cycles as f64),
            ("fig17_sim_cycles_reference", ref_cycles as f64),
            ("fig17_fast_wall_ms", fast_s * 1e3),
            ("fig17_compiled_wall_ms", comp_s * 1e3),
            ("fig17_parallel_wall_ms", par_s * 1e3),
            ("fig17_reference_wall_ms", ref_s * 1e3),
            ("fig17_fast_cps", fast_cycles as f64 / fast_s),
            ("fig17_compiled_cps", comp_cycles as f64 / comp_s),
            ("fig17_parallel_cps", par_cycles as f64 / par_s),
            ("fig17_reference_cps", ref_cycles as f64 / ref_s),
            ("fig17_fast_speedup", ref_s / fast_s),
            ("fig17_speedup", ref_s / comp_s),
            ("fig17_host_threads", host as f64),
            ("fig17_parallel_speedup", fleet_1 / fleet_n),
        ]);
        write_artifact(&path, &json);
    }
    if let Some(w) = spec_suite(scale).into_iter().next() {
        maybe_profile_run(CoreConfig::riscyoo_t_plus(), mem_riscyoo_b(), 1, &w, mode);
        maybe_telemetry_run(CoreConfig::riscyoo_t_plus(), mem_riscyoo_b(), 1, &w, mode);
    }
}
