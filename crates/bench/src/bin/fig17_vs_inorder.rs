//! Regenerates paper Fig. 17: RiscyOO-C-, Rocket-10, and Rocket-120
//! normalized to RiscyOO-T+ (the out-of-order vs in-order comparison).

use cmd_core::sched::SchedulerMode;
use riscy_baseline::InOrderConfig;
use riscy_bench::{
    bench_json_path, geomean, maybe_profile_run, metrics_json, results_json, run_inorder,
    run_ooo_with_scheduler, scale_from_args, scheduler_from_args, stats_json_path, write_artifact,
};
use riscy_ooo::config::{mem_riscyoo_b, mem_riscyoo_c_minus, CoreConfig};
use riscy_workloads::spec::spec_suite;
use std::time::Instant;

/// Times the whole T+ suite under one scheduler: (wall seconds, total ROI
/// cycles). The cycle total doubles as the cross-scheduler determinism
/// checksum the perf gate verifies.
fn time_suite(scale: riscy_workloads::spec::Scale, mode: SchedulerMode) -> (f64, u64) {
    let t0 = Instant::now();
    let mut cycles = 0;
    for w in spec_suite(scale) {
        cycles += run_ooo_with_scheduler(CoreConfig::riscyoo_t_plus(), mem_riscyoo_b(), &w, mode)
            .roi_cycles;
    }
    (t0.elapsed().as_secs_f64(), cycles)
}

fn main() {
    let scale = scale_from_args();
    let mode = scheduler_from_args();
    println!("=== Fig. 17: normalized to RiscyOO-T+ (higher is better) ===");
    println!("(paper: T+ beats Rocket-120 by ~319% and Rocket-10 by ~53%)\n");
    println!(
        "{:<14}{:>14}{:>14}{:>14}",
        "benchmark", "RiscyOO-C-", "Rocket-10", "Rocket-120"
    );
    let (mut rc, mut r10, mut r120) = (Vec::new(), Vec::new(), Vec::new());
    let (mut ts, mut cs, mut k10s, mut k120s) = (Vec::new(), Vec::new(), Vec::new(), Vec::new());
    for w in spec_suite(scale) {
        let t = run_ooo_with_scheduler(CoreConfig::riscyoo_t_plus(), mem_riscyoo_b(), &w, mode);
        let c = run_ooo_with_scheduler(
            CoreConfig::riscyoo_t_plus(),
            mem_riscyoo_c_minus(),
            &w,
            mode,
        );
        let k10 = run_inorder(InOrderConfig::rocket(10), &w);
        let k120 = run_inorder(InOrderConfig::rocket(120), &w);
        let n = |x: u64| t.roi_cycles as f64 / x as f64;
        let (a, b, cc) = (n(c.roi_cycles), n(k10.roi_cycles), n(k120.roi_cycles));
        rc.push(a);
        r10.push(b);
        r120.push(cc);
        println!("{:<14}{:>14.3}{:>14.3}{:>14.3}", w.name, a, b, cc);
        ts.push(t);
        cs.push(c);
        k10s.push(k10);
        k120s.push(k120);
    }
    println!(
        "{:<14}{:>14.3}{:>14.3}{:>14.3}",
        "geo-mean",
        geomean(&rc),
        geomean(&r10),
        geomean(&r120)
    );
    if let Some(path) = stats_json_path() {
        let json = results_json(&[
            ("RiscyOO-T+", &ts),
            ("RiscyOO-C-", &cs),
            ("Rocket-10", &k10s),
            ("Rocket-120", &k120s),
        ]);
        write_artifact(&path, &json);
    }
    if let Some(path) = bench_json_path() {
        // Perf-gate artifact: the T+ suite timed under both schedulers.
        // On the SoC every rule stays on `Wakeup::EveryCycle` (plain-state
        // bodies), so only the conflict-footprint masks apply and the
        // speedup is modest — recorded informationally; the gate only
        // enforces the cycle-count checksum here.
        let (fast_s, fast_cycles) = time_suite(scale, SchedulerMode::Fast);
        let (ref_s, ref_cycles) = time_suite(scale, SchedulerMode::Reference);
        let json = metrics_json(&[
            ("fig17_sim_cycles_fast", fast_cycles as f64),
            ("fig17_sim_cycles_reference", ref_cycles as f64),
            ("fig17_fast_wall_ms", fast_s * 1e3),
            ("fig17_reference_wall_ms", ref_s * 1e3),
            ("fig17_fast_cps", fast_cycles as f64 / fast_s),
            ("fig17_reference_cps", ref_cycles as f64 / ref_s),
            ("fig17_speedup", ref_s / fast_s),
        ]);
        write_artifact(&path, &json);
    }
    if let Some(w) = spec_suite(scale).into_iter().next() {
        maybe_profile_run(CoreConfig::riscyoo_t_plus(), mem_riscyoo_b(), 1, &w, mode);
    }
}
