//! Regenerates paper Fig. 16: L1 D TLB misses, L2 TLB misses, branch
//! mispredictions, L1 D misses, and L2 misses per thousand instructions on
//! RiscyOO-T+.

use cmd_core::sched::SchedulerMode;
use riscy_bench::{
    maybe_profile_run, maybe_telemetry_run, results_json, run_ooo, scale_from_args,
    stats_json_path, write_artifact,
};
use riscy_ooo::config::{mem_riscyoo_b, CoreConfig};
use riscy_workloads::spec::spec_suite;

fn main() {
    let scale = scale_from_args();
    println!("=== Fig. 16: misses per 1K instructions on RiscyOO-T+ ===\n");
    println!(
        "{:<14}{:>8}{:>8}{:>8}{:>8}{:>8}{:>10}",
        "benchmark", "DTLB", "L2TLB", "BrPred", "D$", "L2$", "IPC"
    );
    let mut runs = Vec::new();
    for w in spec_suite(scale) {
        let r = run_ooo(CoreConfig::riscyoo_t_plus(), mem_riscyoo_b(), &w);
        println!(
            "{:<14}{:>8.1}{:>8.1}{:>8.1}{:>8.1}{:>8.1}{:>10.3}",
            r.name,
            r.dtlb_pki,
            r.l2tlb_pki,
            r.brpred_pki,
            r.dcache_pki,
            r.l2_pki,
            r.ipc()
        );
        runs.push(r);
    }
    if let Some(path) = stats_json_path() {
        write_artifact(&path, &results_json(&[("RiscyOO-T+", &runs)]));
    }
    println!(
        "\n(paper shape: mcf/astar/omnetpp TLB-heavy; libquantum D$/L2$-heavy;\n\
         \x20sjeng/gobmk mispredict-heavy; hmmer/h264ref low everywhere)"
    );
    if let Some(w) = spec_suite(scale).into_iter().next() {
        maybe_profile_run(
            CoreConfig::riscyoo_t_plus(),
            mem_riscyoo_b(),
            1,
            &w,
            SchedulerMode::default(),
        );
        maybe_telemetry_run(
            CoreConfig::riscyoo_t_plus(),
            mem_riscyoo_b(),
            1,
            &w,
            SchedulerMode::default(),
        );
    }
}
