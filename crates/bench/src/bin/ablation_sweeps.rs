//! Beyond-paper ablations promised in DESIGN.md: sweeps of the design
//! parameters the paper holds fixed — ROB size, store-buffer size, and
//! issue-queue size — on representative workloads. These are the
//! "architectural exploration" experiments the CMD methodology is supposed
//! to make cheap (paper §IV-D, §VII).

use riscy_bench::{metrics_json, run_ooo, scale_from_args, stats_json_path, write_artifact};
use riscy_ooo::config::{mem_riscyoo_b, CoreConfig, MemModel};
use riscy_workloads::parsec::facesim;
use riscy_workloads::spec::{hmmer, mcf, Scale};

fn main() {
    let scale = scale_from_args();
    let scale = if scale == Scale::Ref {
        Scale::Ref
    } else {
        Scale::Test
    };

    let mut sweep_metrics: Vec<(String, f64)> = Vec::new();

    println!("=== Ablation: ROB size (mcf = memory-bound, hmmer = compute-bound) ===\n");
    println!("{:<8}{:>14}{:>14}", "ROB", "mcf cycles", "hmmer cycles");
    for rob in [16, 32, 48, 64, 80, 128] {
        let cfg = CoreConfig {
            rob_entries: rob,
            phys_regs: 64 + rob,
            ..CoreConfig::riscyoo_t_plus()
        };
        let m = run_ooo(cfg, mem_riscyoo_b(), &mcf(scale));
        let h = run_ooo(cfg, mem_riscyoo_b(), &hmmer(scale));
        println!("{rob:<8}{:>14}{:>14}", m.roi_cycles, h.roi_cycles);
        sweep_metrics.push((format!("rob{rob}_mcf_cycles"), m.roi_cycles as f64));
        sweep_metrics.push((format!("rob{rob}_hmmer_cycles"), h.roi_cycles as f64));
    }
    println!("\n(expected: mcf keeps gaining — more in-flight misses; hmmer saturates early)");

    println!("\n=== Ablation: WMM store-buffer size (facesim = store-heavy sweeps) ===\n");
    println!("{:<8}{:>16}", "SB", "facesim cycles");
    for sb in [1, 2, 4, 8] {
        let cfg = CoreConfig {
            sb_entries: sb,
            mem_model: MemModel::Wmm,
            ..CoreConfig::riscyoo_t_plus()
        };
        let r = run_ooo(cfg, mem_riscyoo_b(), &facesim(scale, 1));
        println!("{sb:<8}{:>16}", r.roi_cycles);
        sweep_metrics.push((format!("sb{sb}_facesim_cycles"), r.roi_cycles as f64));
    }

    println!("\n=== Ablation: issue-queue size (mcf) ===\n");
    println!("{:<8}{:>14}", "IQ", "mcf cycles");
    for iq in [4, 8, 16, 32] {
        let cfg = CoreConfig {
            iq_entries: iq,
            ..CoreConfig::riscyoo_t_plus()
        };
        let r = run_ooo(cfg, mem_riscyoo_b(), &mcf(scale));
        println!("{iq:<8}{:>14}", r.roi_cycles);
        sweep_metrics.push((format!("iq{iq}_mcf_cycles"), r.roi_cycles as f64));
    }

    if let Some(path) = stats_json_path() {
        let flat: Vec<(&str, f64)> = sweep_metrics
            .iter()
            .map(|(k, v)| (k.as_str(), *v))
            .collect();
        write_artifact(&path, &metrics_json(&flat));
    }
}
