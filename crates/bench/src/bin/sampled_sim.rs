//! Fast-forward + sampled simulation, measured against full-fidelity runs.
//!
//! For each (single-core) workload this binary runs the full detailed
//! simulation, then the fast-forward + interval-sampling pass
//! ([`riscy_bench::sampling`]), and reports the wall-clock speedup and
//! the IPC estimation error. The two headline metrics feed the tiered CI
//! perf gate (`scripts/perf_gate.py`):
//!
//! * `ff_speedup` — Σ full wall time / Σ sampled wall time (floored ≥ 5×);
//! * `sample_ipc_err` — worst-case relative IPC error (ceiling ≤ 2 %).
//!
//! ```text
//! sampled_sim [--scale test|ref] [--workloads a,b,...] [--samples N]
//!             [--warmup N] [--interval N]
//!             [--report sample_report.json] [--bench-json PATH]
//!             [--telemetry-json PATH]
//! ```
//!
//! `--report` writes the per-workload `sample_report.json` CI artifact
//! (full vs estimated IPC, every raw sample point). See
//! `docs/CHECKPOINT.md` §"Sampled simulation". `--telemetry-json` runs
//! the first workload once more with windowed kernel telemetry and
//! writes the time-series artifact (see `docs/OBSERVABILITY.md`
//! §telemetry).

use cmd_core::sched::SchedulerMode;
use riscy_bench::sampling::{
    compare_sampled, functional_profile, sample_report_json, SamplePlan, SampledWorkload,
};
use riscy_bench::{
    bench_json_path, maybe_telemetry_run, metrics_json, path_arg, scale_from_args, write_artifact,
};
use riscy_ooo::config::{mem_riscyoo_b, CoreConfig};
use riscy_workloads::spec::spec_suite;

fn num_arg(flag: &str, default: u64) -> u64 {
    path_arg(flag).map_or(default, |v| {
        v.parse()
            .unwrap_or_else(|_| panic!("{flag} {v}: not a number"))
    })
}

fn main() {
    let scale = scale_from_args();
    let mut workloads = spec_suite(scale);
    if let Some(filter) = path_arg("--workloads") {
        let keep: Vec<&str> = filter.split(',').collect();
        workloads.retain(|w| keep.contains(&w.name));
        assert!(
            !workloads.is_empty(),
            "--workloads {filter}: nothing matched"
        );
    }
    let defaults = SamplePlan::default();
    let plan = SamplePlan {
        samples: num_arg("--samples", defaults.samples),
        warmup_insts: num_arg("--warmup", defaults.warmup_insts),
        interval_insts: num_arg("--interval", defaults.interval_insts),
        ..defaults
    };
    println!(
        "=== sampled simulation: {} samples x ({} warmup + {} measured) insts ===\n",
        plan.samples, plan.warmup_insts, plan.interval_insts
    );
    println!(
        "{:<14}{:>12}{:>10}{:>10}{:>9}{:>12}{:>12}{:>9}",
        "benchmark", "insts", "full-ipc", "est-ipc", "err", "full-s", "sampled-s", "speedup"
    );
    let cfg = CoreConfig::riscyoo_t_plus();
    let mem = mem_riscyoo_b();
    let mut entries: Vec<SampledWorkload> = Vec::new();
    for w in &workloads {
        // Sampling a workload shorter than a few multiples of the
        // detailed slices is dishonest (the "sample" IS the run); scout
        // functionally first and say so instead of reporting a fake
        // speedup.
        let profile = functional_profile(cfg, mem, &w.program, w.max_cycles.saturating_mul(8));
        let (b, e) = profile.sample_window();
        if e - b < plan.min_window_insts() {
            println!(
                "{:<14}{:>12}  skipped: sample window {} insts < {} needed by the plan",
                w.name,
                profile.total_insts,
                e - b,
                plan.min_window_insts()
            );
            continue;
        }
        let cmp = compare_sampled(cfg, mem, w.name, &w.program, w.max_cycles, &plan);
        println!(
            "{:<14}{:>12}{:>10.3}{:>10.3}{:>8.2}%{:>12.3}{:>12.3}{:>8.1}x",
            cmp.name,
            cmp.estimate.total_insts,
            cmp.full_ipc,
            cmp.est_ipc,
            100.0 * cmp.ipc_err(),
            cmp.full_wall_s,
            cmp.sampled_wall_s,
            cmp.speedup(),
        );
        entries.push(cmp);
    }
    assert!(
        !entries.is_empty(),
        "no workload was long enough to sample — pick longer workloads or a smaller plan"
    );
    let full_wall: f64 = entries.iter().map(|e| e.full_wall_s).sum();
    let sampled_wall: f64 = entries.iter().map(|e| e.sampled_wall_s).sum();
    let ff_speedup = if sampled_wall > 0.0 {
        full_wall / sampled_wall
    } else {
        0.0
    };
    let err_max = entries
        .iter()
        .map(SampledWorkload::ipc_err)
        .fold(0.0, f64::max);
    println!(
        "\nsampled_sim: ff_speedup {ff_speedup:.1}x ({full_wall:.2}s full vs {sampled_wall:.2}s sampled), worst IPC err {:.2}%",
        100.0 * err_max
    );

    if let Some(path) = path_arg("--report") {
        write_artifact(&path, &sample_report_json(&entries));
    }
    if let Some(path) = bench_json_path() {
        let metrics = [
            ("ff_speedup", ff_speedup),
            ("sample_ipc_err", err_max),
            ("sampled_workloads", entries.len() as f64),
        ];
        write_artifact(&path, &metrics_json(&metrics));
    }
    if let Some(w) = workloads.first() {
        maybe_telemetry_run(cfg, mem, 1, w, SchedulerMode::default());
    }
}
