//! Regenerates paper Fig. 14: the RiscyOO variant table.

use riscy_bench::{metrics_json, stats_json_path, write_artifact};
use riscy_ooo::config::{mem_riscyoo_c_minus, CoreConfig};

fn main() {
    println!("=== Fig. 14: variants of the RiscyOO-B configuration ===\n");
    println!("{:<16} {:<18} Specifications", "Variant", "Difference");
    let c_minus = mem_riscyoo_c_minus();
    println!(
        "{:<16} {:<18} {}KB L1 I/D, {}KB L2",
        "RiscyOO-C-",
        "Smaller Caches",
        c_minus.l1d.size_bytes / 1024,
        c_minus.l2.size_bytes / 1024
    );
    let t = CoreConfig::riscyoo_t_plus();
    println!(
        "{:<16} {:<18} Non-blocking TLBs ({} L1D / {} L2 misses), {}-entry/level walk cache",
        "RiscyOO-T+",
        "Improved TLB",
        t.tlb.l1d_miss_slots,
        t.tlb.l2_miss_slots,
        t.tlb.walk_cache_entries
    );
    let tr = CoreConfig::riscyoo_t_plus_r_plus();
    println!(
        "{:<16} {:<18} RiscyOO-T+ with {}-entry ROB",
        "RiscyOO-T+R+", "Larger ROB", tr.rob_entries
    );
    if let Some(path) = stats_json_path() {
        let json = metrics_json(&[
            ("c_minus_l1d_bytes", c_minus.l1d.size_bytes as f64),
            ("c_minus_l2_bytes", c_minus.l2.size_bytes as f64),
            ("t_plus_l1d_miss_slots", t.tlb.l1d_miss_slots as f64),
            ("t_plus_l2_miss_slots", t.tlb.l2_miss_slots as f64),
            ("t_plus_walk_cache_entries", t.tlb.walk_cache_entries as f64),
            ("t_plus_r_plus_rob_entries", tr.rob_entries as f64),
        ]);
        write_artifact(&path, &json);
    }
    // The profiling flags run the described configuration on one
    // representative workload (see docs/OBSERVABILITY.md).
    if let Some(w) = riscy_workloads::spec::spec_suite(riscy_bench::scale_from_args())
        .into_iter()
        .next()
    {
        riscy_bench::maybe_profile_run(
            CoreConfig::riscyoo_t_plus(),
            riscy_ooo::config::mem_riscyoo_b(),
            1,
            &w,
            cmd_core::sched::SchedulerMode::default(),
        );
        riscy_bench::maybe_telemetry_run(
            CoreConfig::riscyoo_t_plus(),
            riscy_ooo::config::mem_riscyoo_b(),
            1,
            &w,
            cmd_core::sched::SchedulerMode::default(),
        );
    }
}
