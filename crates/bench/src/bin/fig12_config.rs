//! Regenerates paper Fig. 12: the RiscyOO-B configuration table.

use riscy_bench::{metrics_json, stats_json_path, write_artifact};
use riscy_ooo::config::{mem_riscyoo_b, CoreConfig};

fn main() {
    let c = CoreConfig::riscyoo_b();
    let m = mem_riscyoo_b();
    println!("=== Fig. 12: RiscyOO-B configuration ===\n");
    println!(
        "Front-end    {}-wide superscalar fetch/decode/rename\n\
         \x20            {}-entry direct-mapped BTB\n\
         \x20            tournament branch predictor as in Alpha 21264\n\
         \x20            {}-entry return address stack",
        c.width, c.bp.btb_entries, c.bp.ras_entries
    );
    println!(
        "Execution    {}-entry ROB with {}-way insert/commit\n\
         \x20            Total {} pipelines: {} ALU, 1 MEM, 1 MUL/DIV\n\
         \x20            {}-entry IQ per pipeline",
        c.rob_entries,
        c.width,
        c.alu_pipes + 2,
        c.alu_pipes,
        c.iq_entries
    );
    println!(
        "Ld-St Unit   {}-entry LQ, {}-entry SQ, {}-entry SB (each 64B wide)",
        c.lq_entries, c.sq_entries, c.sb_entries
    );
    println!(
        "TLBs         Both L1 I and D are {}-entry, fully associative\n\
         \x20            L2 is {}-entry, {}-way associative",
        c.tlb.l1_entries, c.tlb.l2_entries, c.tlb.l2_ways
    );
    println!(
        "L1 Caches    Both I and D are {}KB, {}-way associative, max {} requests",
        m.l1d.size_bytes / 1024,
        m.l1d.ways,
        m.l1d.mshrs
    );
    println!(
        "L2 Cache     {}MB, {}-way, max {} requests, coherent with I and D",
        m.l2.size_bytes / (1024 * 1024),
        m.l2.ways,
        m.l2.max_trans
    );
    println!(
        "Memory       {}-cycle latency, max {} req (one line per {} cycles)",
        m.l2.dram.latency, m.l2.dram.max_outstanding, m.l2.dram.cycles_per_line
    );
    if let Some(path) = stats_json_path() {
        let json = metrics_json(&[
            ("width", c.width as f64),
            ("btb_entries", c.bp.btb_entries as f64),
            ("ras_entries", c.bp.ras_entries as f64),
            ("rob_entries", c.rob_entries as f64),
            ("alu_pipes", c.alu_pipes as f64),
            ("iq_entries", c.iq_entries as f64),
            ("lq_entries", c.lq_entries as f64),
            ("sq_entries", c.sq_entries as f64),
            ("sb_entries", c.sb_entries as f64),
            ("tlb_l1_entries", c.tlb.l1_entries as f64),
            ("tlb_l2_entries", c.tlb.l2_entries as f64),
            ("l1d_bytes", m.l1d.size_bytes as f64),
            ("l2_bytes", m.l2.size_bytes as f64),
            ("dram_latency", m.l2.dram.latency as f64),
        ]);
        write_artifact(&path, &json);
    }
    // The profiling flags run the described configuration on one
    // representative workload (see docs/OBSERVABILITY.md).
    if let Some(w) = riscy_workloads::spec::spec_suite(riscy_bench::scale_from_args())
        .into_iter()
        .next()
    {
        riscy_bench::maybe_profile_run(
            CoreConfig::riscyoo_b(),
            mem_riscyoo_b(),
            1,
            &w,
            cmd_core::sched::SchedulerMode::default(),
        );
        riscy_bench::maybe_telemetry_run(
            CoreConfig::riscyoo_b(),
            mem_riscyoo_b(),
            1,
            &w,
            cmd_core::sched::SchedulerMode::default(),
        );
    }
}
