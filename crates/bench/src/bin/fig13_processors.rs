//! Regenerates paper Fig. 13: the comparison-processor table, as
//! instantiated by this reproduction (substitutions documented in
//! DESIGN.md).

use riscy_bench::{metrics_json, stats_json_path, write_artifact};
use riscy_ooo::config::CoreConfig;

fn main() {
    println!("=== Fig. 13: processors to compare against ===\n");
    let rows = [
        (
            "Rocket-10",
            "in-order substitute, 16KB L1 I/D, no L2, 10-cycle memory",
            "In-order",
        ),
        (
            "Rocket-120",
            "in-order substitute, 16KB L1 I/D, no L2, 120-cycle memory",
            "In-order",
        ),
        (
            "A57 (proxy)",
            "3-wide superscalar OOO proxy, 48KB L1 I, 2MB L2",
            "Commercial ARM",
        ),
        (
            "Denver (proxy)",
            "4-wide aggressive OOO proxy, large buffers, 2MB L2",
            "Commercial ARM",
        ),
        (
            "BOOM (proxy)",
            "2-wide OOO, 80-entry ROB, 32KB L1 I/D, 1MB L2, blocking TLBs",
            "Academic OOO",
        ),
    ];
    println!("{:<16} {:<62} Category", "Name", "Description");
    for (n, d, c) in rows {
        println!("{n:<16} {d:<62} {c}");
    }
    println!("\nProxy core parameters:");
    for (name, cfg) in [
        ("A57", CoreConfig::a57_proxy()),
        ("Denver", CoreConfig::denver_proxy()),
        ("BOOM", CoreConfig::boom_proxy()),
    ] {
        println!(
            "  {name:<8} width={} rob={} iq={} lq/sq={}/{} phys={}",
            cfg.width,
            cfg.rob_entries,
            cfg.iq_entries,
            cfg.lq_entries,
            cfg.sq_entries,
            cfg.phys_regs
        );
    }
    if let Some(path) = stats_json_path() {
        let mut metrics = Vec::new();
        let mut names = Vec::new();
        for (name, cfg) in [
            ("a57", CoreConfig::a57_proxy()),
            ("denver", CoreConfig::denver_proxy()),
            ("boom", CoreConfig::boom_proxy()),
        ] {
            names.push([
                format!("{name}_width"),
                format!("{name}_rob_entries"),
                format!("{name}_phys_regs"),
            ]);
            metrics.push([
                cfg.width as f64,
                cfg.rob_entries as f64,
                cfg.phys_regs as f64,
            ]);
        }
        let flat: Vec<(&str, f64)> = names
            .iter()
            .zip(&metrics)
            .flat_map(|(ns, vs)| ns.iter().map(String::as_str).zip(vs.iter().copied()))
            .collect();
        write_artifact(&path, &metrics_json(&flat));
    }
    // The profiling flags run the described configuration on one
    // representative workload (see docs/OBSERVABILITY.md).
    if let Some(w) = riscy_workloads::spec::spec_suite(riscy_bench::scale_from_args())
        .into_iter()
        .next()
    {
        riscy_bench::maybe_profile_run(
            CoreConfig::riscyoo_t_plus(),
            riscy_ooo::config::mem_riscyoo_b(),
            1,
            &w,
            cmd_core::sched::SchedulerMode::default(),
        );
        riscy_bench::maybe_telemetry_run(
            CoreConfig::riscyoo_t_plus(),
            riscy_ooo::config::mem_riscyoo_b(),
            1,
            &w,
            cmd_core::sched::SchedulerMode::default(),
        );
    }
}
