//! Regenerates paper Fig. 13: the comparison-processor table, as
//! instantiated by this reproduction (substitutions documented in
//! DESIGN.md).

use riscy_ooo::config::CoreConfig;

fn main() {
    println!("=== Fig. 13: processors to compare against ===\n");
    let rows = [
        (
            "Rocket-10",
            "in-order substitute, 16KB L1 I/D, no L2, 10-cycle memory",
            "In-order",
        ),
        (
            "Rocket-120",
            "in-order substitute, 16KB L1 I/D, no L2, 120-cycle memory",
            "In-order",
        ),
        (
            "A57 (proxy)",
            "3-wide superscalar OOO proxy, 48KB L1 I, 2MB L2",
            "Commercial ARM",
        ),
        (
            "Denver (proxy)",
            "4-wide aggressive OOO proxy, large buffers, 2MB L2",
            "Commercial ARM",
        ),
        (
            "BOOM (proxy)",
            "2-wide OOO, 80-entry ROB, 32KB L1 I/D, 1MB L2, blocking TLBs",
            "Academic OOO",
        ),
    ];
    println!("{:<16} {:<62} Category", "Name", "Description");
    for (n, d, c) in rows {
        println!("{n:<16} {d:<62} {c}");
    }
    println!("\nProxy core parameters:");
    for (name, cfg) in [
        ("A57", CoreConfig::a57_proxy()),
        ("Denver", CoreConfig::denver_proxy()),
        ("BOOM", CoreConfig::boom_proxy()),
    ] {
        println!(
            "  {name:<8} width={} rob={} iq={} lq/sq={}/{} phys={}",
            cfg.width, cfg.rob_entries, cfg.iq_entries, cfg.lq_entries, cfg.sq_entries,
            cfg.phys_regs
        );
    }
}
