//! Regenerates paper Fig. 21: ASIC synthesis results (max frequency and
//! NAND2-equivalent gates) for RiscyOO-T+ and RiscyOO-T+R+, via the
//! calibrated analytic model in `riscy-synth`.

use riscy_bench::{metrics_json, stats_json_path, write_artifact};
use riscy_ooo::config::CoreConfig;
use riscy_synth::{fig21_table, synthesize};

fn main() {
    println!("=== Fig. 21: ASIC synthesis results (analytic model) ===\n");
    print!(
        "{}",
        fig21_table(&[
            ("RiscyOO-T+", CoreConfig::riscyoo_t_plus()),
            ("RiscyOO-T+R+", CoreConfig::riscyoo_t_plus_r_plus()),
        ])
    );
    println!("(paper: 1.1 GHz / 1.78 M and 1.0 GHz / 1.89 M)\n");

    println!("Logic breakdown of RiscyOO-T+ (NAND2-equivalents):");
    let r = synthesize(&CoreConfig::riscyoo_t_plus());
    for (name, g) in [
        ("branch predictors", r.bp_gates),
        ("ROB", r.rob_gates),
        ("issue queues", r.iq_gates),
        ("rename + spec mgr", r.rename_gates),
        ("PRF logic", r.prf_gates),
        ("LSQ + SB", r.lsq_gates),
        ("exec units", r.exec_gates),
        ("TLB control", r.tlb_gates),
        ("fixed control", r.fixed_gates),
    ] {
        println!("  {name:<20} {:>8.0} K", g / 1000.0);
    }
    println!("\nExtension sweep (beyond-paper): ROB size vs area/frequency:");
    for rob in [48, 64, 80, 96, 128] {
        let cfg = CoreConfig {
            rob_entries: rob,
            ..CoreConfig::riscyoo_t_plus()
        };
        let s = synthesize(&cfg);
        println!(
            "  ROB {rob:>3}: {:>5.2} GHz, {:>5.2} M gates",
            s.max_freq_ghz, s.nand2_gates_m
        );
    }
    if let Some(path) = stats_json_path() {
        let tr = synthesize(&CoreConfig::riscyoo_t_plus_r_plus());
        let json = metrics_json(&[
            ("t_plus_max_freq_ghz", r.max_freq_ghz),
            ("t_plus_nand2_gates_m", r.nand2_gates_m),
            ("t_plus_r_plus_max_freq_ghz", tr.max_freq_ghz),
            ("t_plus_r_plus_nand2_gates_m", tr.nand2_gates_m),
            ("t_plus_rob_gates", r.rob_gates),
            ("t_plus_iq_gates", r.iq_gates),
            ("t_plus_lsq_gates", r.lsq_gates),
            ("t_plus_tlb_gates", r.tlb_gates),
        ]);
        write_artifact(&path, &json);
    }
    // The profiling flags run the described configuration on one
    // representative workload (see docs/OBSERVABILITY.md).
    if let Some(w) = riscy_workloads::spec::spec_suite(riscy_bench::scale_from_args())
        .into_iter()
        .next()
    {
        riscy_bench::maybe_profile_run(
            CoreConfig::riscyoo_t_plus(),
            riscy_ooo::config::mem_riscyoo_b(),
            1,
            &w,
            cmd_core::sched::SchedulerMode::default(),
        );
        riscy_bench::maybe_telemetry_run(
            CoreConfig::riscyoo_t_plus(),
            riscy_ooo::config::mem_riscyoo_b(),
            1,
            &w,
            cmd_core::sched::SchedulerMode::default(),
        );
    }
}
