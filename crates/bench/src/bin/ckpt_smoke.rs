//! CI checkpoint smoke: proves snapshots are deterministic, fast.
//!
//! For each of the four scheduler modes (`reference`, `fast`, `compiled`,
//! `parallel`) this binary:
//!
//! 1. runs a workload to a mid-run cycle and saves a snapshot;
//! 2. restores it into a *fresh* process-local simulation, runs both the
//!    original and the restored simulation to completion, and demands
//!    bit-identical final snapshots (which subsumes every serialized
//!    architectural and microarchitectural field) plus equal cycle
//!    counts and exit codes;
//! 3. checksums the mid-run snapshot bytes.
//!
//! Because all four modes are cycle-identical by construction, the
//! mid-run snapshot bytes must be **the same across modes** — the final
//! cross-mode checksum comparison is the strongest single assertion in
//! the CI tier (see `docs/CHECKPOINT.md` §"CI: the `ckpt-smoke` tier").
//!
//! Prints one `PASS` line per mode and exits non-zero on any mismatch.
//! `--bench-json PATH` writes `{ckpt_modes_ok, ckpt_bytes,
//! ckpt_checksums_equal}` for the perf gate.

use cmd_core::sched::SchedulerMode;
use riscy_bench::{bench_json_path, metrics_json, write_artifact};
use riscy_isa::asm::{Assembler, Program};
use riscy_isa::mem::{DRAM_BASE, MMIO_EXIT};
use riscy_isa::reg::Gpr;
use riscy_ooo::config::{mem_riscyoo_b, CoreConfig};
use riscy_ooo::soc::{RunError, SocSim};

/// Cycle at which the mid-run snapshot is taken.
const SNAP_AT: u64 = 3_000;
/// Overall cycle budget per run.
const BUDGET: u64 = 2_000_000;

/// A loop with stores, loads, and data-dependent branches: enough
/// in-flight microarchitectural state (ROB, LSQ, store buffer, caches)
/// that a shallow snapshot would be caught immediately.
fn smoke_prog() -> Program {
    let mut a = Assembler::new(DRAM_BASE);
    a.li(Gpr::s(1), 4_000);
    a.li(Gpr::s(2), 0);
    a.li(Gpr::s(3), DRAM_BASE as i64 + 0x10000);
    a.label("loop");
    a.sd(Gpr::s(2), 0, Gpr::s(3));
    a.ld(Gpr::s(4), 0, Gpr::s(3));
    a.addi(Gpr::s(2), Gpr::s(2), 5);
    a.addi(Gpr::s(3), Gpr::s(3), 8);
    a.andi(Gpr::s(5), Gpr::s(2), 0xff);
    a.bnez(Gpr::s(5), "skip");
    a.addi(Gpr::s(2), Gpr::s(2), 1);
    a.label("skip");
    a.addi(Gpr::s(1), Gpr::s(1), -1);
    a.bnez(Gpr::s(1), "loop");
    a.li(Gpr::t(6), MMIO_EXIT as i64);
    a.li(Gpr::t(5), 7);
    a.sd(Gpr::t(5), 0, Gpr::t(6));
    a.label("hang");
    a.j("hang");
    a.assemble()
}

/// FNV-1a, the checksum printed per mode and compared across modes.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn new_sim(prog: &Program, mode: SchedulerMode) -> SocSim {
    let mut sim = SocSim::new(CoreConfig::riscyoo_t_plus(), mem_riscyoo_b(), 1, prog);
    sim.set_scheduler(mode);
    sim
}

fn run_to_end(sim: &mut SocSim, what: &str) {
    sim.run_to_completion(BUDGET)
        .unwrap_or_else(|e| panic!("ckpt_smoke: {what} did not complete: {e}"));
}

fn main() {
    let prog = smoke_prog();
    let modes = [
        SchedulerMode::Reference,
        SchedulerMode::Fast,
        SchedulerMode::Compiled,
        SchedulerMode::Parallel,
    ];
    println!("=== ckpt-smoke: snapshot round-trip determinism ===\n");
    let mut checksums = Vec::new();
    let mut snap_len = 0usize;
    let mut ok = true;
    for mode in modes {
        // Original run: snapshot mid-flight, then continue to completion.
        let mut a = new_sim(&prog, mode);
        match a.run_to_completion(SNAP_AT) {
            Err(RunError::Budget { .. }) => {}
            other => panic!("ckpt_smoke: expected to stop mid-run at {SNAP_AT}, got {other:?}"),
        }
        let snap = a
            .save_snapshot()
            .unwrap_or_else(|e| panic!("ckpt_smoke: save failed under {mode:?}: {e}"));
        run_to_end(&mut a, "original");
        let a_final = a.save_snapshot().expect("final snapshot (original)");

        // Restored run: a fresh SoC resumes from the snapshot.
        let mut b = new_sim(&prog, mode);
        b.restore_snapshot(&snap)
            .unwrap_or_else(|e| panic!("ckpt_smoke: restore failed under {mode:?}: {e}"));
        run_to_end(&mut b, "restored");
        let b_final = b.save_snapshot().expect("final snapshot (restored)");

        let sum = fnv1a(&snap);
        let bit_identical = a_final == b_final;
        let cycles_equal = a.cycles() == b.cycles();
        let exits_equal = a.exit_codes() == b.exit_codes();
        let pass = bit_identical && cycles_equal && exits_equal;
        ok &= pass;
        println!(
            "{} {mode:?}: snapshot {} B, fnv1a {sum:016x}, resumed run {} @ {} cycles",
            if pass { "PASS" } else { "FAIL" },
            snap.len(),
            if bit_identical {
                "bit-identical"
            } else {
                "DIVERGED"
            },
            b.cycles(),
        );
        checksums.push(sum);
        snap_len = snap.len();
    }
    // All four modes simulate the same cycles, so the mid-run snapshot
    // bytes — and therefore the checksums — must agree across modes.
    let checksums_equal = checksums.windows(2).all(|w| w[0] == w[1]);
    if checksums_equal {
        println!(
            "\nPASS cross-mode: all {} checksums identical",
            checksums.len()
        );
    } else {
        println!("\nFAIL cross-mode: checksums diverged: {checksums:016x?}");
    }
    ok &= checksums_equal;

    if let Some(path) = bench_json_path() {
        let metrics = [
            ("ckpt_modes_ok", if ok { 4.0 } else { 0.0 }),
            ("ckpt_bytes", snap_len as f64),
            ("ckpt_checksums_equal", f64::from(u8::from(checksums_equal))),
        ];
        write_artifact(&path, &metrics_json(&metrics));
    }
    if !ok {
        std::process::exit(1);
    }
}
