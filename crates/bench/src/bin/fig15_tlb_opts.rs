//! Regenerates paper Fig. 15: performance of RiscyOO-T+ normalized to
//! RiscyOO-B (the effect of the TLB microarchitecture optimizations).
//!
//! Pass `--ablate` to additionally decompose T+ into its two ingredients
//! (non-blocking miss handling vs the translation cache) — the ablation
//! DESIGN.md calls out.

use cmd_core::sched::SchedulerMode;
use riscy_bench::{
    geomean, maybe_profile_run, maybe_telemetry_run, results_json, run_ooo, scale_from_args,
    stats_json_path, write_artifact,
};
use riscy_ooo::config::{mem_riscyoo_b, CoreConfig, TlbConfig};
use riscy_workloads::spec::spec_suite;

fn main() {
    let scale = scale_from_args();
    let ablate = std::env::args().any(|a| a == "--ablate");
    let suite = spec_suite(scale);

    println!("=== Fig. 15: RiscyOO-T+ normalized to RiscyOO-B ===");
    println!("(higher is better; paper: geo-mean ≈ 1.29, astar ≈ 2.0)\n");
    let mut header = format!(
        "{:<14}{:>12}{:>12}{:>12}",
        "benchmark", "B cycles", "T+ cycles", "T+/B"
    );
    if ablate {
        header += &format!("{:>14}{:>14}", "nonblk only", "walk$ only");
    }
    println!("{header}");

    let nonblock_only = CoreConfig {
        tlb: TlbConfig {
            walk_cache_entries: 0,
            ..TlbConfig::nonblocking()
        },
        ..CoreConfig::riscyoo_b()
    };
    let walkcache_only = CoreConfig {
        tlb: TlbConfig {
            walk_cache_entries: 24,
            ..TlbConfig::blocking()
        },
        ..CoreConfig::riscyoo_b()
    };

    let mut ratios = Vec::new();
    let (mut bs, mut tps) = (Vec::new(), Vec::new());
    for w in &suite {
        let b = run_ooo(CoreConfig::riscyoo_b(), mem_riscyoo_b(), w);
        let t = run_ooo(CoreConfig::riscyoo_t_plus(), mem_riscyoo_b(), w);
        let ratio = b.roi_cycles as f64 / t.roi_cycles as f64;
        ratios.push(ratio);
        let mut line = format!(
            "{:<14}{:>12}{:>12}{:>12.3}",
            w.name, b.roi_cycles, t.roi_cycles, ratio
        );
        if ablate {
            let nb = run_ooo(nonblock_only, mem_riscyoo_b(), w);
            let wc = run_ooo(walkcache_only, mem_riscyoo_b(), w);
            line += &format!(
                "{:>14.3}{:>14.3}",
                b.roi_cycles as f64 / nb.roi_cycles as f64,
                b.roi_cycles as f64 / wc.roi_cycles as f64
            );
        }
        println!("{line}");
        bs.push(b);
        tps.push(t);
    }
    println!(
        "{:<14}{:>12}{:>12}{:>12.3}",
        "geo-mean",
        "",
        "",
        geomean(&ratios)
    );
    if let Some(path) = stats_json_path() {
        let json = results_json(&[("RiscyOO-B", &bs), ("RiscyOO-T+", &tps)]);
        write_artifact(&path, &json);
    }
    if let Some(w) = suite.first() {
        maybe_profile_run(
            CoreConfig::riscyoo_t_plus(),
            mem_riscyoo_b(),
            1,
            w,
            SchedulerMode::default(),
        );
        maybe_telemetry_run(
            CoreConfig::riscyoo_t_plus(),
            mem_riscyoo_b(),
            1,
            w,
            SchedulerMode::default(),
        );
    }
}
