//! Sweep aggregator: folds a finished fleet campaign into a Pareto
//! report over configuration axes (see [`riscy_bench::sweep`]).
//!
//! ```text
//! sweep_report --campaign-dir DIR [--axes ipc:max,axis.rob_entries:min]
//!              [--out PATH]
//! ```
//!
//! Without `--axes` the objectives default to maximizing `ipc` and
//! minimizing every `axis.*` metric the campaign carries. The report is
//! printed to stdout (or written to `--out`); its bytes depend only on
//! the campaign's unit files, never on how the campaign was executed, so
//! it is safe to diff across thread counts and kill/resume histories.
//! Render it with `scripts/sweep_report.py` (table or HTML dashboard).

use std::path::PathBuf;

use riscy_bench::sweep::{sweep_report, Objective};
use riscy_bench::{path_arg, write_artifact};

fn main() {
    let dir = path_arg("--campaign-dir")
        .map(PathBuf::from)
        .expect("sweep_report: --campaign-dir is required");
    let objectives = path_arg("--axes").map_or_else(Vec::new, |s| Objective::parse_spec(&s));
    let json = sweep_report(&dir, &objectives);
    match path_arg("--out") {
        Some(path) => write_artifact(&path, &json),
        None => println!("{json}"),
    }
}
