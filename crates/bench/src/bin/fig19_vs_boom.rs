//! Regenerates paper Fig. 19: IPC of the BOOM proxy and RiscyOO-T+R+
//! (matched 80-entry ROBs and cache sizes).
//!
//! The paper's shape: similar harmonic-mean IPC, RiscyOO-T+R+ ahead on the
//! TLB-bound mcf, BOOM ahead on sjeng (better branch prediction there).

use cmd_core::sched::SchedulerMode;
use riscy_bench::{
    harmean, maybe_profile_run, maybe_telemetry_run, results_json, run_ooo, scale_from_args,
    stats_json_path, write_artifact,
};
use riscy_ooo::config::{mem_riscyoo_b, CoreConfig};
use riscy_workloads::spec::spec_suite;

/// The eight benchmarks BOOM reported (the paper omits gobmk, hmmer,
/// libquantum).
const BOOM_SET: [&str; 8] = [
    "bzip2",
    "gcc",
    "mcf",
    "sjeng",
    "h264ref",
    "omnetpp",
    "astar",
    "xalancbmk",
];

fn main() {
    let scale = scale_from_args();
    println!("=== Fig. 19: IPC of BOOM (proxy) and RiscyOO-T+R+ ===\n");
    println!("{:<14}{:>10}{:>14}", "benchmark", "BOOM", "RiscyOO-T+R+");
    let (mut boom_ipcs, mut riscy_ipcs) = (Vec::new(), Vec::new());
    let (mut booms, mut riscys) = (Vec::new(), Vec::new());
    for w in spec_suite(scale) {
        if !BOOM_SET.contains(&w.name) {
            continue;
        }
        let boom = run_ooo(CoreConfig::boom_proxy(), mem_riscyoo_b(), &w);
        let riscy = run_ooo(CoreConfig::riscyoo_t_plus_r_plus(), mem_riscyoo_b(), &w);
        boom_ipcs.push(boom.ipc());
        riscy_ipcs.push(riscy.ipc());
        println!("{:<14}{:>10.3}{:>14.3}", w.name, boom.ipc(), riscy.ipc());
        booms.push(boom);
        riscys.push(riscy);
    }
    println!(
        "{:<14}{:>10.3}{:>14.3}",
        "har-mean",
        harmean(&boom_ipcs),
        harmean(&riscy_ipcs)
    );
    if let Some(path) = stats_json_path() {
        let json = results_json(&[("BOOM", &booms), ("RiscyOO-T+R+", &riscys)]);
        write_artifact(&path, &json);
    }
    if let Some(w) = spec_suite(scale)
        .into_iter()
        .find(|w| BOOM_SET.contains(&w.name))
    {
        maybe_profile_run(
            CoreConfig::riscyoo_t_plus_r_plus(),
            mem_riscyoo_b(),
            1,
            &w,
            SchedulerMode::default(),
        );
        maybe_telemetry_run(
            CoreConfig::riscyoo_t_plus_r_plus(),
            mem_riscyoo_b(),
            1,
            &w,
            SchedulerMode::default(),
        );
    }
}
