//! Regenerates paper Fig. 20: PARSEC proxies on TSO and WMM multicores
//! with 1, 2 and 4 threads, normalized to TSO with 1 thread.
//!
//! The paper's finding: "no discernible difference between the performance
//! of TSO and WMM"; TSO's speculative-load kills are ≤0.25 per 1K
//! instructions.

use cmd_core::sched::SchedulerMode;
use riscy_bench::{
    maybe_profile_run, maybe_telemetry_run, scale_from_args, scheduler_from_args, stats_json_path,
    trace_path, write_artifact,
};
use riscy_ooo::config::{mem_riscyoo_b, CoreConfig, MemModel};
use riscy_ooo::soc::SocSim;
use riscy_workloads::parsec::parsec_suite;
use riscy_workloads::spec::Workload;

fn run(model: MemModel, nthreads: usize, w: &Workload, mode: SchedulerMode) -> (u64, f64) {
    let mut sim = SocSim::new(
        CoreConfig::multicore(model),
        mem_riscyoo_b(),
        nthreads,
        &w.program,
    );
    sim.set_scheduler(mode);
    sim.run_to_completion(w.max_cycles * 4)
        .unwrap_or_else(|e| panic!("{} ({model:?}, {nthreads}t): {e}", w.name));
    let soc = sim.soc();
    let st = soc.cores[0].stats;
    let kills: u64 = soc.cores.iter().map(|c| c.lsq.evict_kills.read()).sum();
    let total_insts: u64 = soc.cores.iter().map(|c| c.stats.committed).sum();
    (
        st.roi_cycles,
        1000.0 * kills as f64 / total_insts.max(1) as f64,
    )
}

fn main() {
    let scale = scale_from_args();
    let mode = scheduler_from_args();
    println!("=== Fig. 20: TSO vs WMM multicore scaling ===");
    println!("(normalized to TSO-1; higher is better; paper: TSO ≈ WMM)\n");
    println!(
        "{:<14}{:>8}{:>8}{:>8}{:>8}{:>8}{:>8}{:>12}",
        "benchmark", "tso-1", "wmm-1", "tso-2", "wmm-2", "tso-4", "wmm-4", "kills/Kinst"
    );
    for w1 in parsec_suite(scale, 1) {
        let (base, _) = run(MemModel::Tso, 1, &w1, mode);
        let mut cols = vec![1.0];
        let mut max_kills: f64 = 0.0;
        for n in [1, 2, 4] {
            for model in [MemModel::Tso, MemModel::Wmm] {
                if n == 1 && model == MemModel::Tso {
                    continue;
                }
                let w = parsec_suite(scale, n)
                    .into_iter()
                    .find(|w| w.name == w1.name)
                    .expect("same suite");
                let (cycles, kills) = run(model, n, &w, mode);
                cols.push(base as f64 / cycles as f64);
                max_kills = max_kills.max(kills);
            }
        }
        print!("{:<14}", w1.name);
        for c in &cols {
            print!("{c:>8.2}");
        }
        println!("{max_kills:>12.3}");
    }

    // Observability artifacts: one dedicated 2-thread TSO run of the first
    // PARSEC proxy, with the pipeline trace enabled if `--trace` asks for
    // it. (Tracing never changes cycle counts — see docs/OBSERVABILITY.md —
    // but the figure rows above stay untraced so the artifact run cannot
    // perturb them even in principle.)
    let stats_path = stats_json_path();
    let trace_out = trace_path();
    if stats_path.is_some() || trace_out.is_some() {
        let w = parsec_suite(scale, 2).remove(0);
        let mut sim = SocSim::new(
            CoreConfig::multicore(MemModel::Tso),
            mem_riscyoo_b(),
            2,
            &w.program,
        );
        sim.set_scheduler(mode);
        if trace_out.is_some() {
            sim.enable_pipe_trace();
        }
        sim.run_to_completion(w.max_cycles * 4)
            .unwrap_or_else(|e| panic!("{} (artifact run): {e}", w.name));
        if let Some(path) = &trace_out {
            write_artifact(path, &sim.pipe_trace());
        }
        if let Some(path) = &stats_path {
            write_artifact(path, &sim.stats_json());
        }
    }
    if let Some(w) = parsec_suite(scale, 2).into_iter().next() {
        maybe_profile_run(
            CoreConfig::multicore(MemModel::Tso),
            mem_riscyoo_b(),
            2,
            &w,
            mode,
        );
        maybe_telemetry_run(
            CoreConfig::multicore(MemModel::Tso),
            mem_riscyoo_b(),
            2,
            &w,
            mode,
        );
    }
}
