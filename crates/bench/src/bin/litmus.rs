//! Litmus-test campaign driver.
//!
//! Runs the classic litmus suite and a stream of seeded random tests on
//! the multi-core SoC, checks every completed run against the axiomatic
//! model's allowed set, and on any escape shrinks the violation and writes
//! a self-contained failure bundle (litmus source, repro line, Konata +
//! Chrome traces, stats, wait-graph).
//!
//! ```text
//! litmus [--model tso|wmm|both] [--cores N] [--sched fast|reference]
//!        [--seed S] [--count N] [--chaos] [--classic-only]
//!        [--inject-evict-bug] [--out-dir DIR] [--json]
//! ```
//!
//! `--inject-evict-bug` disables the TSO `cacheEvict` load kill (the
//! documented verification backdoor) and swaps the chaos generator for the
//! [`riscy_litmus::bug_hunt_plan`] family, demonstrating that the campaign
//! catches a real ordering bug: expect a forbidden `MP` outcome within a
//! few hundred seeds, shrunk and bundled like any other violation.
//!
//! Exit status: `1` if any run observed a forbidden outcome or hung
//! *without* chaos (a liveness failure); `0` otherwise. Hangs under chaos
//! are counted but inconclusive — a fault plan may legitimately push a run
//! past its cycle budget.

use std::path::PathBuf;
use std::process::ExitCode;

use cmd_core::sched::SchedulerMode;
use riscy_litmus::{
    allowed_outcomes, bug_hunt_plan, chaos_plan_for, classic_suite, random_test, run_litmus,
    shrink_violation, write_bundle, Failure, LitmusTest, RunResult, RunSpec,
};
use riscy_ooo::config::MemModel;

struct Args {
    models: Vec<MemModel>,
    cores: usize,
    sched: SchedulerMode,
    seed: u64,
    count: u64,
    chaos: bool,
    classic_only: bool,
    inject_evict_bug: bool,
    out_dir: PathBuf,
    json: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        models: vec![MemModel::Tso, MemModel::Wmm],
        cores: 2,
        sched: SchedulerMode::Fast,
        seed: 0,
        count: 100,
        chaos: false,
        classic_only: false,
        inject_evict_bug: false,
        out_dir: PathBuf::from("target/litmus-failures"),
        json: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .unwrap_or_else(|| die(&format!("{name} needs a value")))
        };
        match a.as_str() {
            "--model" => {
                args.models = match val("--model").as_str() {
                    "tso" => vec![MemModel::Tso],
                    "wmm" => vec![MemModel::Wmm],
                    "both" => vec![MemModel::Tso, MemModel::Wmm],
                    m => die(&format!("unknown model {m:?} (tso|wmm|both)")),
                };
            }
            "--cores" => {
                args.cores = val("--cores")
                    .parse()
                    .unwrap_or_else(|_| die("--cores: not a number"));
            }
            "--sched" => {
                args.sched = match val("--sched").as_str() {
                    "fast" => SchedulerMode::Fast,
                    "reference" => SchedulerMode::Reference,
                    "compiled" => SchedulerMode::Compiled,
                    "parallel" => SchedulerMode::Parallel,
                    s => die(&format!(
                        "unknown scheduler {s:?} (fast|reference|compiled|parallel)"
                    )),
                };
            }
            "--seed" => {
                args.seed = val("--seed")
                    .parse()
                    .unwrap_or_else(|_| die("--seed: not a number"));
            }
            "--count" => {
                args.count = val("--count")
                    .parse()
                    .unwrap_or_else(|_| die("--count: not a number"));
            }
            "--out-dir" => args.out_dir = PathBuf::from(val("--out-dir")),
            "--chaos" => args.chaos = true,
            "--classic-only" => args.classic_only = true,
            "--inject-evict-bug" => args.inject_evict_bug = true,
            "--json" => args.json = true,
            "--help" | "-h" => {
                eprintln!("usage: litmus [--model tso|wmm|both] [--cores N] [--sched fast|reference|compiled|parallel] [--seed S] [--count N] [--chaos] [--classic-only] [--inject-evict-bug] [--out-dir DIR] [--json]");
                std::process::exit(0);
            }
            other => die(&format!("unknown flag {other:?} (try --help)")),
        }
    }
    if args.cores == 0 {
        die("--cores must be >= 1");
    }
    args
}

fn die(msg: &str) -> ! {
    eprintln!("litmus: {msg}");
    std::process::exit(2);
}

#[derive(Default)]
struct Tally {
    runs: u64,
    passed: u64,
    violations: u64,
    fatal_hangs: u64,
    inconclusive_hangs: u64,
    skipped: u64,
}

fn main() -> ExitCode {
    let args = parse_args();
    let mut tally = Tally::default();
    let mut failed = false;

    // Each campaign entry pairs a test with the chaos seed for its run.
    // Undisturbed runs are deterministic, so the classic suite runs once;
    // under chaos (or the injected bug) `--count` controls how many seeded
    // iterations cycle through the suite — each pass perturbs the same
    // shapes differently, which is what hunting needs.
    let mut campaign: Vec<(LitmusTest, u64)> = Vec::new();
    let suite = classic_suite();
    if args.inject_evict_bug {
        // The injected bug is a missing stale-load kill; MP is the
        // canonical shape that exposes it, so the hunt spends every seed
        // there instead of diluting across the suite.
        let mp = suite
            .iter()
            .find(|t| t.name == "MP")
            .expect("MP in suite")
            .clone();
        for i in 0..args.count {
            let seed = args.seed.wrapping_add(i);
            campaign.push((mp.clone(), seed));
        }
    } else if args.chaos {
        for i in 0..args.count.max(suite.len() as u64) {
            let seed = args.seed.wrapping_add(i);
            campaign.push((suite[(i as usize) % suite.len()].clone(), seed));
        }
    } else {
        for t in &suite {
            campaign.push((t.clone(), 0));
        }
    }
    if !args.classic_only && !args.inject_evict_bug {
        for i in 0..args.count {
            let seed = args.seed.wrapping_add(i);
            campaign.push((random_test(seed), seed));
        }
    }

    for (test, seed) in &campaign {
        if test.threads.len() > args.cores {
            tally.skipped += 1;
            continue;
        }
        for &model in &args.models {
            tally.runs += 1;
            let allowed = allowed_outcomes(test, model);
            let mut spec = RunSpec::new(model, args.cores);
            spec.sched = args.sched;
            spec.evict_kill = !args.inject_evict_bug;
            if args.inject_evict_bug {
                spec.chaos = bug_hunt_plan(*seed);
            } else if args.chaos {
                spec.chaos = chaos_plan_for(*seed, args.cores);
            }
            match run_litmus(test, &spec) {
                RunResult::Completed { outcome, .. } => {
                    if allowed.contains(&outcome) {
                        tally.passed += 1;
                        continue;
                    }
                    tally.violations += 1;
                    failed = true;
                    eprintln!(
                        "VIOLATION {} under {model:?}: observed {outcome}",
                        test.name
                    );
                    let shrunk = shrink_violation(test, &spec, &outcome);
                    eprintln!(
                        "  shrunk to {} threads / {} ops; repro: {}",
                        shrunk.test.threads.len(),
                        shrunk.test.num_ops(),
                        shrunk.spec.describe()
                    );
                    let dir = args.out_dir.join(format!(
                        "{}-{model:?}-seed{seed}",
                        test.name.replace(['/', ' '], "_")
                    ));
                    let failure = Failure::Violation {
                        observed: outcome,
                        shrunk,
                    };
                    match write_bundle(&dir, test, &spec, &failure) {
                        Ok(p) => eprintln!("  bundle: {}", p.display()),
                        Err(e) => eprintln!("  bundle write failed: {e}"),
                    }
                }
                RunResult::Hung { reason, wait_graph } => {
                    if args.chaos || args.inject_evict_bug {
                        // A fault plan may stall a run past its budget;
                        // that is noise, not a liveness verdict.
                        tally.inconclusive_hangs += 1;
                        continue;
                    }
                    tally.fatal_hangs += 1;
                    failed = true;
                    eprintln!("HANG {} under {model:?}: {reason}", test.name);
                    let dir = args.out_dir.join(format!(
                        "{}-{model:?}-hang",
                        test.name.replace(['/', ' '], "_")
                    ));
                    let failure = Failure::Hang { reason, wait_graph };
                    match write_bundle(&dir, test, &spec, &failure) {
                        Ok(p) => eprintln!("  bundle: {}", p.display()),
                        Err(e) => eprintln!("  bundle write failed: {e}"),
                    }
                }
            }
        }
    }

    if args.json {
        println!(
            "{{\"runs\": {}, \"passed\": {}, \"violations\": {}, \"fatal_hangs\": {}, \"inconclusive_hangs\": {}, \"skipped_tests\": {}}}",
            tally.runs,
            tally.passed,
            tally.violations,
            tally.fatal_hangs,
            tally.inconclusive_hangs,
            tally.skipped
        );
    } else {
        println!(
            "litmus campaign: {} runs, {} passed, {} violations, {} fatal hangs, {} inconclusive hangs, {} tests skipped (need more cores)",
            tally.runs,
            tally.passed,
            tally.violations,
            tally.fatal_hangs,
            tally.inconclusive_hangs,
            tally.skipped
        );
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
