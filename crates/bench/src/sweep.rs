//! # Sweep aggregation — Pareto reports over campaign config axes
//!
//! The fleet runner persists one `unit_<id>.json` per finished grid cell
//! (see [`crate::fleet`]), each carrying deterministic metrics (IPC,
//! event rates) and the unit's configuration axes (`axis.rob_entries`,
//! `axis.iq_entries`, …). This module folds a finished campaign into a
//! **Pareto sweep report**: per-config mean metrics, an explicit set of
//! objectives with directions (IPC is maximized, structure sizes and
//! miss rates are minimized), and the non-dominated frontier — the
//! paper's Fig. 12/13 "performance vs. cost" tables generalized to
//! arbitrary axes.
//!
//! Determinism: units load in ascending unit-id order, configs aggregate
//! in lexicographic label order, and every number in the report is
//! derived from simulation-domain values only, so `sweep_report.json`
//! bytes are independent of thread count, steal schedule, and
//! kill/resume history — the same contract as
//! [`FleetReport::deterministic_json`](crate::fleet::FleetReport::deterministic_json).

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::path::Path;

use cmd_core::trace::json::JsonWriter;

use crate::fleet::{load_campaign, FleetUnit, UnitStats};

/// One sweep objective: a metric name and the direction that improves it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Objective {
    /// Metric name as it appears in the unit files (without the `m_`
    /// on-disk prefix), e.g. `"ipc"` or `"axis.rob_entries"`.
    pub name: String,
    /// `true` when larger is better (IPC); `false` when smaller is
    /// better (structure sizes, miss rates).
    pub maximize: bool,
}

impl Objective {
    /// Parses a comma-separated `--axes` spec: `name:max` or `name:min`
    /// per entry, e.g. `"ipc:max,axis.rob_entries:min"`.
    ///
    /// # Panics
    ///
    /// Panics on a malformed entry — a typo'd objective would silently
    /// reshape the frontier.
    #[must_use]
    pub fn parse_spec(spec: &str) -> Vec<Objective> {
        spec.split(',')
            .filter(|s| !s.is_empty())
            .map(|entry| {
                let (name, dir) = entry
                    .split_once(':')
                    .unwrap_or_else(|| panic!("sweep: objective {entry:?} is not name:max|min"));
                let maximize = match dir {
                    "max" => true,
                    "min" => false,
                    other => panic!("sweep: objective direction {other:?} (max|min)"),
                };
                Objective {
                    name: name.to_string(),
                    maximize,
                }
            })
            .collect()
    }

    /// The default objectives for a campaign: maximize `ipc` and
    /// minimize every `axis.*` metric the campaign carries, in
    /// lexicographic order — performance against every cost axis that
    /// was actually swept.
    #[must_use]
    pub fn defaults_for(units: &[(FleetUnit, UnitStats)]) -> Vec<Objective> {
        let mut axes: Vec<String> = units
            .iter()
            .flat_map(|(_, s)| s.metrics.iter())
            .filter(|(name, _)| name.starts_with("axis."))
            .map(|(name, _)| name.clone())
            .collect();
        axes.sort_unstable();
        axes.dedup();
        let mut objectives = vec![Objective {
            name: "ipc".to_string(),
            maximize: true,
        }];
        objectives.extend(axes.into_iter().map(|name| Objective {
            name,
            maximize: false,
        }));
        objectives
    }
}

/// One aggregated configuration: the mean of every metric over the
/// config's finished units.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// The config label shared by the units folded into this point.
    pub config: String,
    /// Unit ids aggregated, ascending.
    pub units: Vec<usize>,
    /// Mean metrics, in lexicographic name order.
    pub metrics: Vec<(String, f64)>,
    /// Whether the point survives on the Pareto frontier.
    pub pareto: bool,
}

impl SweepPoint {
    /// The point's value for `name`, when it carries it.
    #[must_use]
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }
}

/// Folds campaign unit records into per-config points (mean metrics over
/// each config's units, configs in lexicographic label order) and marks
/// the Pareto frontier under `objectives`. Units that did not exit
/// cleanly are excluded — a starved or timed-out run's IPC is not a
/// design point.
#[must_use]
pub fn aggregate(units: &[(FleetUnit, UnitStats)], objectives: &[Objective]) -> Vec<SweepPoint> {
    let mut by_config: BTreeMap<&str, Vec<&(FleetUnit, UnitStats)>> = BTreeMap::new();
    for rec in units.iter().filter(|(_, s)| s.exit_ok) {
        by_config.entry(&rec.0.config).or_default().push(rec);
    }
    let mut points: Vec<SweepPoint> = by_config
        .into_iter()
        .map(|(config, recs)| {
            let mut sums: BTreeMap<&str, (f64, u64)> = BTreeMap::new();
            for (_, stats) in recs.iter().map(|r| (&r.0, &r.1)) {
                for (name, value) in &stats.metrics {
                    let slot = sums.entry(name).or_insert((0.0, 0));
                    slot.0 += value;
                    slot.1 += 1;
                }
            }
            SweepPoint {
                config: config.to_string(),
                units: recs.iter().map(|(u, _)| u.id).collect(),
                metrics: sums
                    .into_iter()
                    .map(|(name, (sum, n))| (name.to_string(), sum / n as f64))
                    .collect(),
                pareto: false,
            }
        })
        .collect();
    let flags: Vec<bool> = points
        .iter()
        .map(|p| !points.iter().any(|q| dominates(q, p, objectives)))
        .collect();
    for (point, flag) in points.iter_mut().zip(flags) {
        point.pareto = flag;
    }
    points
}

/// Whether `a` Pareto-dominates `b`: no worse on every objective and
/// strictly better on at least one. A point missing an objective metric
/// cannot dominate and cannot be dominated on that axis (treated as
/// incomparable, never as zero).
fn dominates(a: &SweepPoint, b: &SweepPoint, objectives: &[Objective]) -> bool {
    let mut strictly_better = false;
    for obj in objectives {
        let (Some(va), Some(vb)) = (a.metric(&obj.name), b.metric(&obj.name)) else {
            return false;
        };
        let (va, vb) = if obj.maximize { (va, vb) } else { (vb, va) };
        if va < vb {
            return false;
        }
        if va > vb {
            strictly_better = true;
        }
    }
    strictly_better
}

/// Serializes the sweep report: objectives, per-config points with their
/// mean metrics and frontier flags, and the frontier's config labels.
#[must_use]
pub fn sweep_json(points: &[SweepPoint], objectives: &[Objective]) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.schema_version();
    w.key("objectives");
    w.begin_array();
    for obj in objectives {
        w.begin_object();
        w.field_str("name", &obj.name);
        w.field_str("dir", if obj.maximize { "max" } else { "min" });
        w.end_object();
    }
    w.end_array();
    w.field_u64("configs", points.len() as u64);
    w.key("points");
    w.begin_array();
    for p in points {
        w.begin_object();
        w.field_str("config", &p.config);
        w.key("units");
        w.begin_array();
        for id in &p.units {
            w.number_u64(*id as u64);
        }
        w.end_array();
        w.key("metrics");
        w.begin_object();
        for (name, value) in &p.metrics {
            w.field_f64(name, *value);
        }
        w.end_object();
        w.key("pareto");
        w.boolean(p.pareto);
        w.end_object();
    }
    w.end_array();
    w.key("frontier");
    w.begin_array();
    for p in points.iter().filter(|p| p.pareto) {
        w.string(&p.config);
    }
    w.end_array();
    w.end_object();
    w.finish()
}

/// Loads a campaign directory and produces its sweep report JSON under
/// `objectives` (or [`Objective::defaults_for`] when empty).
///
/// # Panics
///
/// Panics when the campaign directory cannot be read.
#[must_use]
pub fn sweep_report(dir: &Path, objectives: &[Objective]) -> String {
    let units = load_campaign(dir);
    let objectives = if objectives.is_empty() {
        Objective::defaults_for(&units)
    } else {
        objectives.to_vec()
    };
    let points = aggregate(&units, &objectives);
    sweep_json(&points, &objectives)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(id: usize, config: &str, metrics: &[(&str, f64)]) -> (FleetUnit, UnitStats) {
        (
            FleetUnit {
                id,
                seed: 0,
                config: config.to_string(),
                workload: "w".to_string(),
            },
            UnitStats {
                cycles: 100,
                insts: 50,
                exit_ok: true,
                metrics: metrics
                    .iter()
                    .map(|(n, v)| ((*n).to_string(), *v))
                    .collect(),
            },
        )
    }

    #[test]
    fn frontier_keeps_non_dominated_points() {
        // big: fast but costly; small: slow but cheap; bad: dominated by
        // small on both axes.
        let units = vec![
            unit(0, "big", &[("ipc", 1.0), ("axis.rob_entries", 64.0)]),
            unit(1, "small", &[("ipc", 0.8), ("axis.rob_entries", 32.0)]),
            unit(2, "bad", &[("ipc", 0.7), ("axis.rob_entries", 48.0)]),
        ];
        let objectives = Objective::defaults_for(&units);
        assert_eq!(objectives.len(), 2);
        let points = aggregate(&units, &objectives);
        let pareto: Vec<(&str, bool)> = points
            .iter()
            .map(|p| (p.config.as_str(), p.pareto))
            .collect();
        assert_eq!(pareto, vec![("bad", false), ("big", true), ("small", true)]);
    }

    #[test]
    fn aggregation_means_over_units_and_skips_failures() {
        let mut failed = unit(2, "a", &[("ipc", 9.0)]);
        failed.1.exit_ok = false;
        let units = vec![
            unit(0, "a", &[("ipc", 1.0)]),
            unit(1, "a", &[("ipc", 3.0)]),
            failed,
        ];
        let objectives = Objective::parse_spec("ipc:max");
        let points = aggregate(&units, &objectives);
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].units, vec![0, 1]);
        assert!((points[0].metric("ipc").unwrap() - 2.0).abs() < 1e-12);
        assert!(points[0].pareto);
    }

    #[test]
    fn report_json_carries_schema_and_frontier() {
        let units = vec![unit(0, "a", &[("ipc", 1.0)])];
        let objectives = Objective::parse_spec("ipc:max");
        let points = aggregate(&units, &objectives);
        let json = sweep_json(&points, &objectives);
        assert!(json.contains("\"schema_version\":1"), "{json}");
        assert!(json.contains("\"frontier\":[\"a\"]"), "{json}");
        assert!(json.contains("\"dir\":\"max\""), "{json}");
    }

    #[test]
    fn objective_spec_parses_directions() {
        let objs = Objective::parse_spec("ipc:max,axis.rob_entries:min");
        assert_eq!(objs.len(), 2);
        assert!(objs[0].maximize);
        assert!(!objs[1].maximize);
    }
}
