//! # riscy-bench — harnesses regenerating the paper's evaluation
//!
//! One binary per table/figure of §VI (see DESIGN.md's experiment index):
//! `fig12_config` … `fig21_synthesis`. Each prints the same rows/series
//! the paper reports. Absolute numbers differ (this substrate is a
//! simulator, the paper's was an FPGA + silicon comparators); the *shape* —
//! who wins, by roughly what factor, where the crossovers fall — is the
//! reproduction target.
//!
//! Pass `--scale ref` for benchmark-sized runs (the default `test` scale
//! keeps CI fast).

use cmd_core::prof::ChromeTrace;
use cmd_core::sched::SchedulerMode;
use cmd_core::trace::Tracer;
use riscy_baseline::{InOrderConfig, InOrderSim};
use riscy_mem::system::MemConfig;
use riscy_ooo::config::CoreConfig;
use riscy_ooo::soc::SocSim;
use riscy_workloads::spec::{Scale, Workload};
use std::cell::RefCell;
use std::rc::Rc;

pub mod fleet;
pub mod sampling;
pub mod sweep;

/// Measured result of one benchmark run on one configuration.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Benchmark name.
    pub name: &'static str,
    /// Cycles inside the region of interest.
    pub roi_cycles: u64,
    /// Instructions committed inside the region of interest.
    pub roi_insts: u64,
    /// Misses/events per 1 K ROI instructions, for Fig. 16.
    pub dtlb_pki: f64,
    /// L2 TLB misses (page walks) per 1 K instructions.
    pub l2tlb_pki: f64,
    /// Branch mispredictions per 1 K instructions.
    pub brpred_pki: f64,
    /// L1 D misses per 1 K instructions.
    pub dcache_pki: f64,
    /// L2 misses per 1 K instructions.
    pub l2_pki: f64,
}

impl RunResult {
    /// Instructions per cycle in the ROI.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.roi_cycles == 0 {
            0.0
        } else {
            self.roi_insts as f64 / self.roi_cycles as f64
        }
    }

    /// The paper's performance metric: 1 / cycle count.
    #[must_use]
    pub fn perf(&self) -> f64 {
        if self.roi_cycles == 0 {
            0.0
        } else {
            1.0 / self.roi_cycles as f64
        }
    }
}

/// Runs one workload on the out-of-order core.
///
/// # Panics
///
/// Panics if the workload fails to complete (a simulator bug).
#[must_use]
pub fn run_ooo(cfg: CoreConfig, mem: MemConfig, w: &Workload) -> RunResult {
    run_ooo_with_scheduler(cfg, mem, w, SchedulerMode::default())
}

/// Runs one workload on the out-of-order core under an explicit rule
/// scheduler (see `docs/SCHEDULING.md`). Both modes are cycle-identical by
/// construction; the choice only affects host throughput.
///
/// # Panics
///
/// Panics if the workload fails to complete (a simulator bug).
#[must_use]
pub fn run_ooo_with_scheduler(
    cfg: CoreConfig,
    mem: MemConfig,
    w: &Workload,
    mode: SchedulerMode,
) -> RunResult {
    let mut sim = SocSim::new(cfg, mem, 1, &w.program);
    sim.set_scheduler(mode);
    sim.run_to_completion(w.max_cycles)
        .unwrap_or_else(|e| panic!("{}: {e}", w.name));
    let soc = sim.soc();
    let st = soc.cores[0].stats;
    let insts = st.roi_insts.max(1);
    let pki = |x: u64| 1000.0 * x as f64 / insts as f64;
    RunResult {
        name: w.name,
        roi_cycles: st.roi_cycles,
        roi_insts: st.roi_insts,
        dtlb_pki: pki(st.dtlb_misses),
        l2tlb_pki: pki(soc.cores[0].tlb.walks),
        brpred_pki: pki(st.mispredicts),
        dcache_pki: pki(soc.mem.dcache_ref(0).stats.misses),
        l2_pki: pki(soc.mem.l2.stats.misses),
    }
}

/// Runs one workload on the in-order baseline.
///
/// # Panics
///
/// Panics if the workload fails to complete.
#[must_use]
pub fn run_inorder(cfg: InOrderConfig, w: &Workload) -> RunResult {
    let mut sim = InOrderSim::new(cfg, &w.program);
    sim.run(w.max_cycles * 4)
        .unwrap_or_else(|c| panic!("{}: stuck after {c} cycles", w.name));
    let st = sim.stats;
    let insts = st.roi_insts.max(1);
    RunResult {
        name: w.name,
        roi_cycles: st.roi_cycles,
        roi_insts: st.roi_insts,
        dtlb_pki: 0.0,
        l2tlb_pki: 0.0,
        brpred_pki: 1000.0 * st.mispredicts as f64 / insts as f64,
        dcache_pki: 0.0,
        l2_pki: 0.0,
    }
}

/// Geometric mean.
///
/// # Panics
///
/// Panics on an empty slice.
#[must_use]
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Harmonic mean.
///
/// # Panics
///
/// Panics on an empty slice.
#[must_use]
pub fn harmean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    xs.len() as f64 / xs.iter().map(|x| 1.0 / x).sum::<f64>()
}

/// Parses `--scale test|ref` from the command line (default `test`).
#[must_use]
pub fn scale_from_args() -> Scale {
    let args: Vec<String> = std::env::args().collect();
    match args.iter().position(|a| a == "--scale") {
        Some(i) if args.get(i + 1).map(String::as_str) == Some("ref") => Scale::Ref,
        _ => Scale::Test,
    }
}

/// The value following `flag` on the command line, if present.
#[must_use]
pub fn path_arg(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// The integer following `flag` on the command line, or `default`.
///
/// # Panics
///
/// Panics when the value is present but not a number — a silently ignored
/// typo would invalidate whatever sweep the operator was running.
#[must_use]
pub fn u64_arg(flag: &str, default: u64) -> u64 {
    path_arg(flag).map_or(default, |v| {
        v.parse()
            .unwrap_or_else(|_| panic!("{flag} {v}: expected an integer"))
    })
}

/// Parses `--stats-json <path>`: where the binary should dump its
/// machine-readable stats snapshot (see `docs/OBSERVABILITY.md`).
#[must_use]
pub fn stats_json_path() -> Option<String> {
    path_arg("--stats-json")
}

/// Parses `--trace <path>`: where to dump a Konata/O3PipeView pipeline
/// trace.
#[must_use]
pub fn trace_path() -> Option<String> {
    path_arg("--trace")
}

/// Parses `--scheduler reference|fast|compiled|parallel` (default: the
/// kernel default, [`SchedulerMode::Fast`]). `reference` re-enables the
/// one-rule-at-a-time oracle scheduler for cross-checking; `compiled`
/// selects the static wave plan with the specialized dispatch loop (see
/// `docs/SCHEDULING.md` §"Compiled schedule"); `parallel` runs the same
/// plan under the wave-barrier shard discipline and collects the
/// wave-occupancy report (see `docs/PARALLELISM.md`).
///
/// # Panics
///
/// Panics on an unrecognized mode name — a silently ignored typo would
/// invalidate whatever comparison the operator was running.
#[must_use]
pub fn scheduler_from_args() -> SchedulerMode {
    match path_arg("--scheduler").as_deref() {
        None | Some("fast") => SchedulerMode::Fast,
        Some("reference") => SchedulerMode::Reference,
        Some("compiled") => SchedulerMode::Compiled,
        Some("parallel") => SchedulerMode::Parallel,
        Some(other) => {
            panic!("--scheduler {other}: expected `reference`, `fast`, `compiled`, or `parallel`")
        }
    }
}

/// Parses `--bench-json <path>`: where a benchmark binary should write
/// its machine-readable throughput metrics (host wall time, simulated
/// cycles per second) for the CI perf gate; see `scripts/perf_gate.py`.
#[must_use]
pub fn bench_json_path() -> Option<String> {
    path_arg("--bench-json")
}

/// The causal-profiler flags shared by every `fig*` binary (see
/// `docs/OBSERVABILITY.md`): `--profile` prints the per-rule host-time
/// report and the top-down table, `--chrome-trace <path>` writes a
/// Perfetto-loadable Chrome trace, `--profile-json <path>` writes the
/// machine-readable profile.
#[derive(Debug, Clone, Default)]
pub struct ProfileOpts {
    /// Print the host-time report and top-down table to stdout.
    pub profile: bool,
    /// Where to write the Chrome trace-event JSON, if requested.
    pub chrome_trace: Option<String>,
    /// Where to write the machine-readable profile JSON, if requested.
    pub profile_json: Option<String>,
}

impl ProfileOpts {
    /// Whether any profiling output was requested.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.profile || self.chrome_trace.is_some() || self.profile_json.is_some()
    }
}

/// Parses the profiling flags from the command line.
#[must_use]
pub fn profile_opts() -> ProfileOpts {
    ProfileOpts {
        profile: std::env::args().any(|a| a == "--profile"),
        chrome_trace: path_arg("--chrome-trace"),
        profile_json: path_arg("--profile-json"),
    }
}

/// Instruction spans exported per core to the Chrome trace before the
/// exporter starts dropping (keeps artifact size bounded).
const SPAN_CAP: usize = 100_000;

/// When any profiling flag is present, runs `w` once more on the
/// out-of-order SoC with the causal profiler, top-down accounting, and
/// instruction spans enabled; prints the rule host-time report and the
/// TMA table, and writes whatever artifacts were requested. A no-op
/// without profiling flags, so `fig*` binaries call it unconditionally on
/// one representative workload.
///
/// # Panics
///
/// Panics if the workload fails to complete or an artifact cannot be
/// written.
pub fn maybe_profile_run(
    cfg: CoreConfig,
    mem: MemConfig,
    num_cores: usize,
    w: &Workload,
    mode: SchedulerMode,
) {
    let opts = profile_opts();
    if !opts.enabled() {
        return;
    }
    let mut sim = SocSim::new(cfg, mem, num_cores, &w.program);
    sim.set_scheduler(mode);
    sim.enable_profiling();
    let chrome = opts.chrome_trace.as_ref().map(|_| {
        sim.enable_inst_spans(SPAN_CAP);
        let t: Rc<RefCell<ChromeTrace>> = Rc::new(RefCell::new(ChromeTrace::new()));
        sim.set_tracer(Tracer::new(t.clone()));
        t
    });
    // 4x the workload's own budget: multicore profiled runs (fig20) need
    // the same slack the figure rows give themselves.
    sim.run_to_completion(w.max_cycles.saturating_mul(4))
        .unwrap_or_else(|e| panic!("{}: {e}", w.name));
    println!("\n=== causal profile: {} ===", w.name);
    print!("{}", sim.report());
    print!("{}", sim.tma_table());
    if let Some(path) = &opts.profile_json {
        write_artifact(path, &sim.profile_json());
    }
    if let Some((path, tr)) = opts.chrome_trace.as_ref().zip(chrome) {
        let mut t = tr.borrow_mut();
        if mode == SchedulerMode::Parallel {
            // Split the rule tracks into one process per wave shard so the
            // parallel schedule is visible in Perfetto (see
            // `docs/PARALLELISM.md`); other modes keep the flat pid-0 view.
            t.set_rule_shards(&sim.wave_shards());
        }
        for (core, spans, _dropped) in sim.instruction_spans() {
            let tid = u32::try_from(core).expect("core id fits u32");
            t.set_inst_track(tid, &format!("core{core}"));
            for s in spans {
                t.add_span(tid, s.mnemonic, s.fetch, s.retire, s.pc, s.seq);
            }
        }
        write_artifact(path, &t.finish_json());
    }
}

/// The telemetry flags shared by every `fig*` binary and `sampled_sim`
/// (see `docs/OBSERVABILITY.md` §telemetry): `--telemetry-json <path>`
/// requests the windowed time-series artifact, `--telemetry-window <N>`
/// sets the sampling period in cycles, `--telemetry-windows <N>` bounds
/// the ring.
#[derive(Debug, Clone, Default)]
pub struct TelemetryOpts {
    /// Where to write the time-series JSON, if requested.
    pub telemetry_json: Option<String>,
    /// Sampling period in cycles.
    pub window: u64,
    /// Ring capacity in windows.
    pub max_windows: usize,
}

/// Parses the telemetry flags from the command line.
///
/// # Panics
///
/// Panics when a window flag carries a non-numeric value.
#[must_use]
pub fn telemetry_opts() -> TelemetryOpts {
    TelemetryOpts {
        telemetry_json: path_arg("--telemetry-json"),
        window: u64_arg("--telemetry-window", cmd_core::telemetry::DEFAULT_WINDOW),
        max_windows: usize::try_from(u64_arg(
            "--telemetry-windows",
            cmd_core::telemetry::DEFAULT_MAX_WINDOWS as u64,
        ))
        .expect("--telemetry-windows fits usize"),
    }
}

/// When `--telemetry-json` is present, runs `w` once more on the
/// out-of-order SoC with windowed telemetry enabled and writes the
/// time-series artifact. A no-op without the flag, so `fig*` binaries
/// call it unconditionally on one representative workload — the figure
/// rows themselves stay uninstrumented (and telemetry would not change
/// them anyway, see the zero-perturbation contract in
/// `docs/OBSERVABILITY.md`).
///
/// # Panics
///
/// Panics if the workload fails to complete or the artifact cannot be
/// written.
pub fn maybe_telemetry_run(
    cfg: CoreConfig,
    mem: MemConfig,
    num_cores: usize,
    w: &Workload,
    mode: SchedulerMode,
) {
    let opts = telemetry_opts();
    let Some(path) = &opts.telemetry_json else {
        return;
    };
    let mut sim = SocSim::new(cfg, mem, num_cores, &w.program);
    sim.set_scheduler(mode);
    sim.enable_telemetry(opts.window, opts.max_windows);
    sim.run_to_completion(w.max_cycles.saturating_mul(4))
        .unwrap_or_else(|e| panic!("{}: {e}", w.name));
    write_artifact(path, &sim.telemetry_json());
}

/// Writes an artifact file requested on the command line.
///
/// # Panics
///
/// Panics when the file cannot be written — the operator asked for the
/// artifact, so a silent miss would be worse than an abort.
pub fn write_artifact(path: &str, contents: &str) {
    std::fs::write(path, contents).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    eprintln!("wrote {path}");
}

/// Serializes per-configuration [`RunResult`] sets as a stats-JSON
/// document: a top-level `ipc` (geometric mean over every run), plus one
/// object per configuration with its per-benchmark metrics.
#[must_use]
pub fn results_json(configs: &[(&str, &[RunResult])]) -> String {
    use cmd_core::trace::json::JsonWriter;
    let ipcs: Vec<f64> = configs
        .iter()
        .flat_map(|(_, rs)| rs.iter().map(RunResult::ipc))
        .filter(|x| *x > 0.0)
        .collect();
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_f64("ipc", if ipcs.is_empty() { 0.0 } else { geomean(&ipcs) });
    w.schema_version();
    w.key("configs");
    w.begin_array();
    for (label, runs) in configs {
        w.begin_object();
        w.field_str("label", label);
        w.key("runs");
        w.begin_array();
        for r in *runs {
            w.begin_object();
            w.field_str("name", r.name);
            w.field_f64("ipc", r.ipc());
            w.field_u64("roi_cycles", r.roi_cycles);
            w.field_u64("roi_insts", r.roi_insts);
            w.field_f64("dtlb_pki", r.dtlb_pki);
            w.field_f64("l2tlb_pki", r.l2tlb_pki);
            w.field_f64("brpred_pki", r.brpred_pki);
            w.field_f64("dcache_pki", r.dcache_pki);
            w.field_f64("l2_pki", r.l2_pki);
            w.end_object();
        }
        w.end_array();
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.finish()
}

/// Serializes flat scalar metrics as a JSON object — the stats-JSON shape
/// of table-style binaries that run no simulation.
#[must_use]
pub fn metrics_json(metrics: &[(&str, f64)]) -> String {
    use cmd_core::trace::json::JsonWriter;
    let mut w = JsonWriter::new();
    w.begin_object();
    w.schema_version();
    for (k, v) in metrics {
        w.field_f64(k, *v);
    }
    w.end_object();
    w.finish()
}

/// Prints a normalized-performance table: one row per benchmark, one
/// column per configuration, last row the geometric mean.
pub fn print_normalized_table(
    title: &str,
    baseline_label: &str,
    results: &[(&str, Vec<RunResult>)],
    baseline: &[RunResult],
) {
    println!("\n=== {title} ===");
    println!("(performance = 1/cycles, normalized to {baseline_label}; higher is better)\n");
    print!("{:<14}", "benchmark");
    for (label, _) in results {
        print!("{label:>14}");
    }
    println!();
    let mut ratios: Vec<Vec<f64>> = vec![Vec::new(); results.len()];
    for (bi, base) in baseline.iter().enumerate() {
        print!("{:<14}", base.name);
        for (ci, (_, rs)) in results.iter().enumerate() {
            let r = rs[bi].perf() / base.perf();
            ratios[ci].push(r);
            print!("{r:>14.3}");
        }
        println!();
    }
    print!("{:<14}", "geo-mean");
    for column in &ratios {
        print!("{:>14.3}", geomean(column));
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn means() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-9);
        assert!((harmean(&[1.0, 1.0]) - 1.0).abs() < 1e-9);
        assert!((harmean(&[2.0, 6.0]) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn results_json_has_top_level_ipc() {
        let r = RunResult {
            name: "mcf",
            roi_cycles: 200,
            roi_insts: 100,
            dtlb_pki: 1.0,
            l2tlb_pki: 0.5,
            brpred_pki: 2.0,
            dcache_pki: 3.0,
            l2_pki: 0.25,
        };
        let json = results_json(&[("T+", &[r])]);
        assert!(json.starts_with("{\"ipc\":0.5,"), "{json}");
        assert!(json.contains("\"schema_version\":1"), "{json}");
        assert!(json.contains("\"label\":\"T+\""), "{json}");
        assert!(json.contains("\"roi_cycles\":200"), "{json}");
    }

    #[test]
    fn metrics_json_is_flat() {
        let json = metrics_json(&[("rob_entries", 64.0), ("width", 2.0)]);
        assert_eq!(
            json,
            "{\"schema_version\":1,\"rob_entries\":64,\"width\":2}"
        );
    }
}
