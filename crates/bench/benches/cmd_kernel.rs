//! Criterion micro-benchmarks of the CMD kernel and the paper's §III/§IV
//! tutorial designs — the ablations DESIGN.md calls out:
//!
//! * `mkGCD` vs `mkTwoGCD` throughput (paper §III-B);
//! * bypassed vs non-bypassed RDYB (paper §IV-C);
//! * `issue<wakeup` vs `wakeup<issue` IQ orderings (paper §IV-D);
//! * raw scheduler overhead per rule firing.

use cmd_core::demo::gcd::{stream_gcd, Gcd, TwoGcd};
use cmd_core::demo::iq::{
    dependent_chain, run_iq_demo, IqDemoConfig, IqOrdering, RdybKind,
};
use cmd_core::prelude::*;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_gcd(c: &mut Criterion) {
    let inputs: Vec<(u32, u32)> = (0..16).map(|i| (5040 + i, 7 + i)).collect();
    let mut g = c.benchmark_group("gcd_throughput");
    g.bench_function("mkGCD", |b| {
        b.iter(|| {
            let clk = Clock::new();
            let unit = Gcd::new(&clk);
            black_box(stream_gcd(clk, unit, inputs.clone()))
        });
    });
    g.bench_function("mkTwoGCD", |b| {
        b.iter(|| {
            let clk = Clock::new();
            let unit = TwoGcd::new(&clk);
            black_box(stream_gcd(clk, unit, inputs.clone()))
        });
    });
    g.finish();
}

fn bench_iq_orderings(c: &mut Criterion) {
    let chain = dependent_chain(48);
    let mut g = c.benchmark_group("iq_rdyb_cm_ablation");
    for (label, cfg) in [
        (
            "bypassed_issue_before_wakeup",
            IqDemoConfig {
                rdyb: RdybKind::Bypassed,
                ordering: IqOrdering::IssueBeforeWakeup,
                iq_size: 8,
            },
        ),
        (
            "bypassed_wakeup_before_issue",
            IqDemoConfig {
                rdyb: RdybKind::Bypassed,
                ordering: IqOrdering::WakeupBeforeIssue,
                iq_size: 8,
            },
        ),
        (
            "nonbypassed_issue_before_wakeup",
            IqDemoConfig {
                rdyb: RdybKind::NonBypassed,
                ordering: IqOrdering::IssueBeforeWakeup,
                iq_size: 8,
            },
        ),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| black_box(run_iq_demo(cfg, &chain).unwrap()));
        });
    }
    g.finish();

    // Also print the architectural cycle counts (the paper's point is
    // about *cycles*, not host time).
    for (label, cfg) in [
        ("issue<wakeup (IV-C)", IqOrdering::IssueBeforeWakeup),
        ("wakeup<issue (IV-D)", IqOrdering::WakeupBeforeIssue),
    ] {
        let stats = run_iq_demo(
            IqDemoConfig {
                ordering: cfg,
                ..IqDemoConfig::default()
            },
            &chain,
        )
        .unwrap();
        eprintln!("[cycles] {label}: {} cycles for 48 dependent ops", stats.cycles);
    }
}

fn bench_scheduler_overhead(c: &mut Criterion) {
    c.bench_function("scheduler_rule_firing", |b| {
        struct St {
            x: Ehr<u64>,
            q: PipelineFifo<u64>,
        }
        let clk = Clock::new();
        let st = St {
            x: Ehr::new(&clk, 0),
            q: PipelineFifo::new(&clk, 4),
        };
        let mut sim = Sim::new(clk, st);
        sim.rule("deq", |s: &mut St| {
            let v = s.q.deq()?;
            s.x.update(|x| *x += v);
            Ok(())
        });
        sim.rule("enq", |s: &mut St| s.q.enq(1));
        b.iter(|| {
            sim.run(100);
            black_box(sim.state().x.read())
        });
    });
}

criterion_group!(benches, bench_gcd, bench_iq_orderings, bench_scheduler_overhead);
criterion_main!(benches);
