//! Campaign telemetry and sweep-aggregation contract (see
//! docs/OBSERVABILITY.md §telemetry):
//!
//! * a 2-axis Pareto sweep over 8 fleet units produces byte-identical
//!   `sweep_report.json` across worker-thread counts AND across a
//!   kill/resume boundary;
//! * per-unit telemetry rings written by the fleet are byte-identical
//!   across thread counts;
//! * heartbeat monitoring streams parse and cover every unit;
//! * a unit that exceeds its wall-clock budget leaves a structured
//!   stall bundle behind and is flagged by the watch renderer.

use std::path::{Path, PathBuf};

use cmd_core::sched::SchedulerMode;
use riscy_bench::fleet::{
    fleet_grid, load_campaign, run_fleet, watch_snapshot, FleetOpts, SocFleet,
};
use riscy_bench::sweep::{aggregate, sweep_report, Objective};
use riscy_isa::asm::{Assembler, Program};
use riscy_isa::mem::{DRAM_BASE, MMIO_EXIT};
use riscy_isa::reg::Gpr;
use riscy_workloads::spec::Workload;

fn tiny_prog() -> Program {
    let mut a = Assembler::new(DRAM_BASE);
    a.li(Gpr::s(1), 40);
    a.label("loop");
    a.addi(Gpr::s(1), Gpr::s(1), -1);
    a.bnez(Gpr::s(1), "loop");
    a.li(Gpr::t(6), MMIO_EXIT as i64);
    a.li(Gpr::t(5), 1);
    a.sd(Gpr::t(5), 0, Gpr::t(6));
    a.label("hang");
    a.j("hang");
    a.assemble()
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sweep-test-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn harness() -> SocFleet {
    SocFleet {
        workloads: vec![Workload {
            name: "tiny",
            program: tiny_prog(),
            max_cycles: 200_000,
        }],
        sched: SchedulerMode::Fast,
        chaos: false,
    }
}

/// A 2-axis sweep grid: 2 seeds × 4 parametric configs (ROB and IQ both
/// swept) × 1 workload = 8 units.
fn sweep_units() -> Vec<riscy_bench::fleet::FleetUnit> {
    fleet_grid(
        &[0, 1],
        &[
            "t+:rob=32:iq=16",
            "t+:rob=32:iq=32",
            "t+:rob=64:iq=16",
            "t+:rob=64:iq=32",
        ],
        &[&Workload {
            name: "tiny",
            program: tiny_prog(),
            max_cycles: 200_000,
        }],
    )
}

fn run_campaign(dir: &Path, threads: usize, stop_after: Option<usize>) {
    let h = harness();
    let report = run_fleet(
        sweep_units(),
        &FleetOpts {
            threads,
            campaign_dir: Some(dir.to_path_buf()),
            stop_after,
            telemetry: Some((100, 16)),
            heartbeat_every: Some(100),
            ..FleetOpts::default()
        },
        |u, ctx| h.run_unit(u, ctx),
    );
    if stop_after.is_none() {
        assert_eq!(report.records.len(), 8);
        assert!(report.all_ok(), "sweep units must exit cleanly");
    }
}

const AXES: &str = "ipc:max,axis.rob_entries:min,axis.iq_entries:min";

#[test]
fn sweep_report_bytes_identical_across_thread_counts_and_kill_resume() {
    let objectives = Objective::parse_spec(AXES);
    let dir1 = tmp_dir("threads1");
    run_campaign(&dir1, 1, None);
    let want = sweep_report(&dir1, &objectives);
    assert!(want.contains("\"schema_version\":1"), "{want}");
    assert!(want.contains("\"configs\":4"), "{want}");

    for threads in [2, 4] {
        let dir = tmp_dir(&format!("threads{threads}"));
        run_campaign(&dir, threads, None);
        assert_eq!(
            sweep_report(&dir, &objectives),
            want,
            "sweep report diverged at {threads} threads"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    // Kill after 3 units, then resume: the aggregate is byte-identical.
    let dir = tmp_dir("killed");
    run_campaign(&dir, 2, Some(3));
    run_campaign(&dir, 2, None);
    assert_eq!(
        sweep_report(&dir, &objectives),
        want,
        "sweep report diverged across kill/resume"
    );

    // The frontier is sane: the cheapest config always survives, and at
    // least one config is dominated (bigger structures, no extra IPC on
    // this tiny loop).
    let units = load_campaign(&dir1);
    assert_eq!(units.len(), 8);
    let points = aggregate(&units, &objectives);
    assert_eq!(points.len(), 4);
    let cheapest = points
        .iter()
        .find(|p| p.config == "t+:rob=32:iq=16")
        .unwrap();
    assert!(cheapest.pareto, "the cheapest config cannot be dominated");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&dir1).ok();
}

#[test]
fn unit_telemetry_files_are_byte_identical_across_thread_counts() {
    let dir1 = tmp_dir("tel1");
    run_campaign(&dir1, 1, None);
    let want: Vec<String> = (0..8)
        .map(|id| {
            std::fs::read_to_string(dir1.join(format!("unit_{id}.telemetry.json")))
                .expect("telemetry file exists")
        })
        .collect();
    assert!(want[0].contains("\"window_cycles\":100"), "{}", want[0]);
    assert!(want[0].contains("c0.committed"), "{}", want[0]);
    for threads in [2, 4] {
        let dir = tmp_dir(&format!("tel{threads}"));
        run_campaign(&dir, threads, None);
        for (id, expected) in want.iter().enumerate() {
            let got = std::fs::read_to_string(dir.join(format!("unit_{id}.telemetry.json")))
                .expect("telemetry file exists");
            assert_eq!(
                &got, expected,
                "unit {id} telemetry diverged at {threads} threads"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
    std::fs::remove_dir_all(&dir1).ok();
}

#[test]
fn heartbeats_cover_every_unit_and_survive_resume() {
    let dir = tmp_dir("beats");
    run_campaign(&dir, 2, Some(3));
    let first = std::fs::read_to_string(dir.join("heartbeats.ndjson")).unwrap();
    assert!(!first.is_empty());
    run_campaign(&dir, 2, None);
    let text = std::fs::read_to_string(dir.join("heartbeats.ndjson")).unwrap();
    assert!(
        text.starts_with(&first),
        "resume must preserve earlier heartbeat history"
    );
    for id in 0..8 {
        assert!(
            text.contains(&format!("{{\"unit\":{id},\"phase\":\"start\"")),
            "unit {id} never reported a start beat"
        );
        assert!(
            text.contains(&format!("{{\"unit\":{id},\"phase\":\"done\"")),
            "unit {id} never reported a done beat"
        );
    }
    let snapshot = watch_snapshot(&dir);
    assert!(snapshot.contains("8 units finished"), "{snapshot}");
    assert!(!snapshot.contains("STALLED"), "{snapshot}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn timed_out_unit_leaves_a_stall_bundle_and_is_flagged() {
    let dir = tmp_dir("stall");
    let h = harness();
    let report = run_fleet(
        sweep_units().into_iter().take(1).collect(),
        &FleetOpts {
            threads: 1,
            campaign_dir: Some(dir.clone()),
            unit_timeout: Some(0.0),
            heartbeat_every: Some(100),
            ..FleetOpts::default()
        },
        |u, ctx| h.run_unit(u, ctx),
    );
    assert_eq!(report.records.len(), 1);
    assert!(
        !report.records[0].stats.exit_ok,
        "a timed-out unit must not report success"
    );
    let bundle = std::fs::read_to_string(dir.join("unit_0.stall.json")).unwrap();
    assert!(bundle.contains("\"schema_version\":1"), "{bundle}");
    assert!(bundle.contains("\"waits\":["), "{bundle}");
    assert!(bundle.contains("\"stalled_for\":"), "{bundle}");
    let snapshot = watch_snapshot(&dir);
    assert!(snapshot.contains("STALLED"), "{snapshot}");
    assert!(snapshot.contains("unit_0.stall.json"), "{snapshot}");
    std::fs::remove_dir_all(&dir).ok();
}
