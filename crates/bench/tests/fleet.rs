//! Determinism contract of the work-stealing fleet runner (see
//! `docs/PARALLELISM.md` §"Fleet campaigns"):
//!
//! * the deterministic report bytes are identical for any worker-thread
//!   count (1/2/4/8) — the steal schedule is unobservable;
//! * a campaign killed mid-flight (`stop_after`) and resumed from its
//!   campaign directory produces the byte-identical aggregate report of a
//!   single-shot run, and a third invocation is a pure disk replay;
//! * a campaign directory from a *different* grid is rejected, not
//!   silently accepted as progress;
//! * a real SoC fleet under [`SchedulerMode::Parallel`] is run-to-run
//!   deterministic.
//!
//! No test here asserts wall-clock speedups: CI hosts may expose a single
//! core, where the pool degenerates gracefully. Throughput is gated by
//! `scripts/perf_gate.py` on hosts that report their thread count.

use std::path::PathBuf;

use cmd_core::sched::SchedulerMode;
use riscy_bench::fleet::{run_fleet, FleetOpts, FleetUnit, SocFleet, UnitCtx, UnitStats};
use riscy_isa::asm::{Assembler, Program};
use riscy_isa::mem::{DRAM_BASE, MMIO_EXIT};
use riscy_isa::reg::Gpr;
use riscy_workloads::spec::Workload;

/// A deterministic pure function of the unit, with enough busy work that
/// workers genuinely interleave and steal from each other.
fn synth_runner(u: &FleetUnit, _ctx: &UnitCtx<'_>) -> Option<UnitStats> {
    let mut x = u
        .seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(u.id as u64);
    for _ in 0..(1_000 + (u.id % 7) * 500) {
        x = x
            .rotate_left(7)
            .wrapping_mul(31)
            .wrapping_add(u.config.len() as u64 + u.workload.len() as u64);
    }
    Some(UnitStats {
        cycles: 10_000 + x % 90_000,
        insts: 3_000 + x % 7_000,
        exit_ok: !x.is_multiple_of(97),
        metrics: vec![("ipc".to_string(), (x % 100) as f64 / 100.0)],
    })
}

fn synth_units(n: usize) -> Vec<FleetUnit> {
    (0..n)
        .map(|id| FleetUnit {
            id,
            seed: (id as u64) % 5,
            config: if id % 2 == 0 { "t+" } else { "c-" }.to_string(),
            workload: format!("w{}", id % 3),
        })
        .collect()
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fleet-test-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[test]
fn report_bytes_identical_across_thread_counts() {
    let baseline = run_fleet(
        synth_units(25),
        &FleetOpts {
            threads: 1,
            ..FleetOpts::default()
        },
        synth_runner,
    );
    assert_eq!(baseline.records.len(), 25);
    assert!(!baseline.stopped_early);
    let want = baseline.deterministic_json();
    for threads in [2, 4, 8] {
        let report = run_fleet(
            synth_units(25),
            &FleetOpts {
                threads,
                ..FleetOpts::default()
            },
            synth_runner,
        );
        assert_eq!(report.threads, threads);
        assert_eq!(
            report.deterministic_json(),
            want,
            "report bytes diverged at {threads} threads"
        );
    }
}

#[test]
fn killed_campaign_resumes_to_the_single_shot_report() {
    let dir = tmp_dir("resume");
    let single_shot = run_fleet(
        synth_units(25),
        &FleetOpts {
            threads: 3,
            ..FleetOpts::default()
        },
        synth_runner,
    )
    .deterministic_json();

    // "Kill" after 9 units: the completion budget is claimed before a
    // unit is taken, so exactly 9 finish and persist.
    let first = run_fleet(
        synth_units(25),
        &FleetOpts {
            threads: 3,
            campaign_dir: Some(dir.clone()),
            stop_after: Some(9),
            ..FleetOpts::default()
        },
        synth_runner,
    );
    assert!(first.stopped_early);
    assert_eq!(first.records.len(), 9);
    assert!(first.records.iter().all(|r| !r.resumed));

    // Resume: finished units load from disk, the rest run fresh.
    let resumed = run_fleet(
        synth_units(25),
        &FleetOpts {
            threads: 3,
            campaign_dir: Some(dir.clone()),
            ..FleetOpts::default()
        },
        synth_runner,
    );
    assert!(!resumed.stopped_early);
    assert_eq!(resumed.records.len(), 25);
    assert_eq!(resumed.records.iter().filter(|r| r.resumed).count(), 9);
    assert_eq!(
        resumed.deterministic_json(),
        single_shot,
        "resumed report diverged from the single-shot run"
    );

    // A third invocation is a pure replay: nothing simulates.
    let replay = run_fleet(
        synth_units(25),
        &FleetOpts {
            threads: 3,
            campaign_dir: Some(dir.clone()),
            ..FleetOpts::default()
        },
        synth_runner,
    );
    assert_eq!(replay.records.iter().filter(|r| r.resumed).count(), 25);
    assert_eq!(replay.fresh_cycles(), 0);
    assert_eq!(replay.deterministic_json(), single_shot);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn campaign_dir_from_a_different_grid_is_rejected() {
    let dir = tmp_dir("stale");
    run_fleet(
        synth_units(6),
        &FleetOpts {
            threads: 2,
            campaign_dir: Some(dir.clone()),
            ..FleetOpts::default()
        },
        synth_runner,
    );
    // Same unit ids, different seeds: the persisted files describe other
    // grid cells and must not be loaded as progress.
    let mut other = synth_units(6);
    for u in &mut other {
        u.seed += 100;
    }
    let report = run_fleet(
        other,
        &FleetOpts {
            threads: 2,
            campaign_dir: Some(dir.clone()),
            ..FleetOpts::default()
        },
        synth_runner,
    );
    assert_eq!(
        report.records.iter().filter(|r| r.resumed).count(),
        0,
        "stale unit files were accepted as progress"
    );
    assert_eq!(report.records.len(), 6);
    std::fs::remove_dir_all(&dir).ok();
}

/// A few dozen iterations then a clean MMIO exit — small enough for a
/// debug-build test, real enough to execute the whole SoC rule set.
fn tiny_prog() -> Program {
    let mut a = Assembler::new(DRAM_BASE);
    a.li(Gpr::s(1), 40);
    a.label("loop");
    a.addi(Gpr::s(1), Gpr::s(1), -1);
    a.bnez(Gpr::s(1), "loop");
    a.li(Gpr::t(6), MMIO_EXIT as i64);
    a.li(Gpr::t(5), 1);
    a.sd(Gpr::t(5), 0, Gpr::t(6));
    a.label("hang");
    a.j("hang");
    a.assemble()
}

#[test]
fn real_soc_fleet_is_run_to_run_deterministic() {
    let harness = SocFleet {
        workloads: vec![Workload {
            name: "tiny",
            program: tiny_prog(),
            max_cycles: 200_000,
        }],
        sched: SchedulerMode::Parallel,
        chaos: false,
    };
    let units = || {
        vec![
            FleetUnit {
                id: 0,
                seed: 0,
                config: "t+".to_string(),
                workload: "tiny".to_string(),
            },
            FleetUnit {
                id: 1,
                seed: 1,
                config: "c-".to_string(),
                workload: "tiny".to_string(),
            },
        ]
    };
    let run = |threads| {
        run_fleet(
            units(),
            &FleetOpts {
                threads,
                ..FleetOpts::default()
            },
            |u, ctx| harness.run_unit(u, ctx),
        )
    };
    let a = run(1);
    assert!(a.all_ok(), "tiny SoC units failed to exit cleanly");
    assert!(a.total_cycles() > 0);
    let b = run(2);
    assert_eq!(
        a.deterministic_json(),
        b.deterministic_json(),
        "SoC fleet diverged across thread counts"
    );
}

/// Like [`tiny_prog`] but long enough (a few thousand cycles) that a
/// checkpoint stride of 1 500 cycles fires several times per unit.
fn longer_prog() -> Program {
    let mut a = Assembler::new(DRAM_BASE);
    a.li(Gpr::s(1), 2_000);
    a.label("loop");
    a.addi(Gpr::s(1), Gpr::s(1), -1);
    a.bnez(Gpr::s(1), "loop");
    a.li(Gpr::t(6), MMIO_EXIT as i64);
    a.li(Gpr::t(5), 1);
    a.sd(Gpr::t(5), 0, Gpr::t(6));
    a.label("hang");
    a.j("hang");
    a.assemble()
}

#[test]
fn checkpointed_kill_resumes_mid_unit_to_the_single_shot_report() {
    let dir = tmp_dir("ckpt");
    let harness = SocFleet {
        workloads: vec![Workload {
            name: "longer",
            program: longer_prog(),
            max_cycles: 500_000,
        }],
        sched: SchedulerMode::Fast,
        chaos: false,
    };
    let units = || {
        vec![
            FleetUnit {
                id: 0,
                seed: 0,
                config: "t+".to_string(),
                workload: "longer".to_string(),
            },
            FleetUnit {
                id: 1,
                seed: 1,
                config: "c-".to_string(),
                workload: "longer".to_string(),
            },
        ]
    };
    // The reference: one uninterrupted invocation, no persistence at all.
    let single_shot = run_fleet(
        units(),
        &FleetOpts {
            threads: 1,
            ..FleetOpts::default()
        },
        |u, ctx| harness.run_unit(u, ctx),
    );
    assert!(single_shot.all_ok());
    let want = single_shot.deterministic_json();

    // "Kill" the campaign right after the first checkpoint lands: the
    // in-flight unit is abandoned mid-run with only its `.ckpt` on disk.
    let first = run_fleet(
        units(),
        &FleetOpts {
            threads: 1,
            campaign_dir: Some(dir.clone()),
            checkpoint_every: Some(1_500),
            abort_after_ckpts: Some(1),
            ..FleetOpts::default()
        },
        |u, ctx| harness.run_unit(u, ctx),
    );
    assert!(first.stopped_early);
    assert!(
        first.records.len() < 2,
        "the kill should leave at least one unit unfinished"
    );
    let ckpts = || {
        std::fs::read_dir(&dir)
            .map(|d| {
                d.filter_map(Result::ok)
                    .filter(|e| e.path().extension().is_some_and(|x| x == "ckpt"))
                    .count()
            })
            .unwrap_or(0)
    };
    assert_eq!(ckpts(), 1, "the killed unit must leave its checkpoint");

    // Resume: the killed unit restores from its checkpoint mid-run; the
    // aggregate report bytes match the uninterrupted run exactly.
    let resumed = run_fleet(
        units(),
        &FleetOpts {
            threads: 1,
            campaign_dir: Some(dir.clone()),
            checkpoint_every: Some(1_500),
            ..FleetOpts::default()
        },
        |u, ctx| harness.run_unit(u, ctx),
    );
    assert!(!resumed.stopped_early);
    assert_eq!(resumed.records.len(), 2);
    assert_eq!(
        resumed.deterministic_json(),
        want,
        "checkpoint-resumed report diverged from the single-shot run"
    );
    assert_eq!(ckpts(), 0, "finished units must delete their checkpoints");
    std::fs::remove_dir_all(&dir).ok();
}
