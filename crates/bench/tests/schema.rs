//! Every machine-readable artifact this workspace emits carries the
//! shared `schema_version` field, written by one helper
//! (`JsonWriter::schema_version`, see `docs/OBSERVABILITY.md`). This
//! test exercises each emitter end to end so a new artifact that forgets
//! the field — or hand-rolls a divergent one — fails CI here rather
//! than surprising a downstream report parser.

use cmd_core::sched::SchedulerMode;
use riscy_bench::fleet::{run_fleet, FleetOpts, FleetUnit, SocFleet, UnitCtx};
use riscy_bench::sampling::{sample_report_json, SampleEstimate, SamplePoint, SampledWorkload};
use riscy_bench::sweep::{aggregate, sweep_json, Objective};
use riscy_bench::{metrics_json, results_json, RunResult};
use riscy_isa::asm::{Assembler, Program};
use riscy_isa::mem::{DRAM_BASE, MMIO_EXIT};
use riscy_isa::reg::Gpr;
use riscy_ooo::config::{mem_riscyoo_b, CoreConfig};
use riscy_ooo::soc::SocSim;
use riscy_workloads::spec::Workload;

fn tiny_prog() -> Program {
    let mut a = Assembler::new(DRAM_BASE);
    a.li(Gpr::s(1), 20);
    a.label("loop");
    a.addi(Gpr::s(1), Gpr::s(1), -1);
    a.bnez(Gpr::s(1), "loop");
    a.li(Gpr::t(6), MMIO_EXIT as i64);
    a.li(Gpr::t(5), 1);
    a.sd(Gpr::t(5), 0, Gpr::t(6));
    a.label("hang");
    a.j("hang");
    a.assemble()
}

fn assert_schema(label: &str, json: &str) {
    assert!(
        json.contains("\"schema_version\":1"),
        "{label} emitted a document without schema_version: {json}"
    );
}

#[test]
fn every_artifact_emitter_carries_schema_version() {
    // Bench-table emitters.
    let run = RunResult {
        name: "mcf",
        roi_cycles: 200,
        roi_insts: 100,
        dtlb_pki: 1.0,
        l2tlb_pki: 0.5,
        brpred_pki: 2.0,
        dcache_pki: 3.0,
        l2_pki: 0.25,
    };
    assert_schema("results_json", &results_json(&[("T+", &[run])]));
    assert_schema("metrics_json", &metrics_json(&[("x", 1.0)]));

    // Sampled-simulation report.
    let sampled = SampledWorkload {
        name: "mcf".to_string(),
        full_ipc: 0.5,
        full_wall_s: 2.0,
        estimate: SampleEstimate {
            total_insts: 1000,
            points: vec![SamplePoint {
                start_inst: 0,
                insts: 100,
                cycles: 200,
            }],
            ff_insts: 900,
        },
        est_ipc: 0.5,
        sampled_wall_s: 0.5,
    };
    assert_schema("sample_report_json", &sample_report_json(&[sampled]));

    // Fleet campaign artifacts: the aggregate report and the sweep
    // report over a real (tiny) SoC unit.
    let harness = SocFleet {
        workloads: vec![Workload {
            name: "tiny",
            program: tiny_prog(),
            max_cycles: 200_000,
        }],
        sched: SchedulerMode::Fast,
        chaos: false,
    };
    let units = vec![FleetUnit {
        id: 0,
        seed: 0,
        config: "t+".to_string(),
        workload: "tiny".to_string(),
    }];
    let report = run_fleet(
        units,
        &FleetOpts {
            threads: 1,
            ..FleetOpts::default()
        },
        |u, ctx| harness.run_unit(u, ctx),
    );
    assert_schema("fleet deterministic_json", &report.deterministic_json());
    let recs: Vec<_> = report
        .records
        .iter()
        .map(|r| (r.unit.clone(), r.stats.clone()))
        .collect();
    let objectives = Objective::defaults_for(&recs);
    let points = aggregate(&recs, &objectives);
    assert_schema("sweep_json", &sweep_json(&points, &objectives));

    // SoC-level artifacts: stats, profile, and telemetry JSON.
    let prog = tiny_prog();
    let mut sim = SocSim::new(CoreConfig::riscyoo_t_plus(), mem_riscyoo_b(), 1, &prog);
    sim.enable_profiling();
    sim.enable_telemetry(100, 8);
    sim.run_to_completion(200_000).unwrap();
    assert_schema("stats_json", &sim.stats_json());
    assert_schema("profile_json", &sim.profile_json());
    assert_schema("telemetry_json", &sim.telemetry_json());

    // Persisted unit files carry the field too.
    let dir = std::env::temp_dir().join(format!("schema-test-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    run_fleet(
        vec![FleetUnit {
            id: 0,
            seed: 0,
            config: "t+".to_string(),
            workload: "tiny".to_string(),
        }],
        &FleetOpts {
            threads: 1,
            campaign_dir: Some(dir.clone()),
            ..FleetOpts::default()
        },
        |u, ctx| harness.run_unit(u, ctx),
    );
    let unit_file = std::fs::read_to_string(dir.join("unit_0.json")).unwrap();
    assert_schema("unit_json", &unit_file);
    std::fs::remove_dir_all(&dir).ok();

    // And a plain single-shot runner still works without any context.
    let stats = harness
        .run_unit(
            &FleetUnit {
                id: 0,
                seed: 0,
                config: "t+".to_string(),
                workload: "tiny".to_string(),
            },
            &UnitCtx::none(),
        )
        .unwrap();
    assert!(stats.exit_ok);
}
