//! The shared, inclusive L2 cache: MSI directory parent, DRAM client, and
//! server for the page walkers' uncached loads (paper §V-D, Fig. 11).
//!
//! The L2 processes each line with a *blocking transaction* — exactly one
//! in-flight transaction per line — which is the structure of the
//! deductively verified protocol the paper builds on. Transactions move
//! through phases: recall the victim's child copies, fetch from DRAM,
//! downgrade conflicting children, then grant.

use std::collections::VecDeque;

use riscy_isa::mem::SparseMem;

use crate::cache::{read_from_line, CacheArray, CacheGeom};
use crate::dram::{Dram, DramConfig, DramReq};
use crate::msg::{CacheStats, ChildReq, ChildToParent, DownReq, Line, Msi, ParentResp};

/// Configuration of the shared L2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L2Config {
    /// Total size in bytes.
    pub size_bytes: usize,
    /// Associativity.
    pub ways: usize,
    /// Maximum concurrent transactions (paper: 16).
    pub max_trans: usize,
    /// DRAM behind this L2.
    pub dram: DramConfig,
    /// MESI extension: grant E (exclusive-clean) to a sole reader so its
    /// first store avoids an upgrade round trip (paper §V-D's suggested
    /// extension; `false` = the paper's verified MSI).
    pub mesi: bool,
}

impl Default for L2Config {
    /// The paper's RiscyOO-B L2: 1 MB, 16-way, max 16 requests.
    fn default() -> Self {
        L2Config {
            size_bytes: 1024 * 1024,
            ways: 16,
            max_trans: 16,
            dram: DramConfig::default(),
            mesi: false,
        }
    }
}

/// An uncached 8-byte read (page-walker traffic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UncachedReq {
    /// Requesting core.
    pub core: usize,
    /// Client tag.
    pub tag: u64,
    /// Physical byte address (8-byte aligned).
    pub addr: u64,
}

/// Response to an [`UncachedReq`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UncachedResp {
    /// Client tag.
    pub tag: u64,
    /// The 8 bytes read.
    pub data: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Requester {
    Child(ChildReq),
    Uncached(UncachedReq),
}

impl Requester {
    fn line(&self) -> u64 {
        match self {
            Requester::Child(r) => r.line(),
            Requester::Uncached(u) => u.addr & !63,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Waiting for the victim slot's child copies to be recalled.
    EvictVictim,
    /// Waiting for DRAM data.
    WaitDram,
    /// Waiting for conflicting children to downgrade.
    WaitDowngrades,
}

#[derive(Debug, Clone, Copy)]
struct Trans {
    req: Requester,
    line: u64,
    phase: Phase,
    slot: usize,
    dram_issued: bool,
    downs_sent: bool,
}

/// The shared inclusive L2 with its DRAM controller.
#[derive(Debug)]
pub struct L2 {
    cfg: L2Config,
    array: CacheArray,
    num_children: usize,
    /// Requests arriving from the crossbar.
    pub req_in: VecDeque<ChildReq>,
    /// Writebacks/acks arriving from the crossbar.
    pub msg_in: VecDeque<ChildToParent>,
    /// Grants to each child (drained by the crossbar).
    pub resp_out: Vec<VecDeque<ParentResp>>,
    /// Downgrade requests to each child (drained by the crossbar).
    pub down_out: Vec<VecDeque<DownReq>>,
    /// Page-walker reads in.
    pub uncached_in: VecDeque<UncachedReq>,
    /// Page-walker reads out, per core.
    pub uncached_out: Vec<VecDeque<UncachedResp>>,
    room: VecDeque<Requester>,
    trans: Vec<Trans>,
    dram: Dram,
    /// Hit/miss statistics.
    pub stats: CacheStats,
}

impl L2 {
    /// Creates an empty L2 serving `num_children` L1 caches and
    /// `num_cores` page walkers.
    #[must_use]
    pub fn new(cfg: L2Config, num_children: usize, num_cores: usize) -> Self {
        L2 {
            cfg,
            array: CacheArray::new(CacheGeom::from_size(cfg.size_bytes, cfg.ways)),
            num_children,
            req_in: VecDeque::new(),
            msg_in: VecDeque::new(),
            resp_out: (0..num_children).map(|_| VecDeque::new()).collect(),
            down_out: (0..num_children).map(|_| VecDeque::new()).collect(),
            uncached_in: VecDeque::new(),
            uncached_out: (0..num_cores).map(|_| VecDeque::new()).collect(),
            room: VecDeque::new(),
            trans: Vec::new(),
            dram: Dram::new(cfg.dram),
            stats: CacheStats::default(),
        }
    }

    /// Whether all queues and transactions are drained (test helper).
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.req_in.is_empty()
            && self.msg_in.is_empty()
            && self.room.is_empty()
            && self.trans.is_empty()
    }

    /// Non-intrusive peek at a resident line's data (no LRU touch, no
    /// statistics). `None` when the line is not cached in the L2. The copy
    /// is stale while a child holds the line in M — callers must consult
    /// the L1s first (see
    /// [`MemSystem::peek_coherent`](crate::system::MemSystem::peek_coherent)).
    #[must_use]
    pub fn peek_line(&self, line: u64) -> Option<&crate::msg::Line> {
        let i = self.array.lookup(line)?;
        Some(&*self.array.slot(i).data)
    }

    /// One simulation cycle.
    pub fn tick(&mut self, now: u64, mem: &mut SparseMem) {
        self.absorb_messages(mem);
        self.dram.tick(now, mem);
        self.absorb_dram();
        self.advance_trans();
        self.accept_requests();
    }

    fn absorb_messages(&mut self, mem: &mut SparseMem) {
        while let Some(msg) = self.msg_in.pop_front() {
            match msg {
                ChildToParent::PutM { child, line, data } => {
                    if let Some(idx) = self.array.lookup(line) {
                        let slot = self.array.slot_mut(idx);
                        slot.data = data;
                        slot.dirty = true;
                        if slot.owner == Some(child) {
                            slot.owner = None;
                        }
                    } else {
                        // Shouldn't occur under inclusivity, but never lose data.
                        mem.write_line(line, &data);
                    }
                }
                ChildToParent::DownAck {
                    child,
                    line,
                    data,
                    to,
                } => {
                    if let Some(idx) = self.array.lookup(line) {
                        let slot = self.array.slot_mut(idx);
                        if let Some(d) = data {
                            slot.data = d;
                            slot.dirty = true;
                        }
                        match to {
                            Msi::I => {
                                slot.sharers &= !(1 << child);
                                if slot.owner == Some(child) {
                                    slot.owner = None;
                                }
                            }
                            Msi::S => {
                                if slot.owner == Some(child) {
                                    slot.owner = None;
                                    slot.sharers |= 1 << child;
                                }
                            }
                            // Children never ack upward (E/M are never the
                            // target of a downgrade request).
                            Msi::E | Msi::M => {}
                        }
                    }
                }
            }
        }
    }

    fn absorb_dram(&mut self) {
        while let Some(resp) = self.dram.pop_resp() {
            if let Some(t) = self
                .trans
                .iter_mut()
                .find(|t| t.line == resp.line && t.phase == Phase::WaitDram)
            {
                self.array.install(t.slot, t.line, Msi::S, resp.data);
                self.array.slot_mut(t.slot).locked = true;
                t.phase = Phase::WaitDowngrades;
                t.downs_sent = true; // a fresh line has no child copies
            }
        }
    }

    fn advance_trans(&mut self) {
        let mut i = 0;
        while i < self.trans.len() {
            let done = self.step_trans(i);
            if done {
                self.trans.swap_remove(i);
            } else {
                i += 1;
            }
        }
    }

    fn dir_empty(slot: &crate::cache::Slot) -> bool {
        slot.sharers == 0 && slot.owner.is_none()
    }

    fn step_trans(&mut self, ti: usize) -> bool {
        let t = self.trans[ti];
        match t.phase {
            Phase::EvictVictim => {
                let slot = self.array.slot(t.slot);
                if slot.state != Msi::I && !Self::dir_empty(slot) {
                    return false; // acks still arriving
                }
                if slot.state != Msi::I && slot.dirty {
                    if self
                        .dram
                        .request(DramReq::Write {
                            line: slot.line,
                            data: slot.data.clone(),
                        })
                        .is_err()
                    {
                        return false;
                    }
                    self.stats.writebacks += 1;
                }
                let slot = self.array.slot_mut(t.slot);
                slot.state = Msi::I;
                slot.locked = true; // reserved for the incoming line
                self.trans[ti].phase = Phase::WaitDram;
                self.try_issue_dram(ti);
                false
            }
            Phase::WaitDram => {
                self.try_issue_dram(ti);
                false
            }
            Phase::WaitDowngrades => {
                if !self.trans[ti].downs_sent {
                    self.send_downgrades(ti);
                    self.trans[ti].downs_sent = true;
                }
                if self.downgrades_satisfied(ti) {
                    self.grant(ti);
                    true
                } else {
                    false
                }
            }
        }
    }

    fn try_issue_dram(&mut self, ti: usize) {
        if self.trans[ti].dram_issued {
            return;
        }
        let line = self.trans[ti].line;
        if self.dram.request(DramReq::Read { line }).is_ok() {
            self.trans[ti].dram_issued = true;
        }
    }

    fn send_downgrades(&mut self, ti: usize) {
        let t = self.trans[ti];
        let slot = self.array.slot(t.slot);
        match t.req {
            Requester::Child(r) if r.wants_m() => {
                let keep = r.child();
                if let Some(o) = slot.owner {
                    // The requester itself is recalled too when it is the
                    // recorded owner. That only happens for anomalous
                    // requests — a duplicated GetM, or a re-request racing
                    // its own in-flight PutM — and recalling is the one
                    // response that is correct for both: the child acks with
                    // its authoritative copy (or the ack queues behind the
                    // PutM on the same ordered channel), the directory
                    // clears, and the grant returns fresh data. Exempting
                    // the requester instead wedges the transaction forever
                    // on `downgrades_satisfied`.
                    self.down_out[o].push_back(DownReq {
                        line: t.line,
                        to: Msi::I,
                    });
                    self.stats.downgrades += 1;
                }
                let sharers = slot.sharers;
                for c in 0..self.num_children {
                    if c != keep && sharers & (1 << c) != 0 {
                        self.down_out[c].push_back(DownReq {
                            line: t.line,
                            to: Msi::I,
                        });
                        self.stats.downgrades += 1;
                    }
                }
            }
            _ => {
                // Read access: only an M owner conflicts; demote to S.
                if let Some(o) = slot.owner {
                    self.down_out[o].push_back(DownReq {
                        line: t.line,
                        to: Msi::S,
                    });
                    self.stats.downgrades += 1;
                }
            }
        }
    }

    fn downgrades_satisfied(&self, ti: usize) -> bool {
        let t = self.trans[ti];
        let slot = self.array.slot(t.slot);
        match t.req {
            Requester::Child(r) if r.wants_m() => {
                slot.owner.is_none() && slot.sharers & !(1 << r.child()) == 0
            }
            _ => slot.owner.is_none(),
        }
    }

    fn grant(&mut self, ti: usize) {
        let t = self.trans[ti];
        let slot = self.array.slot_mut(t.slot);
        slot.locked = false;
        match t.req {
            Requester::Child(r) => {
                let child = r.child();
                let state = if r.wants_m() {
                    slot.owner = Some(child);
                    slot.sharers = 0;
                    // The child's copy becomes the authoritative one.
                    Msi::M
                } else if self.cfg.mesi && slot.sharers == 0 && slot.owner.is_none() {
                    // MESI: the sole reader gets an exclusive clean copy.
                    // The directory tracks it as the owner; a later silent
                    // E→M upgrade needs no protocol action.
                    slot.owner = Some(child);
                    Msi::E
                } else {
                    slot.sharers |= 1 << child;
                    Msi::S
                };
                let data = slot.data.clone();
                self.resp_out[child].push_back(ParentResp {
                    line: t.line,
                    state,
                    data,
                });
            }
            Requester::Uncached(u) => {
                let data = read_from_line(&slot.data, u.addr, 8);
                self.uncached_out[u.core].push_back(UncachedResp { tag: u.tag, data });
            }
        }
    }

    fn accept_requests(&mut self) {
        while let Some(r) = self.req_in.pop_front() {
            self.room.push_back(Requester::Child(r));
        }
        while let Some(u) = self.uncached_in.pop_front() {
            self.room.push_back(Requester::Uncached(u));
        }
        let mut deferred = VecDeque::new();
        while let Some(req) = self.room.pop_front() {
            if self.trans.len() >= self.cfg.max_trans {
                deferred.push_back(req);
                continue;
            }
            let line = req.line();
            if self.trans.iter().any(|t| t.line == line) {
                // Line-level blocking: one transaction per line at a time.
                deferred.push_back(req);
                continue;
            }
            match self.array.lookup_touch(line) {
                Some(idx) => {
                    self.stats.hits += 1;
                    self.array.slot_mut(idx).locked = true;
                    self.trans.push(Trans {
                        req,
                        line,
                        phase: Phase::WaitDowngrades,
                        slot: idx,
                        dram_issued: false,
                        downs_sent: false,
                    });
                }
                None => match self.array.victim(line) {
                    Some(vic) => {
                        self.stats.misses += 1;
                        // Recall the victim's child copies before reuse.
                        let vslot = self.array.slot(vic);
                        let (vline, vstate) = (vslot.line, vslot.state);
                        if vstate != Msi::I {
                            if let Some(o) = vslot.owner {
                                self.down_out[o].push_back(DownReq {
                                    line: vline,
                                    to: Msi::I,
                                });
                            }
                            let sharers = vslot.sharers;
                            for c in 0..self.num_children {
                                if sharers & (1 << c) != 0 {
                                    self.down_out[c].push_back(DownReq {
                                        line: vline,
                                        to: Msi::I,
                                    });
                                }
                            }
                        }
                        self.array.slot_mut(vic).locked = true;
                        self.trans.push(Trans {
                            req,
                            line,
                            phase: Phase::EvictVictim,
                            slot: vic,
                            dram_issued: false,
                            downs_sent: false,
                        });
                    }
                    None => deferred.push_back(req),
                },
            }
        }
        self.room = deferred;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use riscy_isa::mem::DRAM_BASE;

    fn small_l2(children: usize) -> (L2, SparseMem) {
        let cfg = L2Config {
            size_bytes: 4096,
            ways: 2,
            max_trans: 4,
            dram: DramConfig {
                latency: 5,
                max_outstanding: 8,
                cycles_per_line: 1,
            },
            mesi: false,
        };
        (L2::new(cfg, children, children), SparseMem::new())
    }

    fn run(l2: &mut L2, mem: &mut SparseMem, from: u64, cycles: u64) -> u64 {
        for now in from..from + cycles {
            l2.tick(now, mem);
        }
        from + cycles
    }

    #[test]
    fn gets_miss_fetches_from_dram() {
        let (mut l2, mut mem) = small_l2(1);
        mem.write_u64(DRAM_BASE, 0x77);
        l2.req_in.push_back(ChildReq::GetS {
            child: 0,
            line: DRAM_BASE,
        });
        run(&mut l2, &mut mem, 0, 20);
        let g = l2.resp_out[0].pop_front().expect("grant");
        assert_eq!(g.state, Msi::S);
        assert_eq!(g.data[0], 0x77);
        assert_eq!(l2.stats.misses, 1);
    }

    #[test]
    fn getm_invalidates_other_sharer() {
        let (mut l2, mut mem) = small_l2(2);
        l2.req_in.push_back(ChildReq::GetS {
            child: 0,
            line: DRAM_BASE,
        });
        run(&mut l2, &mut mem, 0, 20);
        l2.resp_out[0].pop_front().expect("S grant");
        l2.req_in.push_back(ChildReq::GetM {
            child: 1,
            line: DRAM_BASE,
        });
        run(&mut l2, &mut mem, 20, 5);
        let d = l2.down_out[0].pop_front().expect("downgrade to sharer");
        assert_eq!(d.to, Msi::I);
        assert!(l2.resp_out[1].is_empty(), "no grant before the ack");
        l2.msg_in.push_back(ChildToParent::DownAck {
            child: 0,
            line: DRAM_BASE,
            data: None,
            to: Msi::I,
        });
        run(&mut l2, &mut mem, 25, 5);
        let g = l2.resp_out[1].pop_front().expect("M grant");
        assert_eq!(g.state, Msi::M);
    }

    #[test]
    fn gets_recalls_dirty_data_from_owner() {
        let (mut l2, mut mem) = small_l2(2);
        l2.req_in.push_back(ChildReq::GetM {
            child: 0,
            line: DRAM_BASE,
        });
        run(&mut l2, &mut mem, 0, 20);
        l2.resp_out[0].pop_front().expect("M grant");
        // Child 1 reads; child 0 must be demoted and its data captured.
        l2.req_in.push_back(ChildReq::GetS {
            child: 1,
            line: DRAM_BASE,
        });
        run(&mut l2, &mut mem, 20, 5);
        let d = l2.down_out[0].pop_front().expect("demote owner");
        assert_eq!(d.to, Msi::S);
        let mut dirty = Box::new([0u8; 64]);
        dirty[0] = 0xee;
        l2.msg_in.push_back(ChildToParent::DownAck {
            child: 0,
            line: DRAM_BASE,
            data: Some(dirty),
            to: Msi::S,
        });
        run(&mut l2, &mut mem, 25, 5);
        let g = l2.resp_out[1].pop_front().expect("S grant with fresh data");
        assert_eq!(g.data[0], 0xee);
    }

    #[test]
    fn uncached_read_served() {
        let (mut l2, mut mem) = small_l2(1);
        mem.write_u64(DRAM_BASE + 0x100, 0xabcd);
        l2.uncached_in.push_back(UncachedReq {
            core: 0,
            tag: 9,
            addr: DRAM_BASE + 0x100,
        });
        run(&mut l2, &mut mem, 0, 20);
        let r = l2.uncached_out[0].pop_front().expect("walker data");
        assert_eq!(
            r,
            UncachedResp {
                tag: 9,
                data: 0xabcd
            }
        );
    }

    #[test]
    fn capacity_eviction_writes_dirty_line_to_dram() {
        let (mut l2, mut mem) = small_l2(1);
        // 4096 B / 64 B / 2 ways = 32 sets; lines 64*32 apart collide.
        let step = 64 * 32;
        let a = DRAM_BASE;
        // Own line a in M, write it back via PutM, then force eviction.
        l2.req_in.push_back(ChildReq::GetM { child: 0, line: a });
        run(&mut l2, &mut mem, 0, 20);
        l2.resp_out[0].pop_front().unwrap();
        let mut dirty = Box::new([0u8; 64]);
        dirty[3] = 0x99;
        l2.msg_in.push_back(ChildToParent::PutM {
            child: 0,
            line: a,
            data: dirty,
        });
        // Fill the set with two more lines to evict `a`.
        l2.req_in.push_back(ChildReq::GetS {
            child: 0,
            line: a + step,
        });
        l2.req_in.push_back(ChildReq::GetS {
            child: 0,
            line: a + 2 * step,
        });
        run(&mut l2, &mut mem, 20, 60);
        assert_eq!(l2.resp_out[0].len(), 2);
        assert_eq!(mem.read_u8(a + 3), 0x99, "dirty data written to DRAM");
    }

    #[test]
    fn line_blocking_serializes_same_line_requests() {
        let (mut l2, mut mem) = small_l2(2);
        l2.req_in.push_back(ChildReq::GetM {
            child: 0,
            line: DRAM_BASE,
        });
        l2.req_in.push_back(ChildReq::GetM {
            child: 1,
            line: DRAM_BASE,
        });
        run(&mut l2, &mut mem, 0, 20);
        assert_eq!(l2.resp_out[0].len(), 1, "first GetM granted");
        assert!(l2.resp_out[1].is_empty(), "second blocked behind first");
        // Child 0 acks the recall triggered by child 1's request.
        let down = l2.down_out[0].pop_front().expect("recall to child 0");
        assert_eq!(down.to, Msi::I);
        l2.msg_in.push_back(ChildToParent::DownAck {
            child: 0,
            line: DRAM_BASE,
            data: Some(Box::new([1; 64])),
            to: Msi::I,
        });
        run(&mut l2, &mut mem, 20, 10);
        let g = l2.resp_out[1]
            .pop_front()
            .expect("second granted after ack");
        assert_eq!(g.state, Msi::M);
        assert_eq!(g.data[0], 1, "sees child 0's data");
    }
}

impl L2 {
    /// Debug occupancy: `(req_in, msg_in, room, trans, uncached_in)`.
    #[must_use]
    pub fn debug_occupancy(&self) -> (usize, usize, usize, usize, usize) {
        (
            self.req_in.len(),
            self.msg_in.len(),
            self.room.len(),
            self.trans.len(),
            self.uncached_in.len(),
        )
    }

    /// Whether a functional-warming install of `line` can succeed: the line
    /// is already resident or its set has a free way.
    #[must_use]
    pub fn warm_room(&self, line: u64) -> bool {
        self.array.lookup(line).is_some() || self.array.free_slot(line).is_some()
    }

    /// Functional-warming install (fast-forward): places `line` in S state
    /// into a free way, with `sharer`'s bit set when an L1 copy is being
    /// installed alongside (`None` warms the L2 level alone). Never evicts
    /// (inclusion would force L1 invalidations) and issues no DRAM
    /// traffic. Returns whether the line is resident afterwards; when it
    /// already is, only the sharer bit is added.
    pub fn warm_insert(&mut self, line: u64, data: &Line, sharer: Option<usize>) -> bool {
        if let Some(idx) = self.array.lookup(line) {
            if let Some(s) = sharer {
                self.array.slot_mut(idx).sharers |= 1 << s;
            }
            return true;
        }
        let Some(idx) = self.array.free_slot(line) else {
            return false;
        };
        self.array.install(idx, line, Msi::S, Box::new(*data));
        self.array.slot_mut(idx).sharers = sharer.map_or(0, |s| 1 << s);
        true
    }
}

cmd_core::snap_struct!(UncachedReq { core, tag, addr });
cmd_core::snap_struct!(UncachedResp { tag, data });

cmd_core::snap_enum!(Requester {
    0 => Child(c),
    1 => Uncached(u),
});

cmd_core::snap_enum!(Phase {
    0 => EvictVictim,
    1 => WaitDram,
    2 => WaitDowngrades,
});

cmd_core::snap_struct!(Trans {
    req,
    line,
    phase,
    slot,
    dram_issued,
    downs_sent,
});

impl cmd_core::snap::Snapshot for L2 {
    fn snap_save(&self, w: &mut cmd_core::snap::SnapWriter) {
        use cmd_core::snap::Snap;
        self.array.snap_save(w);
        self.req_in.save(w);
        self.msg_in.save(w);
        self.resp_out.save(w);
        self.down_out.save(w);
        self.uncached_in.save(w);
        self.uncached_out.save(w);
        self.room.save(w);
        self.trans.save(w);
        self.dram.snap_save(w);
        self.stats.save(w);
    }

    fn snap_restore(
        &mut self,
        r: &mut cmd_core::snap::SnapReader<'_>,
    ) -> Result<(), cmd_core::snap::SnapError> {
        use cmd_core::snap::Snap;
        self.array.snap_restore(r)?;
        let req_in: VecDeque<ChildReq> = Snap::load(r)?;
        let msg_in: VecDeque<ChildToParent> = Snap::load(r)?;
        let resp_out: Vec<VecDeque<ParentResp>> = Snap::load(r)?;
        let down_out: Vec<VecDeque<DownReq>> = Snap::load(r)?;
        let uncached_in: VecDeque<UncachedReq> = Snap::load(r)?;
        let uncached_out: Vec<VecDeque<UncachedResp>> = Snap::load(r)?;
        let room: VecDeque<Requester> = Snap::load(r)?;
        let trans: Vec<Trans> = Snap::load(r)?;
        if resp_out.len() != self.resp_out.len()
            || down_out.len() != self.down_out.len()
            || uncached_out.len() != self.uncached_out.len()
        {
            return Err(cmd_core::snap::SnapError::Mismatch(format!(
                "snapshot L2 fan-out ({} children, {} cores) does not match design \
                 ({} children, {} cores)",
                resp_out.len(),
                uncached_out.len(),
                self.resp_out.len(),
                self.uncached_out.len()
            )));
        }
        if trans.len() > self.cfg.max_trans {
            return Err(cmd_core::snap::SnapError::Mismatch(format!(
                "snapshot L2 has {} transactions, design allows {}",
                trans.len(),
                self.cfg.max_trans
            )));
        }
        self.req_in = req_in;
        self.msg_in = msg_in;
        self.resp_out = resp_out;
        self.down_out = down_out;
        self.uncached_in = uncached_in;
        self.uncached_out = uncached_out;
        self.room = room;
        self.trans = trans;
        self.dram.snap_restore(r)?;
        self.stats = Snap::load(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod mesi_tests {
    use super::*;
    use crate::msg::{ChildReq, ChildToParent, Msi};
    use riscy_isa::mem::{SparseMem, DRAM_BASE};

    fn mesi_l2() -> (L2, SparseMem) {
        let cfg = L2Config {
            size_bytes: 4096,
            ways: 2,
            max_trans: 4,
            dram: crate::dram::DramConfig {
                latency: 5,
                max_outstanding: 8,
                cycles_per_line: 1,
            },
            mesi: true,
        };
        (L2::new(cfg, 2, 2), SparseMem::new())
    }

    fn run(l2: &mut L2, mem: &mut SparseMem, from: u64, cycles: u64) -> u64 {
        for now in from..from + cycles {
            l2.tick(now, mem);
        }
        from + cycles
    }

    #[test]
    fn sole_reader_gets_exclusive() {
        let (mut l2, mut mem) = mesi_l2();
        l2.req_in.push_back(ChildReq::GetS {
            child: 0,
            line: DRAM_BASE,
        });
        run(&mut l2, &mut mem, 0, 20);
        let g = l2.resp_out[0].pop_front().expect("grant");
        assert_eq!(g.state, Msi::E, "sole reader gets E under MESI");
    }

    #[test]
    fn second_reader_demotes_exclusive_to_shared() {
        let (mut l2, mut mem) = mesi_l2();
        l2.req_in.push_back(ChildReq::GetS {
            child: 0,
            line: DRAM_BASE,
        });
        run(&mut l2, &mut mem, 0, 20);
        l2.resp_out[0].pop_front().expect("E grant");
        l2.req_in.push_back(ChildReq::GetS {
            child: 1,
            line: DRAM_BASE,
        });
        run(&mut l2, &mut mem, 20, 5);
        let d = l2.down_out[0].pop_front().expect("E owner demoted");
        assert_eq!(d.to, Msi::S);
        // Clean E copy acks without data.
        l2.msg_in.push_back(ChildToParent::DownAck {
            child: 0,
            line: DRAM_BASE,
            data: None,
            to: Msi::S,
        });
        run(&mut l2, &mut mem, 25, 5);
        let g = l2.resp_out[1].pop_front().expect("S grant");
        assert_eq!(g.state, Msi::S, "second reader shares");
    }

    #[test]
    fn msi_mode_never_grants_exclusive() {
        let cfg = L2Config {
            size_bytes: 4096,
            ways: 2,
            max_trans: 4,
            dram: crate::dram::DramConfig {
                latency: 5,
                max_outstanding: 8,
                cycles_per_line: 1,
            },
            mesi: false,
        };
        let mut l2 = L2::new(cfg, 1, 1);
        let mut mem = SparseMem::new();
        l2.req_in.push_back(ChildReq::GetS {
            child: 0,
            line: DRAM_BASE,
        });
        run(&mut l2, &mut mem, 0, 20);
        let g = l2.resp_out[0].pop_front().expect("grant");
        assert_eq!(g.state, Msi::S, "plain MSI grants S even to a sole reader");
    }
}
