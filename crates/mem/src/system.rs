//! The assembled memory system: per-core L1 I/D caches, crossbars, the
//! shared L2, DRAM, and the page-walk crossbar (paper Fig. 11).

use cmd_core::chaos::{FaultEngine, LinkFault};
use riscy_isa::mem::SparseMem;

use crate::cache::{L1Cache, L1Config};
use crate::l2::{L2Config, UncachedReq, UncachedResp, L2};
use crate::msg::{ChildReq, ChildToParent, ParentToChild};
use crate::queue::TimedQueue;

/// Configuration of the whole memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemConfig {
    /// Per-core L1 instruction cache.
    pub l1i: L1Config,
    /// Per-core L1 data cache.
    pub l1d: L1Config,
    /// Shared L2 + DRAM.
    pub l2: L2Config,
    /// One-way crossbar latency in cycles.
    pub xbar_latency: u64,
    /// Additional L2 pipeline latency applied to L2→L1 responses.
    pub l2_pipe_latency: u64,
}

impl Default for MemConfig {
    /// The paper's RiscyOO-B memory system.
    fn default() -> Self {
        MemConfig {
            l1i: L1Config::default(),
            l1d: L1Config::default(),
            l2: L2Config::default(),
            xbar_latency: 2,
            l2_pipe_latency: 8,
        }
    }
}

/// The shared memory system for `n` cores.
///
/// Child-id convention: core `c`'s D cache is child `2c`, its I cache is
/// child `2c + 1`. Instruction fetches are fully coherent, as in the paper.
#[derive(Debug)]
pub struct MemSystem {
    cfg: MemConfig,
    /// Backing physical memory.
    pub mem: SparseMem,
    l1d: Vec<L1Cache>,
    l1i: Vec<L1Cache>,
    /// The shared L2.
    pub l2: L2,
    c2p_req: TimedQueue<ChildReq>,
    c2p_msg: TimedQueue<ChildToParent>,
    /// Single ordered parent→child channel (see [`ParentToChild`]).
    p2c: TimedQueue<(usize, ParentToChild)>,
    walk_req: TimedQueue<UncachedReq>,
    walk_resp: TimedQueue<(usize, UncachedResp)>,
    now: u64,
    chaos: Option<FaultEngine>,
}

/// Pushes `v` onto `q`, first consulting the fault engine: the message may
/// be dropped, delayed, or duplicated. The named `site` keys the
/// deterministic fault decision and appears in the campaign log.
fn chaos_push<T: Clone>(
    chaos: Option<&FaultEngine>,
    q: &mut TimedQueue<T>,
    site: &str,
    now: u64,
    v: T,
) {
    match chaos.and_then(|e| e.link_fault(site, now)) {
        Some(LinkFault::Drop) => {}
        Some(LinkFault::Delay(extra)) => {
            let _ = q.push_delayed(now, extra, v);
        }
        Some(LinkFault::Dup) => {
            // Best effort: the duplicate is silently lost on a full queue.
            let _ = q.push(now, v.clone());
            let _ = q.push(now, v);
        }
        None => {
            let _ = q.push(now, v);
        }
    }
}

impl MemSystem {
    /// Builds the memory system for `num_cores` cores.
    #[must_use]
    pub fn new(cfg: MemConfig, num_cores: usize, mem: SparseMem) -> Self {
        let children = 2 * num_cores;
        MemSystem {
            cfg,
            mem,
            l1d: (0..num_cores)
                .map(|c| L1Cache::new(2 * c, cfg.l1d))
                .collect(),
            l1i: (0..num_cores)
                .map(|c| L1Cache::new(2 * c + 1, cfg.l1i))
                .collect(),
            l2: L2::new(cfg.l2, children, num_cores),
            c2p_req: TimedQueue::new(cfg.xbar_latency, 4096),
            c2p_msg: TimedQueue::new(cfg.xbar_latency, 4096),
            p2c: TimedQueue::new(cfg.xbar_latency + cfg.l2_pipe_latency, 4096),
            walk_req: TimedQueue::new(cfg.xbar_latency, 1024),
            walk_resp: TimedQueue::new(cfg.xbar_latency + cfg.l2_pipe_latency, 1024),
            now: 0,
            chaos: None,
        }
    }

    /// Attaches a fault-injection engine to the interconnect queues.
    ///
    /// Instrumented sites (usable as `FaultPlan` patterns, e.g.
    /// `msg_drop("mem.p2c", rate)` or `msg_delay("mem.*", rate, extra)`):
    ///
    /// * `mem.c2p_req` — L1→L2 cache requests
    /// * `mem.c2p_msg` — L1→L2 coherence messages (writebacks, downgrade acks)
    /// * `mem.p2c` — L2→L1 grants and downgrade requests
    /// * `mem.walk_req` / `mem.walk_resp` — page-walker traffic
    ///
    /// Dropped coherence traffic typically wedges the affected miss, which
    /// surfaces as a cycle-budget error at the SoC level — never a panic.
    pub fn set_chaos(&mut self, engine: &FaultEngine) {
        self.chaos = Some(engine.clone());
    }

    /// Current cycle.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Core `c`'s data cache.
    pub fn dcache(&mut self, core: usize) -> &mut L1Cache {
        &mut self.l1d[core]
    }

    /// Core `c`'s instruction cache.
    pub fn icache(&mut self, core: usize) -> &mut L1Cache {
        &mut self.l1i[core]
    }

    /// Read-only view of core `c`'s data cache.
    #[must_use]
    pub fn dcache_ref(&self, core: usize) -> &L1Cache {
        &self.l1d[core]
    }

    /// Read-only view of core `c`'s instruction cache.
    #[must_use]
    pub fn icache_ref(&self, core: usize) -> &L1Cache {
        &self.l1i[core]
    }

    /// Submits a page-walker PTE load.
    pub fn push_walker_req(&mut self, req: UncachedReq) {
        let now = self.now;
        let chaos = self.chaos.clone();
        chaos_push(chaos.as_ref(), &mut self.walk_req, "mem.walk_req", now, req);
    }

    /// Pops a page-walker PTE response for `core`.
    pub fn pop_walker_resp(&mut self, core: usize) -> Option<UncachedResp> {
        // Only the head is inspected; per-core fairness is not an issue at
        // walker request rates.
        match self.walk_resp.peek_ready(self.now) {
            Some((c, _)) if *c == core => self.walk_resp.pop_ready(self.now).map(|(_, r)| r),
            _ => None,
        }
    }

    /// Advances the entire memory system one cycle.
    pub fn tick(&mut self) {
        let now = self.now;
        // L1s tick and emit.
        let chaos = self.chaos.clone();
        for l1 in self.l1d.iter_mut().chain(self.l1i.iter_mut()) {
            l1.tick(now);
            while let Some(r) = l1.to_parent_req.pop_front() {
                chaos_push(chaos.as_ref(), &mut self.c2p_req, "mem.c2p_req", now, r);
            }
            while let Some(m) = l1.to_parent_msg.pop_front() {
                chaos_push(chaos.as_ref(), &mut self.c2p_msg, "mem.c2p_msg", now, m);
            }
        }
        // Deliver to L2.
        while let Some(r) = self.c2p_req.pop_ready(now) {
            self.l2.req_in.push_back(r);
        }
        while let Some(m) = self.c2p_msg.pop_ready(now) {
            self.l2.msg_in.push_back(m);
        }
        while let Some(w) = self.walk_req.pop_ready(now) {
            self.l2.uncached_in.push_back(w);
        }
        // L2 ticks and emits.
        self.l2.tick(now, &mut self.mem);
        for child in 0..self.l1d.len() * 2 {
            while let Some(r) = self.l2.resp_out[child].pop_front() {
                chaos_push(
                    chaos.as_ref(),
                    &mut self.p2c,
                    "mem.p2c",
                    now,
                    (child, ParentToChild::Grant(r)),
                );
            }
            while let Some(d) = self.l2.down_out[child].pop_front() {
                chaos_push(
                    chaos.as_ref(),
                    &mut self.p2c,
                    "mem.p2c",
                    now,
                    (child, ParentToChild::Down(d)),
                );
            }
        }
        for core in 0..self.l1d.len() {
            while let Some(u) = self.l2.uncached_out[core].pop_front() {
                chaos_push(
                    chaos.as_ref(),
                    &mut self.walk_resp,
                    "mem.walk_resp",
                    now,
                    (core, u),
                );
            }
        }
        // Deliver to L1s, preserving per-child order.
        while let Some((child, m)) = self.p2c.pop_ready(now) {
            self.child_mut(child).from_parent.push_back(m);
        }
        self.now += 1;
    }

    fn child_mut(&mut self, child: usize) -> &mut L1Cache {
        if child.is_multiple_of(2) {
            &mut self.l1d[child / 2]
        } else {
            &mut self.l1i[child / 2]
        }
    }

    /// A one-line-per-cache human-readable summary of hit/miss statistics,
    /// suitable for appending to a scheduler report.
    #[must_use]
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (c, (i1, d1)) in self.l1i.iter().zip(&self.l1d).enumerate() {
            let _ = writeln!(
                out,
                "mem core {c}: l1i {}/{} miss {:.4}  l1d {}/{} miss {:.4}",
                i1.stats.misses,
                i1.stats.accesses(),
                i1.stats.miss_rate(),
                d1.stats.misses,
                d1.stats.accesses(),
                d1.stats.miss_rate(),
            );
        }
        let _ = writeln!(
            out,
            "mem l2: {}/{} miss {:.4}  writebacks {}  downgrades {}",
            self.l2.stats.misses,
            self.l2.stats.accesses(),
            self.l2.stats.miss_rate(),
            self.l2.stats.writebacks,
            self.l2.stats.downgrades,
        );
        out
    }

    /// Reads `bytes` (≤ 8, little-endian) at physical address `addr`
    /// through the coherence hierarchy **without** perturbing it: no LRU
    /// touches, no statistics, no messages. The freshest copy wins — an
    /// L1 D line in M state shadows the L2, which shadows DRAM — so after
    /// a run has quiesced this returns the architectural memory value even
    /// when the line is dirty in some core's cache.
    ///
    /// This is the litmus harness's final-state observation hook; it is
    /// only meaningful when the system is idle ([`MemSystem::is_idle`]),
    /// since an in-flight transaction may hold the line's data in a
    /// message queue that this peek cannot see.
    #[must_use]
    pub fn peek_coherent(&self, addr: u64, bytes: u8) -> u64 {
        use crate::cache::read_from_line;
        use crate::msg::{line_of, Msi};
        let line = line_of(addr);
        for l1 in &self.l1d {
            if let Some((Msi::M, data)) = l1.peek_line(line) {
                return read_from_line(data, addr, bytes);
            }
        }
        if let Some(data) = self.l2.peek_line(line) {
            return read_from_line(data, addr, bytes);
        }
        self.mem.read_le(addr, u64::from(bytes))
    }

    /// Whether every component is quiescent (test helper).
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.l2.is_idle()
            && self.c2p_req.is_empty()
            && self.c2p_msg.is_empty()
            && self.p2c.is_empty()
            && self.l1d.iter().all(L1Cache::is_idle)
            && self.l1i.iter().all(L1Cache::is_idle)
    }

    /// A deterministic fingerprint of the memory configuration, embedded in
    /// snapshots so a restore into a differently shaped system fails with a
    /// structured error instead of silently corrupting state.
    #[must_use]
    pub fn config_digest(&self) -> String {
        format!("cores={} {:?}", self.l1d.len(), self.cfg)
    }

    /// Whether the memory system can be snapshotted. Fault injection keeps
    /// live state inside the chaos engine that snapshots do not capture.
    ///
    /// # Errors
    ///
    /// [`cmd_core::snap::SnapError::Unsupported`] when a fault engine is attached.
    pub fn snapshot_supported(&self) -> Result<(), cmd_core::snap::SnapError> {
        if self.chaos.is_some() {
            return Err(cmd_core::snap::SnapError::Unsupported(
                "memory system has a chaos fault engine attached",
            ));
        }
        Ok(())
    }

    /// Functional-warming fill (fast-forward): makes `line` resident in S
    /// state in core `core`'s L1 (I or D side) and the L2, with the data
    /// read from backing memory. Inclusive and eviction-free: the fill
    /// happens only when both levels already hold the line or have a free
    /// way, so no coherence traffic and no displacement of warmer lines.
    /// Returns whether the line is resident after the call.
    pub fn warm_line(&mut self, line: u64, core: usize, icache: bool) -> bool {
        let l1 = if icache {
            &self.l1i[core]
        } else {
            &self.l1d[core]
        };
        if !l1.warm_room(line) || !self.l2.warm_room(line) {
            return false;
        }
        let data = self.mem.read_line(line);
        let child = if icache { 2 * core + 1 } else { 2 * core };
        let in_l2 = self.l2.warm_insert(line, &data, Some(child));
        let l1 = if icache {
            &mut self.l1i[core]
        } else {
            &mut self.l1d[core]
        };
        let in_l1 = l1.warm_insert(line, &data);
        debug_assert!(in_l2 && in_l1, "warm_room said both levels had room");
        in_l2 && in_l1
    }

    /// Functional-warming fill of the L2 level alone (no L1 copy): used
    /// for the colder portion of the fast-forward recency window, whose
    /// lines would long since have been evicted from the tiny L1s but
    /// still occupy the L2 in a real run. The child's sharer bit is set
    /// anyway: L1s drop S lines silently, so in a real run the directory
    /// still names the old sharer and every later eviction of the line
    /// pays a recall round trip. Warming without the stale bit made
    /// post-handoff evictions unrealistically cheap until the whole L2
    /// had churned. Same eviction-free discipline as
    /// [`MemSystem::warm_line`]. Returns whether the line is resident in
    /// the L2 afterwards.
    pub fn warm_line_l2(&mut self, line: u64, core: usize, icache: bool) -> bool {
        if !self.l2.warm_room(line) {
            return false;
        }
        let data = self.mem.read_line(line);
        let child = if icache { 2 * core + 1 } else { 2 * core };
        self.l2.warm_insert(line, &data, Some(child))
    }
}

impl cmd_core::snap::Snapshot for MemSystem {
    fn snap_save(&self, w: &mut cmd_core::snap::SnapWriter) {
        use cmd_core::snap::Snap;
        self.mem.save(w);
        w.len_prefix(self.l1d.len());
        for l1 in self.l1d.iter().chain(self.l1i.iter()) {
            l1.snap_save(w);
        }
        self.l2.snap_save(w);
        self.c2p_req.snap_save(w);
        self.c2p_msg.snap_save(w);
        self.p2c.snap_save(w);
        self.walk_req.snap_save(w);
        self.walk_resp.snap_save(w);
        w.u64(self.now);
    }

    fn snap_restore(
        &mut self,
        r: &mut cmd_core::snap::SnapReader<'_>,
    ) -> Result<(), cmd_core::snap::SnapError> {
        use cmd_core::snap::Snap;
        self.snapshot_supported()?;
        self.mem = Snap::load(r)?;
        let cores = r.len_prefix()?;
        if cores != self.l1d.len() {
            return Err(cmd_core::snap::SnapError::Mismatch(format!(
                "snapshot has {} cores, design has {}",
                cores,
                self.l1d.len()
            )));
        }
        for l1 in self.l1d.iter_mut().chain(self.l1i.iter_mut()) {
            l1.snap_restore(r)?;
        }
        self.l2.snap_restore(r)?;
        self.c2p_req.snap_restore(r)?;
        self.c2p_msg.snap_restore(r)?;
        self.p2c.snap_restore(r)?;
        self.walk_req.snap_restore(r)?;
        self.walk_resp.snap_restore(r)?;
        self.now = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::{AtomicOp, CoreReq, CoreResp, Msi};
    use riscy_isa::mem::DRAM_BASE;

    fn sys(cores: usize) -> MemSystem {
        let mut mem = SparseMem::new();
        for i in 0..1024 {
            mem.write_u64(DRAM_BASE + 8 * i, i);
        }
        let cfg = MemConfig {
            l2: L2Config {
                dram: crate::dram::DramConfig {
                    latency: 20,
                    max_outstanding: 8,
                    cycles_per_line: 2,
                },
                ..L2Config::default()
            },
            ..MemConfig::default()
        };
        MemSystem::new(cfg, cores, mem)
    }

    /// Runs until the D-cache of `core` produces a response.
    fn wait_resp(s: &mut MemSystem, core: usize, max: u64) -> CoreResp {
        for _ in 0..max {
            let now = s.now();
            if let Some(r) = s.dcache(core).pop_resp(now) {
                return r;
            }
            s.tick();
        }
        panic!("no response within {max} cycles");
    }

    #[test]
    fn load_miss_roundtrip_latency() {
        let mut s = sys(1);
        s.dcache(0)
            .request(CoreReq::Ld {
                tag: 1,
                addr: DRAM_BASE + 16,
                bytes: 8,
            })
            .unwrap();
        let start = s.now();
        let r = wait_resp(&mut s, 0, 500);
        assert_eq!(r, CoreResp::Ld { tag: 1, data: 2 });
        let lat = s.now() - start;
        assert!(lat >= 20, "must include DRAM latency, got {lat}");
        // Second access to the same line hits quickly.
        s.dcache(0)
            .request(CoreReq::Ld {
                tag: 2,
                addr: DRAM_BASE + 24,
                bytes: 8,
            })
            .unwrap();
        let start = s.now();
        let r = wait_resp(&mut s, 0, 50);
        assert_eq!(r, CoreResp::Ld { tag: 2, data: 3 });
        assert!(s.now() - start <= 5, "hit must be fast");
    }

    #[test]
    fn store_and_read_back_through_hierarchy() {
        let mut s = sys(1);
        let line = DRAM_BASE;
        s.dcache(0)
            .request(CoreReq::St { sb_idx: 0, line })
            .unwrap();
        let r = wait_resp(&mut s, 0, 500);
        assert_eq!(r, CoreResp::St { sb_idx: 0 });
        let mut data = [0u8; 64];
        let mut en = [false; 64];
        data[0] = 0xcd;
        en[0] = true;
        s.dcache(0).write_data(line, &data, &en);
        s.dcache(0)
            .request(CoreReq::Ld {
                tag: 9,
                addr: line,
                bytes: 1,
            })
            .unwrap();
        let r = wait_resp(&mut s, 0, 100);
        assert_eq!(r, CoreResp::Ld { tag: 9, data: 0xcd });
    }

    #[test]
    fn coherence_migrates_dirty_line_between_cores() {
        let mut s = sys(2);
        let line = DRAM_BASE + 0x400;
        // Core 0 writes.
        s.dcache(0)
            .request(CoreReq::St { sb_idx: 0, line })
            .unwrap();
        let r = wait_resp(&mut s, 0, 500);
        assert_eq!(r, CoreResp::St { sb_idx: 0 });
        let mut data = [0u8; 64];
        let mut en = [false; 64];
        data[5] = 0x77;
        en[5] = true;
        s.dcache(0).write_data(line, &data, &en);
        assert_eq!(s.dcache_ref(0).line_state(line), Msi::M);
        // Core 1 reads and must see core 0's store.
        s.dcache(1)
            .request(CoreReq::Ld {
                tag: 3,
                addr: line + 5,
                bytes: 1,
            })
            .unwrap();
        let r = wait_resp(&mut s, 1, 500);
        assert_eq!(r, CoreResp::Ld { tag: 3, data: 0x77 });
        // Core 0 is demoted to S.
        assert_eq!(s.dcache_ref(0).line_state(line), Msi::S);
        assert_eq!(s.dcache_ref(1).line_state(line), Msi::S);
    }

    #[test]
    fn write_write_migration() {
        let mut s = sys(2);
        let line = DRAM_BASE + 0x800;
        for core in 0..2 {
            s.dcache(core)
                .request(CoreReq::St {
                    sb_idx: core as u32,
                    line,
                })
                .unwrap();
            let r = wait_resp(&mut s, core, 500);
            assert_eq!(
                r,
                CoreResp::St {
                    sb_idx: core as u32
                }
            );
            let mut data = [0u8; 64];
            let mut en = [false; 64];
            data[core] = 0xa0 + core as u8;
            en[core] = true;
            s.dcache(core).write_data(line, &data, &en);
        }
        assert_eq!(s.dcache_ref(0).line_state(line), Msi::I, "invalidated");
        assert_eq!(s.dcache_ref(1).line_state(line), Msi::M);
        // Core 0 loads back: must see both writes.
        s.dcache(0)
            .request(CoreReq::Ld {
                tag: 1,
                addr: line,
                bytes: 2,
            })
            .unwrap();
        let r = wait_resp(&mut s, 0, 500);
        assert_eq!(
            r,
            CoreResp::Ld {
                tag: 1,
                data: 0xa1a0
            }
        );
    }

    #[test]
    fn amo_counter_across_cores_is_atomic() {
        let mut s = sys(2);
        let addr = DRAM_BASE + 0xc00;
        for round in 0..5u64 {
            for core in 0..2 {
                s.dcache(core)
                    .request(CoreReq::Atomic {
                        tag: 1,
                        addr,
                        bytes: 8,
                        op: AtomicOp::Amo(riscy_isa::inst::AmoOp::Add, 1),
                    })
                    .unwrap();
                let r = wait_resp(&mut s, core, 1000);
                // The fixture initializes this word to its index (0xc00/8).
                let init = 384;
                match r {
                    CoreResp::Atomic { data, .. } => {
                        assert_eq!(data, init + round * 2 + core as u64);
                    }
                    other => panic!("{other:?}"),
                }
            }
        }
    }

    #[test]
    fn lr_sc_broken_by_remote_write() {
        let mut s = sys(2);
        let addr = DRAM_BASE + 0x1000;
        // Core 0: LR.
        s.dcache(0)
            .request(CoreReq::Atomic {
                tag: 1,
                addr,
                bytes: 8,
                op: AtomicOp::Lr,
            })
            .unwrap();
        wait_resp(&mut s, 0, 500);
        // Core 1: store to the same line (invalidates core 0).
        s.dcache(1)
            .request(CoreReq::St {
                sb_idx: 0,
                line: addr,
            })
            .unwrap();
        let r = wait_resp(&mut s, 1, 500);
        assert_eq!(r, CoreResp::St { sb_idx: 0 });
        s.dcache(1).write_data(addr, &[0u8; 64], &[true; 64]);
        // Core 0: SC must fail.
        s.dcache(0)
            .request(CoreReq::Atomic {
                tag: 2,
                addr,
                bytes: 8,
                op: AtomicOp::Sc(5),
            })
            .unwrap();
        let r = wait_resp(&mut s, 0, 500);
        assert_eq!(r, CoreResp::Atomic { tag: 2, data: 1 });
    }

    #[test]
    fn icache_fetch_and_eviction_note_on_remote_write() {
        let mut s = sys(1);
        let line = DRAM_BASE;
        s.icache(0)
            .request(CoreReq::Ld {
                tag: 0,
                addr: line,
                bytes: 8,
            })
            .unwrap();
        for _ in 0..300 {
            let now = s.now();
            if s.icache(0).pop_resp(now).is_some() {
                break;
            }
            s.tick();
        }
        assert_eq!(s.icache_ref(0).line_state(line), Msi::S);
        // D-side write to the same line invalidates the I copy (coherent
        // fetches).
        s.dcache(0)
            .request(CoreReq::St { sb_idx: 0, line })
            .unwrap();
        let r = wait_resp(&mut s, 0, 500);
        assert_eq!(r, CoreResp::St { sb_idx: 0 });
        s.dcache(0).write_data(line, &[1u8; 64], &[true; 64]);
        for _ in 0..50 {
            s.tick();
        }
        assert_eq!(s.icache_ref(0).line_state(line), Msi::I);
        assert!(s.icache(0).evict_notes.contains(&line));
    }

    #[test]
    fn many_outstanding_misses_pipeline() {
        let mut s = sys(1);
        // 8 loads to distinct lines all outstanding at once.
        for i in 0..8u64 {
            s.dcache(0)
                .request(CoreReq::Ld {
                    tag: i as u32,
                    addr: DRAM_BASE + 64 * i,
                    bytes: 8,
                })
                .unwrap();
        }
        let start = s.now();
        let mut got = 0;
        let mut finish = 0;
        while got < 8 {
            let now = s.now();
            while s.dcache(0).pop_resp(now).is_some() {
                got += 1;
                finish = now;
            }
            s.tick();
            assert!(s.now() - start < 1000, "deadlock");
        }
        let total = finish - start;
        // Serial latency would be ≥ 8 × (20 + overhead); overlap must beat it.
        assert!(total < 8 * 25, "misses must overlap: {total}");
    }

    #[test]
    fn peek_coherent_reads_dirty_lines_without_perturbing() {
        let mut s = sys(2);
        let line = DRAM_BASE + 0x400;
        s.dcache(0)
            .request(CoreReq::St { sb_idx: 0, line })
            .unwrap();
        let r = wait_resp(&mut s, 0, 500);
        assert_eq!(r, CoreResp::St { sb_idx: 0 });
        let mut data = [0u8; 64];
        let mut en = [false; 64];
        data[8..16].copy_from_slice(&0xdead_beef_0bad_cafeu64.to_le_bytes());
        for e in &mut en[8..16] {
            *e = true;
        }
        s.dcache(0).write_data(line, &data, &en);
        assert_eq!(s.dcache_ref(0).line_state(line), Msi::M);
        let before = (
            s.dcache_ref(0).stats.hits,
            s.dcache_ref(0).stats.misses,
            s.l2.stats.hits,
            s.l2.stats.misses,
        );
        // The dirty M-state value is visible without any coherence action.
        assert_eq!(s.peek_coherent(line + 8, 8), 0xdead_beef_0bad_cafe);
        // A never-cached address falls through to backing memory.
        assert_eq!(s.peek_coherent(DRAM_BASE + 8 * 7, 8), 7);
        let after = (
            s.dcache_ref(0).stats.hits,
            s.dcache_ref(0).stats.misses,
            s.l2.stats.hits,
            s.l2.stats.misses,
        );
        assert_eq!(before, after, "peek must not touch statistics");
        assert_eq!(s.dcache_ref(0).line_state(line), Msi::M, "state unchanged");
    }

    #[test]
    fn walker_reads_route_through_l2() {
        let mut s = sys(1);
        s.mem.write_u64(DRAM_BASE + 0x2000, 0xfeed);
        s.push_walker_req(UncachedReq {
            core: 0,
            tag: 4,
            addr: DRAM_BASE + 0x2000,
        });
        for _ in 0..300 {
            if let Some(r) = s.pop_walker_resp(0) {
                assert_eq!(
                    r,
                    UncachedResp {
                        tag: 4,
                        data: 0xfeed
                    }
                );
                return;
            }
            s.tick();
        }
        panic!("walker response never arrived");
    }
}
