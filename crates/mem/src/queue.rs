//! Latency-modeling queues used throughout the memory system.

use std::collections::VecDeque;

/// A bounded queue whose entries become visible `latency` cycles after being
/// pushed — the basic latency-insensitive channel between memory-system
/// components.
#[derive(Debug, Clone)]
pub struct TimedQueue<T> {
    q: VecDeque<(u64, T)>,
    latency: u64,
    cap: usize,
}

impl<T> TimedQueue<T> {
    /// Creates a queue with the given delivery latency and capacity.
    #[must_use]
    pub fn new(latency: u64, cap: usize) -> Self {
        TimedQueue {
            q: VecDeque::new(),
            latency,
            cap,
        }
    }

    /// Whether a push would currently succeed.
    #[must_use]
    pub fn can_push(&self) -> bool {
        self.q.len() < self.cap
    }

    /// Enqueues `v` at time `now`; it becomes poppable at `now + latency`.
    ///
    /// # Errors
    ///
    /// Returns `Err(v)` when the queue is full.
    pub fn push(&mut self, now: u64, v: T) -> Result<(), T> {
        if self.q.len() >= self.cap {
            return Err(v);
        }
        self.q.push_back((now + self.latency, v));
        Ok(())
    }

    /// Enqueues `v` at time `now` with `extra` cycles of additional latency
    /// on top of the queue's own — used by fault injection to model
    /// congested or retried messages.
    ///
    /// # Errors
    ///
    /// Returns `Err(v)` when the queue is full.
    pub fn push_delayed(&mut self, now: u64, extra: u64, v: T) -> Result<(), T> {
        if self.q.len() >= self.cap {
            return Err(v);
        }
        self.q.push_back((now + self.latency + extra, v));
        Ok(())
    }

    /// Removes the head if it has arrived by `now`.
    pub fn pop_ready(&mut self, now: u64) -> Option<T> {
        if matches!(self.q.front(), Some((t, _)) if *t <= now) {
            self.q.pop_front().map(|(_, v)| v)
        } else {
            None
        }
    }

    /// Peeks the head if it has arrived by `now`.
    #[must_use]
    pub fn peek_ready(&self, now: u64) -> Option<&T> {
        match self.q.front() {
            Some((t, v)) if *t <= now => Some(v),
            _ => None,
        }
    }

    /// Current occupancy (including in-flight entries).
    #[must_use]
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// How many entries have arrived by `now` (the head may still block
    /// younger arrived entries; this counts them all).
    #[must_use]
    pub fn ready_len(&self, now: u64) -> usize {
        self.q.iter().filter(|(t, _)| *t <= now).count()
    }

    /// Whether the queue holds no entries at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// Iterates over all entries (in-flight included).
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.q.iter().map(|(_, v)| v)
    }

    /// Removes every entry.
    pub fn clear(&mut self) {
        self.q.clear();
    }
}

impl<T: cmd_core::snap::Snap> cmd_core::snap::Snapshot for TimedQueue<T> {
    /// Serializes the occupancy (arrival-time, payload) pairs; latency and
    /// capacity are configuration and stay with the constructed queue.
    fn snap_save(&self, w: &mut cmd_core::snap::SnapWriter) {
        use cmd_core::snap::Snap;
        self.q.save(w);
    }

    fn snap_restore(
        &mut self,
        r: &mut cmd_core::snap::SnapReader<'_>,
    ) -> Result<(), cmd_core::snap::SnapError> {
        use cmd_core::snap::Snap;
        let q: VecDeque<(u64, T)> = Snap::load(r)?;
        if q.len() > self.cap {
            return Err(cmd_core::snap::SnapError::Mismatch(format!(
                "snapshot queue holds {} entries, capacity is {}",
                q.len(),
                self.cap
            )));
        }
        self.q = q;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_respects_latency() {
        let mut q = TimedQueue::new(3, 4);
        q.push(10, 'a').unwrap();
        assert!(q.pop_ready(12).is_none());
        assert_eq!(q.pop_ready(13), Some('a'));
    }

    #[test]
    fn capacity_enforced() {
        let mut q = TimedQueue::new(0, 2);
        q.push(0, 1).unwrap();
        q.push(0, 2).unwrap();
        assert_eq!(q.push(0, 3), Err(3));
        assert!(!q.can_push());
        q.pop_ready(0).unwrap();
        assert!(q.can_push());
    }

    #[test]
    fn fifo_order_preserved() {
        let mut q = TimedQueue::new(1, 8);
        for i in 0..5 {
            q.push(i, i).unwrap();
        }
        let mut out = Vec::new();
        for now in 0..10 {
            while let Some(v) = q.pop_ready(now) {
                out.push(v);
            }
        }
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn zero_latency_visible_same_cycle() {
        let mut q = TimedQueue::new(0, 1);
        q.push(5, 'x').unwrap();
        assert_eq!(q.peek_ready(5), Some(&'x'));
    }
}
