//! Set-associative cache arrays and the non-blocking L1 cache.
//!
//! The L1 follows the paper's interface (§V-B): guarded `req` /
//! `resp_ld` / `resp_st` / `write_data` methods plus a coherence port to the
//! parent L2. It is *non-blocking*: up to `mshrs` line misses may be
//! outstanding while hits continue to be served (the paper's L1s allow 8).

use std::collections::VecDeque;

use riscy_isa::inst::MemWidth;
use riscy_isa::interp::amo_exec;

use crate::msg::{
    line_of, AtomicOp, CacheStats, ChildReq, ChildToParent, CoreReq, CoreResp, DownReq, Line, Msi,
    ParentToChild, LINE_BYTES,
};
use crate::queue::TimedQueue;

/// Geometry of a set-associative array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeom {
    /// Number of sets (power of two).
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
}

impl CacheGeom {
    /// Geometry from a total size in bytes and associativity.
    ///
    /// # Panics
    ///
    /// Panics unless `size_bytes` is a multiple of `ways * 64` and the
    /// resulting set count is a power of two.
    #[must_use]
    pub fn from_size(size_bytes: usize, ways: usize) -> Self {
        let sets = size_bytes / (ways * LINE_BYTES as usize);
        assert!(sets.is_power_of_two() && sets > 0, "bad cache geometry");
        CacheGeom { sets, ways }
    }

    /// Total capacity in bytes.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.sets * self.ways * LINE_BYTES as usize
    }

    fn set_of(&self, line: u64) -> usize {
        ((line / LINE_BYTES) as usize) & (self.sets - 1)
    }
}

/// One way of one set.
#[derive(Debug, Clone)]
pub struct Slot {
    /// Line address held (valid when `state != I`).
    pub line: u64,
    /// MSI state.
    pub state: Msi,
    /// Data.
    pub data: Box<Line>,
    /// LRU timestamp.
    pub lru: u64,
    /// Locked slots may not be evicted or downgraded (store in progress, or
    /// an L2 transaction pending on it).
    pub locked: bool,
    /// Dirty (used by the L2, whose "M" relative to DRAM is this bit).
    pub dirty: bool,
    /// Directory: sharer bitmask (L2 only).
    pub sharers: u64,
    /// Directory: current M owner (L2 only).
    pub owner: Option<usize>,
}

impl Slot {
    fn empty() -> Self {
        Slot {
            line: 0,
            state: Msi::I,
            data: Box::new([0; 64]),
            lru: 0,
            locked: false,
            dirty: false,
            sharers: 0,
            owner: None,
        }
    }
}

/// A set-associative array of [`Slot`]s with LRU replacement.
#[derive(Debug)]
pub struct CacheArray {
    geom: CacheGeom,
    slots: Vec<Slot>,
    tick: u64,
}

impl CacheArray {
    /// Creates an empty array.
    #[must_use]
    pub fn new(geom: CacheGeom) -> Self {
        CacheArray {
            geom,
            slots: (0..geom.sets * geom.ways).map(|_| Slot::empty()).collect(),
            tick: 0,
        }
    }

    /// The array's geometry.
    #[must_use]
    pub fn geom(&self) -> CacheGeom {
        self.geom
    }

    fn set_range(&self, line: u64) -> std::ops::Range<usize> {
        let s = self.geom.set_of(line);
        s * self.geom.ways..(s + 1) * self.geom.ways
    }

    /// Finds the slot holding `line`, if any.
    #[must_use]
    pub fn lookup(&self, line: u64) -> Option<usize> {
        self.set_range(line)
            .find(|&i| self.slots[i].state != Msi::I && self.slots[i].line == line)
    }

    /// Finds `line` and bumps its LRU.
    pub fn lookup_touch(&mut self, line: u64) -> Option<usize> {
        let idx = self.lookup(line)?;
        self.tick += 1;
        self.slots[idx].lru = self.tick;
        Some(idx)
    }

    /// Chooses a victim slot in `line`'s set: an invalid slot if possible,
    /// otherwise the least-recently-used unlocked one.
    #[must_use]
    pub fn victim(&self, line: u64) -> Option<usize> {
        let range = self.set_range(line);
        let mut best: Option<usize> = None;
        for i in range {
            let s = &self.slots[i];
            if s.locked {
                continue;
            }
            if s.state == Msi::I {
                return Some(i);
            }
            if best.is_none_or(|b| s.lru < self.slots[b].lru) {
                best = Some(i);
            }
        }
        best
    }

    /// Direct slot access.
    #[must_use]
    pub fn slot(&self, idx: usize) -> &Slot {
        &self.slots[idx]
    }

    /// Direct mutable slot access.
    pub fn slot_mut(&mut self, idx: usize) -> &mut Slot {
        &mut self.slots[idx]
    }

    /// Installs `line` in slot `idx` with `state` and `data`, resetting
    /// directory/bookkeeping and touching LRU.
    pub fn install(&mut self, idx: usize, line: u64, state: Msi, data: Box<Line>) {
        self.tick += 1;
        let lru = self.tick;
        let s = &mut self.slots[idx];
        s.line = line;
        s.state = state;
        s.data = data;
        s.lru = lru;
        s.locked = false;
        s.dirty = false;
        s.sharers = 0;
        s.owner = None;
    }

    /// Iterates over all valid slots.
    pub fn iter_valid(&self) -> impl Iterator<Item = &Slot> {
        self.slots.iter().filter(|s| s.state != Msi::I)
    }

    /// A free (invalid, unlocked) slot in `line`'s set, if any — used by
    /// functional warming, which must never evict.
    #[must_use]
    pub fn free_slot(&self, line: u64) -> Option<usize> {
        self.set_range(line)
            .find(|&i| self.slots[i].state == Msi::I && !self.slots[i].locked)
    }
}

cmd_core::snap_struct!(Slot {
    line,
    state,
    data,
    lru,
    locked,
    dirty,
    sharers,
    owner,
});

impl cmd_core::snap::Snapshot for CacheArray {
    fn snap_save(&self, w: &mut cmd_core::snap::SnapWriter) {
        use cmd_core::snap::Snap;
        self.slots.save(w);
        w.u64(self.tick);
    }

    fn snap_restore(
        &mut self,
        r: &mut cmd_core::snap::SnapReader<'_>,
    ) -> Result<(), cmd_core::snap::SnapError> {
        use cmd_core::snap::Snap;
        let slots: Vec<Slot> = Snap::load(r)?;
        if slots.len() != self.slots.len() {
            return Err(cmd_core::snap::SnapError::Mismatch(format!(
                "snapshot cache array has {} slots, design has {}",
                slots.len(),
                self.slots.len()
            )));
        }
        self.slots = slots;
        self.tick = r.u64()?;
        Ok(())
    }
}

/// Reads `bytes` little-endian at `addr` from a line buffer.
#[must_use]
pub fn read_from_line(data: &Line, addr: u64, bytes: u8) -> u64 {
    let off = (addr % LINE_BYTES) as usize;
    let mut v = 0u64;
    for i in 0..bytes as usize {
        v |= u64::from(data[off + i]) << (8 * i);
    }
    v
}

/// Writes the low `bytes` of `v` little-endian at `addr` into a line buffer.
pub fn write_to_line(data: &mut Line, addr: u64, bytes: u8, v: u64) {
    let off = (addr % LINE_BYTES) as usize;
    for i in 0..bytes as usize {
        data[off + i] = (v >> (8 * i)) as u8;
    }
}

/// Configuration of an L1 cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L1Config {
    /// Total size in bytes.
    pub size_bytes: usize,
    /// Associativity.
    pub ways: usize,
    /// Maximum outstanding line misses (paper: 8).
    pub mshrs: usize,
    /// Hit latency in cycles (request to response).
    pub hit_latency: u64,
}

impl Default for L1Config {
    /// The paper's RiscyOO-B L1: 32 KB, 8-way, 8 requests.
    fn default() -> Self {
        L1Config {
            size_bytes: 32 * 1024,
            ways: 8,
            mshrs: 8,
            hit_latency: 2,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Mshr {
    line: u64,
    want_m: bool,
}

/// A non-blocking, coherent (MSI child) L1 cache.
///
/// Used both as L1 D (full request set) and L1 I (loads only).
#[derive(Debug)]
pub struct L1Cache {
    /// This cache's child id in the coherence protocol.
    pub child_id: usize,
    cfg: L1Config,
    array: CacheArray,
    /// Waiting room of core requests (capacity = mshrs; replays each tick).
    room: Vec<CoreReq>,
    mshrs: Vec<Mshr>,
    resp_q: TimedQueue<CoreResp>,
    /// Requests to the parent (drained by the crossbar).
    pub to_parent_req: VecDeque<ChildReq>,
    /// Unsolicited messages to the parent (writebacks, acks).
    pub to_parent_msg: VecDeque<ChildToParent>,
    /// Ordered grant/downgrade stream from the parent (filled by the
    /// crossbar). Ordering matters: see [`ParentToChild`].
    pub from_parent: VecDeque<ParentToChild>,
    /// Downgrades deferred because their line was locked.
    deferred_downs: VecDeque<DownReq>,
    /// LR/SC reservation (line address).
    reservation: Option<u64>,
    /// Lines that left the cache (evicted/invalidated) — drained by the TSO
    /// LSQ for `cacheEvict` (paper §V-B).
    pub evict_notes: VecDeque<u64>,
    /// Hit/miss statistics.
    pub stats: CacheStats,
}

impl L1Cache {
    /// Creates an empty L1.
    #[must_use]
    pub fn new(child_id: usize, cfg: L1Config) -> Self {
        L1Cache {
            child_id,
            cfg,
            array: CacheArray::new(CacheGeom::from_size(cfg.size_bytes, cfg.ways)),
            room: Vec::new(),
            mshrs: Vec::new(),
            resp_q: TimedQueue::new(cfg.hit_latency, 64),
            to_parent_req: VecDeque::new(),
            to_parent_msg: VecDeque::new(),
            from_parent: VecDeque::new(),
            deferred_downs: VecDeque::new(),
            reservation: None,
            evict_notes: VecDeque::new(),
            stats: CacheStats::default(),
        }
    }

    /// Whether a new core request can be accepted (paper: "max 8 requests").
    #[must_use]
    pub fn can_accept(&self) -> bool {
        self.room.len() < self.cfg.mshrs
    }

    /// Submits a core request.
    ///
    /// # Errors
    ///
    /// Returns the request back when the cache is full.
    pub fn request(&mut self, req: CoreReq) -> Result<(), CoreReq> {
        if !self.can_accept() {
            return Err(req);
        }
        self.room.push(req);
        Ok(())
    }

    /// Pops a response ready at `now`.
    pub fn pop_resp(&mut self, now: u64) -> Option<CoreResp> {
        self.resp_q.pop_ready(now)
    }

    /// Completes a store: writes the store-buffer data into the locked line
    /// (paper's `writeData`).
    ///
    /// # Panics
    ///
    /// Panics if the line is not present, not M, or not locked — the
    /// protocol guarantees it is between `respSt` and `writeData`.
    pub fn write_data(&mut self, line: u64, data: &Line, byte_en: &[bool; 64]) {
        let idx = self.array.lookup(line).expect("locked line present");
        let slot = self.array.slot_mut(idx);
        assert!(
            slot.state == Msi::M && slot.locked,
            "writeData protocol violation"
        );
        for (i, &en) in byte_en.iter().enumerate() {
            if en {
                slot.data[i] = data[i];
            }
        }
        slot.locked = false;
        slot.dirty = true;
    }

    /// Whether any miss is outstanding (used by fences/drains).
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.room.is_empty() && self.mshrs.is_empty() && self.resp_q.is_empty()
    }

    /// A change-sensitive digest of everything a core-side *guard* can
    /// observe about this cache at `now`: acceptance, response-queue
    /// occupancy, and how many responses have arrived. The fields are
    /// packed exactly (no hashing), so two distinct observable states never
    /// collide. Wakeup substrates compare successive digests to decide
    /// whether sleeping core rules could now make progress.
    #[must_use]
    pub fn resp_digest(&self, now: u64) -> u64 {
        u64::from(self.can_accept())
            | (self.resp_q.ready_len(now).min(0xFF) as u64) << 1
            | (self.resp_q.len().min(0xFF) as u64) << 9
    }

    fn mshr_for(&self, line: u64) -> Option<usize> {
        self.mshrs.iter().position(|m| m.line == line)
    }

    fn start_miss(&mut self, line: u64, want_m: bool) {
        if let Some(i) = self.mshr_for(line) {
            // Upgrade an outstanding GetS to GetM if a store arrived.
            if want_m && !self.mshrs[i].want_m {
                self.mshrs[i].want_m = true;
                // The S grant will arrive; a second GetM request follows.
                self.to_parent_req.push_back(ChildReq::GetM {
                    child: self.child_id,
                    line,
                });
            }
            return;
        }
        if self.mshrs.len() >= self.cfg.mshrs {
            return; // retry next cycle
        }
        self.mshrs.push(Mshr { line, want_m });
        self.to_parent_req.push_back(if want_m {
            ChildReq::GetM {
                child: self.child_id,
                line,
            }
        } else {
            ChildReq::GetS {
                child: self.child_id,
                line,
            }
        });
        self.stats.misses += 1;
    }

    /// One simulation cycle.
    pub fn tick(&mut self, now: u64) {
        self.apply_parent_msgs();
        self.process_room(now);
    }

    fn apply_parent_msgs(&mut self) {
        // Downgrades deferred while a line was locked come first (they are
        // always older than anything still in the channel, and the parent
        // will not send another message for the same line until the ack).
        for _ in 0..self.deferred_downs.len() {
            let d = self.deferred_downs.pop_front().expect("counted");
            self.apply_downgrade(d);
        }
        while let Some(msg) = self.from_parent.pop_front() {
            match msg {
                ParentToChild::Down(d) => self.apply_downgrade(d),
                ParentToChild::Grant(g) => {
                    // An existing S copy upgrading to M keeps its slot.
                    if let Some(idx) = self.array.lookup(g.line) {
                        let slot = self.array.slot_mut(idx);
                        slot.state = slot.state.max(g.state);
                        // M grants carry authoritative data.
                        if g.state == Msi::M {
                            slot.data = g.data;
                        }
                    } else {
                        let Some(vic) = self.array.victim(g.line) else {
                            // All ways locked (rare): retry next cycle.
                            self.from_parent.push_front(ParentToChild::Grant(g));
                            return;
                        };
                        self.evict_slot(vic);
                        self.array.install(vic, g.line, g.state, g.data);
                    }
                    // Retire the MSHR unless it was upgraded and still
                    // awaits M.
                    if let Some(i) = self.mshr_for(g.line) {
                        let done = !self.mshrs[i].want_m || g.state == Msi::M;
                        if done {
                            self.mshrs.swap_remove(i);
                        }
                    }
                }
            }
        }
    }

    fn apply_downgrade(&mut self, d: DownReq) {
        match self.array.lookup(d.line) {
            Some(idx) => {
                let slot = self.array.slot_mut(idx);
                if slot.locked {
                    // A store is mid-flight on this line; answer next cycle.
                    self.deferred_downs.push_back(d);
                    return;
                }
                if slot.state > d.to {
                    let data = if slot.state == Msi::M {
                        Some(slot.data.clone())
                    } else {
                        None // S and E copies are clean
                    };
                    slot.state = d.to;
                    slot.dirty = false;
                    self.stats.downgrades += 1;
                    if d.to == Msi::I {
                        self.evict_notes.push_back(d.line);
                    }
                    if self.reservation == Some(d.line) && d.to == Msi::I {
                        self.reservation = None;
                    }
                    self.to_parent_msg.push_back(ChildToParent::DownAck {
                        child: self.child_id,
                        line: d.line,
                        data,
                        to: d.to,
                    });
                } else {
                    self.to_parent_msg.push_back(ChildToParent::DownAck {
                        child: self.child_id,
                        line: d.line,
                        data: None,
                        to: slot.state,
                    });
                }
            }
            None => {
                // Silently evicted earlier: ack with nothing.
                self.to_parent_msg.push_back(ChildToParent::DownAck {
                    child: self.child_id,
                    line: d.line,
                    data: None,
                    to: Msi::I,
                });
            }
        }
    }

    fn evict_slot(&mut self, idx: usize) {
        let slot = self.array.slot_mut(idx);
        if slot.state == Msi::I {
            return;
        }
        let line = slot.line;
        if slot.state == Msi::M {
            let data = slot.data.clone();
            self.to_parent_msg.push_back(ChildToParent::PutM {
                child: self.child_id,
                line,
                data,
            });
            self.stats.writebacks += 1;
        }
        // S lines are dropped silently (the directory stays conservative).
        let slot = self.array.slot_mut(idx);
        slot.state = Msi::I;
        self.evict_notes.push_back(line);
        if self.reservation == Some(line) {
            self.reservation = None;
        }
    }

    fn process_room(&mut self, now: u64) {
        let mut i = 0;
        while i < self.room.len() {
            if !self.resp_q.can_push() {
                break;
            }
            let req = self.room[i];
            if self.try_serve(now, req) {
                self.room.remove(i);
            } else {
                i += 1;
            }
        }
    }

    /// Attempts to serve one request; returns `true` when completed.
    fn try_serve(&mut self, now: u64, req: CoreReq) -> bool {
        match req {
            CoreReq::Ld { tag, addr, bytes } => {
                let line = line_of(addr);
                match self.array.lookup_touch(line) {
                    Some(idx) => {
                        let slot = self.array.slot(idx);
                        let data = read_from_line(&slot.data, addr, bytes);
                        self.stats.hits += 1;
                        let _ = self.resp_q.push(now, CoreResp::Ld { tag, data });
                        true
                    }
                    None => {
                        self.start_miss(line, false);
                        false
                    }
                }
            }
            CoreReq::St { sb_idx, line } => {
                match self.array.lookup_touch(line) {
                    Some(idx) if self.array.slot(idx).state >= Msi::E => {
                        let slot = self.array.slot_mut(idx);
                        if slot.locked {
                            return false; // one store at a time per line
                        }
                        // MESI: an E copy upgrades to M silently.
                        slot.state = Msi::M;
                        slot.locked = true;
                        self.stats.hits += 1;
                        let _ = self.resp_q.push(now, CoreResp::St { sb_idx });
                        true
                    }
                    _ => {
                        self.start_miss(line, true);
                        false
                    }
                }
            }
            CoreReq::Atomic {
                tag,
                addr,
                bytes,
                op,
            } => {
                let line = line_of(addr);
                // SC with a dead reservation fails without touching memory.
                if let AtomicOp::Sc(_) = op {
                    if self.reservation != Some(line) {
                        self.stats.hits += 1;
                        let _ = self.resp_q.push(now, CoreResp::Atomic { tag, data: 1 });
                        return true;
                    }
                }
                match self.array.lookup_touch(line) {
                    Some(idx) if self.array.slot(idx).state >= Msi::E => {
                        let slot = self.array.slot_mut(idx);
                        if slot.locked {
                            return false;
                        }
                        slot.state = Msi::M; // silent E→M upgrade
                        let old = read_from_line(&slot.data, addr, bytes);
                        let old_ext = if bytes == 4 {
                            old as u32 as i32 as i64 as u64
                        } else {
                            old
                        };
                        let result = match op {
                            AtomicOp::Lr => {
                                self.reservation = Some(line);
                                old_ext
                            }
                            AtomicOp::Sc(v) => {
                                write_to_line(&mut slot.data, addr, bytes, v);
                                slot.dirty = true;
                                self.reservation = None;
                                0
                            }
                            AtomicOp::Amo(aop, v) => {
                                let w = if bytes == 4 { MemWidth::W } else { MemWidth::D };
                                let newv = amo_exec(aop, w, old_ext, v);
                                write_to_line(&mut slot.data, addr, bytes, newv);
                                slot.dirty = true;
                                old_ext
                            }
                        };
                        self.stats.hits += 1;
                        let _ = self
                            .resp_q
                            .push(now, CoreResp::Atomic { tag, data: result });
                        true
                    }
                    _ => {
                        self.start_miss(line, true);
                        false
                    }
                }
            }
        }
    }

    /// Test/debug peek at a line's state.
    #[must_use]
    pub fn line_state(&self, line: u64) -> Msi {
        self.array
            .lookup(line)
            .map_or(Msi::I, |i| self.array.slot(i).state)
    }

    /// Non-intrusive peek at a resident line's state and data (no LRU
    /// touch, no statistics). `None` when the line is not present. Used by
    /// [`MemSystem::peek_coherent`](crate::system::MemSystem::peek_coherent)
    /// to read final memory values through dirty M-state lines after a run.
    #[must_use]
    pub fn peek_line(&self, line: u64) -> Option<(Msi, &Line)> {
        let i = self.array.lookup(line)?;
        let s = self.array.slot(i);
        Some((s.state, &*s.data))
    }
}

impl L1Cache {
    /// Outstanding line misses (live MSHRs) — an observability gauge for
    /// memory-level-parallelism studies.
    #[must_use]
    pub fn mshrs_in_use(&self) -> usize {
        self.mshrs.len()
    }

    /// Debug occupancy: `(room, mshrs, to_req, to_msg, from_resp, from_down, evict_notes, resp_q)`.
    #[must_use]
    pub fn debug_occupancy(&self) -> (usize, usize, usize, usize, usize, usize, usize, usize) {
        (
            self.room.len(),
            self.mshrs.len(),
            self.to_parent_req.len(),
            self.to_parent_msg.len(),
            self.from_parent.len(),
            self.deferred_downs.len(),
            self.evict_notes.len(),
            self.resp_q.len(),
        )
    }

    /// Whether a functional-warming install of `line` can succeed: the line
    /// is already resident or its set has a free way.
    #[must_use]
    pub fn warm_room(&self, line: u64) -> bool {
        self.array.lookup(line).is_some() || self.array.free_slot(line).is_some()
    }

    /// Functional-warming install (fast-forward): places `line` in S state
    /// into a free way, if one exists. Never evicts and emits no coherence
    /// traffic — the warmup driver mirrors the sharer bit in the parent
    /// directory to keep inclusion intact. Returns whether the line is
    /// resident afterwards.
    pub fn warm_insert(&mut self, line: u64, data: &Line) -> bool {
        if self.array.lookup(line).is_some() {
            return true;
        }
        let Some(idx) = self.array.free_slot(line) else {
            return false;
        };
        self.array.install(idx, line, Msi::S, Box::new(*data));
        true
    }
}

cmd_core::snap_struct!(Mshr { line, want_m });

impl cmd_core::snap::Snapshot for L1Cache {
    fn snap_save(&self, w: &mut cmd_core::snap::SnapWriter) {
        use cmd_core::snap::Snap;
        self.array.snap_save(w);
        self.room.save(w);
        self.mshrs.save(w);
        self.resp_q.snap_save(w);
        self.to_parent_req.save(w);
        self.to_parent_msg.save(w);
        self.from_parent.save(w);
        self.deferred_downs.save(w);
        self.reservation.save(w);
        self.evict_notes.save(w);
        self.stats.save(w);
    }

    fn snap_restore(
        &mut self,
        r: &mut cmd_core::snap::SnapReader<'_>,
    ) -> Result<(), cmd_core::snap::SnapError> {
        use cmd_core::snap::Snap;
        self.array.snap_restore(r)?;
        let room: Vec<CoreReq> = Snap::load(r)?;
        let mshrs: Vec<Mshr> = Snap::load(r)?;
        if room.len() > self.cfg.mshrs || mshrs.len() > self.cfg.mshrs {
            return Err(cmd_core::snap::SnapError::Mismatch(format!(
                "snapshot L1 occupancy ({} room, {} mshrs) exceeds configured {} mshrs",
                room.len(),
                mshrs.len(),
                self.cfg.mshrs
            )));
        }
        self.room = room;
        self.mshrs = mshrs;
        self.resp_q.snap_restore(r)?;
        self.to_parent_req = Snap::load(r)?;
        self.to_parent_msg = Snap::load(r)?;
        self.from_parent = Snap::load(r)?;
        self.deferred_downs = Snap::load(r)?;
        self.reservation = Snap::load(r)?;
        self.evict_notes = Snap::load(r)?;
        self.stats = Snap::load(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_from_size() {
        let g = CacheGeom::from_size(32 * 1024, 8);
        assert_eq!(g.sets, 64);
        assert_eq!(g.size_bytes(), 32 * 1024);
    }

    #[test]
    fn array_lookup_and_install() {
        let mut a = CacheArray::new(CacheGeom { sets: 2, ways: 2 });
        assert!(a.lookup(0x1000).is_none());
        let v = a.victim(0x1000).unwrap();
        a.install(v, 0x1000, Msi::S, Box::new([1; 64]));
        assert!(a.lookup(0x1000).is_some());
        // Same set, different line.
        let v2 = a.victim(0x1100).unwrap();
        assert_ne!(v, v2);
    }

    #[test]
    fn lru_victimizes_oldest() {
        let mut a = CacheArray::new(CacheGeom { sets: 1, ways: 2 });
        let v0 = a.victim(0).unwrap();
        a.install(v0, 0, Msi::S, Box::new([0; 64]));
        let v1 = a.victim(64).unwrap();
        a.install(v1, 64, Msi::S, Box::new([0; 64]));
        a.lookup_touch(0); // line 0 is now MRU
        let vic = a.victim(128).unwrap();
        assert_eq!(a.slot(vic).line, 64, "LRU line must be chosen");
    }

    #[test]
    fn locked_slots_never_victims() {
        let mut a = CacheArray::new(CacheGeom { sets: 1, ways: 1 });
        let v = a.victim(0).unwrap();
        a.install(v, 0, Msi::M, Box::new([0; 64]));
        a.slot_mut(v).locked = true;
        assert!(a.victim(64).is_none());
    }

    #[test]
    fn line_read_write_helpers() {
        let mut line = [0u8; 64];
        write_to_line(&mut line, 0x1008, 8, 0x1122_3344_5566_7788);
        assert_eq!(read_from_line(&line, 0x1008, 8), 0x1122_3344_5566_7788);
        assert_eq!(read_from_line(&line, 0x1008, 2), 0x7788);
        write_to_line(&mut line, 0x100c, 1, 0xff);
        assert_eq!(read_from_line(&line, 0x1008, 8), 0x1122_33ff_5566_7788);
    }

    /// Serves grants by hand to unit-test the L1 in isolation.
    fn grant(l1: &mut L1Cache, line: u64, state: Msi, fill: u8) {
        l1.from_parent
            .push_back(ParentToChild::Grant(crate::msg::ParentResp {
                line,
                state,
                data: Box::new([fill; 64]),
            }));
    }

    #[test]
    fn load_miss_then_hit() {
        let mut l1 = L1Cache::new(
            0,
            L1Config {
                size_bytes: 4096,
                ways: 2,
                mshrs: 4,
                hit_latency: 1,
            },
        );
        l1.request(CoreReq::Ld {
            tag: 7,
            addr: 0x1000,
            bytes: 8,
        })
        .unwrap();
        l1.tick(0);
        assert_eq!(l1.stats.misses, 1);
        assert!(matches!(
            l1.to_parent_req.pop_front(),
            Some(ChildReq::GetS { line: 0x1000, .. })
        ));
        grant(&mut l1, 0x1000, Msi::S, 0xab);
        l1.tick(1);
        let r = l1.pop_resp(2).expect("load response");
        assert_eq!(
            r,
            CoreResp::Ld {
                tag: 7,
                data: 0xabab_abab_abab_abab
            }
        );
        // Second load hits.
        l1.request(CoreReq::Ld {
            tag: 8,
            addr: 0x1008,
            bytes: 4,
        })
        .unwrap();
        l1.tick(2);
        assert_eq!(l1.stats.hits, 2);
    }

    #[test]
    fn store_needs_m_then_locks_until_write_data() {
        let mut l1 = L1Cache::new(
            0,
            L1Config {
                size_bytes: 4096,
                ways: 2,
                mshrs: 4,
                hit_latency: 1,
            },
        );
        l1.request(CoreReq::St {
            sb_idx: 3,
            line: 0x2000,
        })
        .unwrap();
        l1.tick(0);
        assert!(matches!(
            l1.to_parent_req.pop_front(),
            Some(ChildReq::GetM { line: 0x2000, .. })
        ));
        grant(&mut l1, 0x2000, Msi::M, 0);
        l1.tick(1);
        assert_eq!(l1.pop_resp(2), Some(CoreResp::St { sb_idx: 3 }));
        // Downgrade while locked must be deferred.
        l1.from_parent.push_back(ParentToChild::Down(DownReq {
            line: 0x2000,
            to: Msi::I,
        }));
        l1.tick(2);
        assert!(
            l1.to_parent_msg.is_empty(),
            "downgrade deferred while locked"
        );
        let mut data = [0u8; 64];
        data[0] = 0x5a;
        let mut en = [false; 64];
        en[0] = true;
        l1.write_data(0x2000, &data, &en);
        l1.tick(3);
        match l1.to_parent_msg.pop_front() {
            Some(ChildToParent::DownAck {
                data: Some(d), to, ..
            }) => {
                assert_eq!(d[0], 0x5a);
                assert_eq!(to, Msi::I);
            }
            other => panic!("expected ack with data, got {other:?}"),
        }
        assert_eq!(l1.line_state(0x2000), Msi::I);
    }

    #[test]
    fn sc_without_reservation_fails_fast() {
        let mut l1 = L1Cache::new(0, L1Config::default());
        l1.request(CoreReq::Atomic {
            tag: 1,
            addr: 0x3000,
            bytes: 8,
            op: AtomicOp::Sc(9),
        })
        .unwrap();
        l1.tick(0);
        assert_eq!(l1.pop_resp(10), Some(CoreResp::Atomic { tag: 1, data: 1 }));
    }

    #[test]
    fn lr_then_sc_succeeds_and_amo_applies() {
        let mut l1 = L1Cache::new(
            0,
            L1Config {
                hit_latency: 0,
                ..L1Config::default()
            },
        );
        l1.request(CoreReq::Atomic {
            tag: 1,
            addr: 0x3000,
            bytes: 8,
            op: AtomicOp::Lr,
        })
        .unwrap();
        l1.tick(0);
        grant(&mut l1, 0x3000, Msi::M, 0);
        l1.tick(1);
        assert_eq!(l1.pop_resp(1), Some(CoreResp::Atomic { tag: 1, data: 0 }));
        l1.request(CoreReq::Atomic {
            tag: 2,
            addr: 0x3000,
            bytes: 8,
            op: AtomicOp::Sc(42),
        })
        .unwrap();
        l1.tick(2);
        assert_eq!(l1.pop_resp(2), Some(CoreResp::Atomic { tag: 2, data: 0 }));
        l1.request(CoreReq::Atomic {
            tag: 3,
            addr: 0x3000,
            bytes: 8,
            op: AtomicOp::Amo(riscy_isa::inst::AmoOp::Add, 8),
        })
        .unwrap();
        l1.tick(3);
        assert_eq!(
            l1.pop_resp(3),
            Some(CoreResp::Atomic { tag: 3, data: 42 }),
            "AMO returns the old value"
        );
        l1.request(CoreReq::Ld {
            tag: 4,
            addr: 0x3000,
            bytes: 8,
        })
        .unwrap();
        l1.tick(4);
        assert_eq!(l1.pop_resp(4), Some(CoreResp::Ld { tag: 4, data: 50 }));
    }

    #[test]
    fn eviction_writes_back_dirty_line() {
        // 1-set, 1-way cache: the second line evicts the first.
        let mut l1 = L1Cache::new(
            0,
            L1Config {
                size_bytes: 64,
                ways: 1,
                mshrs: 2,
                hit_latency: 0,
            },
        );
        l1.request(CoreReq::St {
            sb_idx: 0,
            line: 0x1000,
        })
        .unwrap();
        l1.tick(0);
        grant(&mut l1, 0x1000, Msi::M, 0);
        l1.tick(1);
        assert_eq!(l1.pop_resp(1), Some(CoreResp::St { sb_idx: 0 }));
        let mut data = [7u8; 64];
        data[0] = 7;
        l1.write_data(0x1000, &data, &[true; 64]);
        // Now load a conflicting line.
        l1.request(CoreReq::Ld {
            tag: 1,
            addr: 0x2000,
            bytes: 8,
        })
        .unwrap();
        l1.tick(2);
        grant(&mut l1, 0x2000, Msi::S, 1);
        l1.tick(3);
        assert!(matches!(
            l1.to_parent_msg.pop_front(),
            Some(ChildToParent::PutM { line: 0x1000, .. })
        ));
        assert!(l1.evict_notes.contains(&0x1000), "TSO eviction note");
        assert_eq!(l1.stats.writebacks, 1);
    }
}
