//! DRAM model: fixed latency, bounded outstanding requests, and a
//! line-per-N-cycles bandwidth limit (paper Fig. 12: 120-cycle latency, max
//! 24 requests, 12.8 GB/s at a 2 GHz clock ≈ one 64-byte line per 10
//! cycles).

use std::collections::VecDeque;

use riscy_isa::mem::SparseMem;

use crate::msg::{Line, LINE_BYTES};

/// Configuration of the DRAM model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramConfig {
    /// Access latency in cycles.
    pub latency: u64,
    /// Maximum outstanding requests.
    pub max_outstanding: usize,
    /// Minimum cycles between request issues (bandwidth limit).
    pub cycles_per_line: u64,
}

impl Default for DramConfig {
    /// The paper's memory system: 120 cycles, 24 requests, 12.8 GB/s.
    fn default() -> Self {
        DramConfig {
            latency: 120,
            max_outstanding: 24,
            cycles_per_line: 10,
        }
    }
}

/// A DRAM request.
#[derive(Debug, Clone)]
pub enum DramReq {
    /// Read the line at the (aligned) address.
    Read {
        /// line address
        line: u64,
    },
    /// Write the line.
    Write {
        /// line address
        line: u64,
        /// data to write
        data: Box<Line>,
    },
}

/// A completed DRAM read.
#[derive(Debug, Clone)]
pub struct DramResp {
    /// line address
    pub line: u64,
    /// line contents
    pub data: Box<Line>,
}

/// The DRAM controller model; backing data lives in a [`SparseMem`] supplied
/// at tick time.
#[derive(Debug)]
pub struct Dram {
    cfg: DramConfig,
    queue: VecDeque<DramReq>,
    inflight: VecDeque<(u64, DramReq)>,
    resps: VecDeque<DramResp>,
    next_issue: u64,
    /// Total reads served.
    pub reads: u64,
    /// Total writes served.
    pub writes: u64,
}

impl Dram {
    /// Creates a DRAM model.
    #[must_use]
    pub fn new(cfg: DramConfig) -> Self {
        Dram {
            cfg,
            queue: VecDeque::new(),
            inflight: VecDeque::new(),
            resps: VecDeque::new(),
            next_issue: 0,
            reads: 0,
            writes: 0,
        }
    }

    /// Whether a new request can be accepted.
    #[must_use]
    pub fn can_accept(&self) -> bool {
        self.queue.len() + self.inflight.len() < self.cfg.max_outstanding
    }

    /// Submits a request.
    ///
    /// # Errors
    ///
    /// Returns the request back when the outstanding limit is reached.
    pub fn request(&mut self, req: DramReq) -> Result<(), DramReq> {
        if !self.can_accept() {
            return Err(req);
        }
        debug_assert_eq!(
            match &req {
                DramReq::Read { line } | DramReq::Write { line, .. } => line % LINE_BYTES,
            },
            0
        );
        self.queue.push_back(req);
        Ok(())
    }

    /// Advances one cycle: issues at most one queued request (bandwidth) and
    /// completes arrived ones against `mem`.
    pub fn tick(&mut self, now: u64, mem: &mut SparseMem) {
        if now >= self.next_issue {
            if let Some(req) = self.queue.pop_front() {
                self.inflight.push_back((now + self.cfg.latency, req));
                self.next_issue = now + self.cfg.cycles_per_line;
            }
        }
        while matches!(self.inflight.front(), Some((t, _)) if *t <= now) {
            let (_, req) = self.inflight.pop_front().expect("checked");
            match req {
                DramReq::Read { line } => {
                    self.reads += 1;
                    self.resps.push_back(DramResp {
                        line,
                        data: Box::new(mem.read_line(line)),
                    });
                }
                DramReq::Write { line, data } => {
                    self.writes += 1;
                    mem.write_line(line, &data);
                }
            }
        }
    }

    /// Pops a completed read, if any.
    pub fn pop_resp(&mut self) -> Option<DramResp> {
        self.resps.pop_front()
    }
}

cmd_core::snap_enum!(DramReq {
    0 => Read { line },
    1 => Write { line, data },
});

cmd_core::snap_struct!(DramResp { line, data });

impl cmd_core::snap::Snapshot for Dram {
    fn snap_save(&self, w: &mut cmd_core::snap::SnapWriter) {
        use cmd_core::snap::Snap;
        self.queue.save(w);
        self.inflight.save(w);
        self.resps.save(w);
        w.u64(self.next_issue);
        w.u64(self.reads);
        w.u64(self.writes);
    }

    fn snap_restore(
        &mut self,
        r: &mut cmd_core::snap::SnapReader<'_>,
    ) -> Result<(), cmd_core::snap::SnapError> {
        use cmd_core::snap::Snap;
        self.queue = Snap::load(r)?;
        self.inflight = Snap::load(r)?;
        self.resps = Snap::load(r)?;
        self.next_issue = r.u64()?;
        self.reads = r.u64()?;
        self.writes = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use riscy_isa::mem::DRAM_BASE;

    #[test]
    fn read_latency_modeled() {
        let mut mem = SparseMem::new();
        mem.write_u64(DRAM_BASE, 0x42);
        let mut d = Dram::new(DramConfig {
            latency: 10,
            max_outstanding: 4,
            cycles_per_line: 1,
        });
        d.request(DramReq::Read { line: DRAM_BASE }).unwrap();
        for now in 0..10 {
            d.tick(now, &mut mem);
            assert!(d.pop_resp().is_none(), "too early at {now}");
        }
        d.tick(10, &mut mem);
        let r = d.pop_resp().expect("arrived");
        assert_eq!(r.line, DRAM_BASE);
        assert_eq!(r.data[0], 0x42);
    }

    #[test]
    fn bandwidth_limits_issue_rate() {
        let mut mem = SparseMem::new();
        let mut d = Dram::new(DramConfig {
            latency: 5,
            max_outstanding: 8,
            cycles_per_line: 10,
        });
        for i in 0..3 {
            d.request(DramReq::Read {
                line: DRAM_BASE + 64 * i,
            })
            .unwrap();
        }
        let mut completion_times = Vec::new();
        for now in 0..60 {
            d.tick(now, &mut mem);
            if d.pop_resp().is_some() {
                completion_times.push(now);
            }
        }
        assert_eq!(completion_times.len(), 3);
        assert!(completion_times[1] - completion_times[0] >= 10);
        assert!(completion_times[2] - completion_times[1] >= 10);
    }

    #[test]
    fn outstanding_limit_enforced() {
        let mut d = Dram::new(DramConfig {
            latency: 100,
            max_outstanding: 2,
            cycles_per_line: 1,
        });
        d.request(DramReq::Read { line: 0 }).unwrap();
        d.request(DramReq::Read { line: 64 }).unwrap();
        assert!(d.request(DramReq::Read { line: 128 }).is_err());
    }

    #[test]
    fn writes_reach_memory() {
        let mut mem = SparseMem::new();
        let mut d = Dram::new(DramConfig {
            latency: 1,
            max_outstanding: 4,
            cycles_per_line: 1,
        });
        let mut data = Box::new([0u8; 64]);
        data[7] = 0xaa;
        d.request(DramReq::Write {
            line: DRAM_BASE,
            data,
        })
        .unwrap();
        for now in 0..3 {
            d.tick(now, &mut mem);
        }
        assert_eq!(mem.read_u8(DRAM_BASE + 7), 0xaa);
    }
}
