//! TLBs and hardware page walking.
//!
//! Reproduces the paper's two TLB microarchitectures:
//!
//! * **RiscyOO-B** — both L1 and L2 TLBs *block* on a miss: one outstanding
//!   miss, and an L1 D TLB miss blocks the memory pipeline.
//! * **RiscyOO-T+** — non-blocking: up to 4 concurrent L1 D TLB misses with
//!   hit-under-miss, up to 2 concurrent L2 TLB misses, plus a **split
//!   translation cache** (24 fully-associative entries per page-walk level,
//!   after Barr et al.) that lets walks skip levels.
//!
//! The paper measures this change at +29% average performance (2× on astar)
//! — `riscy-bench`'s `fig15_tlb_opts` regenerates that comparison.

use std::collections::VecDeque;

use cmd_core::guard::{Guarded, Stall};
use riscy_isa::csr::Priv;
use riscy_isa::vm::{self, Access, PageFault, Translation};

use crate::l2::{UncachedReq, UncachedResp};

/// A cached translation (one page of any size).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbEntry {
    /// Base VA of the page.
    pub va_base: u64,
    /// Base PA of the page.
    pub pa_base: u64,
    /// log2 of the page size (12, 21, or 30).
    pub page_shift: u32,
    /// Leaf PTE (for permission checks).
    pub pte: u64,
    lru: u64,
}

impl TlbEntry {
    fn from_translation(va: u64, t: &Translation) -> Self {
        let shift = 12 + 9 * t.level as u32;
        let mask = (1u64 << shift) - 1;
        TlbEntry {
            va_base: va & !mask,
            pa_base: t.pa & !mask,
            page_shift: shift,
            pte: t.pte,
            lru: 0,
        }
    }

    fn matches(&self, va: u64) -> bool {
        let mask = !((1u64 << self.page_shift) - 1);
        va & mask == self.va_base
    }

    /// Translate a VA within this page and check permissions.
    fn translate(&self, va: u64, access: Access, priv_mode: Priv) -> Result<u64, PageFault> {
        if permits(self.pte, access, priv_mode) {
            let off = va & ((1u64 << self.page_shift) - 1);
            Ok(self.pa_base | off)
        } else {
            Err(PageFault { va, access })
        }
    }
}

fn permits(pte_val: u64, access: Access, priv_mode: Priv) -> bool {
    use riscy_isa::vm::pte;
    let user_page = pte_val & pte::U != 0;
    match priv_mode {
        Priv::U if !user_page => return false,
        Priv::S if user_page => return false,
        _ => {}
    }
    let ok = match access {
        Access::Fetch => pte_val & pte::X != 0,
        Access::Load => pte_val & pte::R != 0,
        Access::Store => pte_val & pte::W != 0,
    };
    ok && pte_val & pte::A != 0 && (access != Access::Store || pte_val & pte::D != 0)
}

/// A fully-associative LRU TLB (the paper's 32-entry L1 I/D TLBs).
#[derive(Debug, Clone)]
pub struct Tlb {
    entries: Vec<TlbEntry>,
    capacity: usize,
    tick: u64,
    /// Lookup hits.
    pub hits: u64,
    /// Lookup misses.
    pub misses: u64,
}

impl Tlb {
    /// Creates an empty TLB with `capacity` entries.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Tlb {
            entries: Vec::with_capacity(capacity),
            capacity,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Same-cycle lookup: `None` = miss; `Some(Err)` = permission fault.
    pub fn lookup(
        &mut self,
        va: u64,
        access: Access,
        priv_mode: Priv,
    ) -> Option<Result<u64, PageFault>> {
        self.tick += 1;
        let tick = self.tick;
        match self.entries.iter_mut().find(|e| e.matches(va)) {
            Some(e) => {
                e.lru = tick;
                self.hits += 1;
                Some(e.translate(va, access, priv_mode))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Peek without statistics or LRU effects.
    #[must_use]
    pub fn probe(&self, va: u64) -> Option<&TlbEntry> {
        self.entries.iter().find(|e| e.matches(va))
    }

    /// Inserts a translation (evicting LRU if full).
    pub fn fill(&mut self, va: u64, t: &Translation) {
        if self.probe(va).is_some() {
            return;
        }
        let mut e = TlbEntry::from_translation(va, t);
        self.tick += 1;
        e.lru = self.tick;
        if self.entries.len() < self.capacity {
            self.entries.push(e);
        } else if let Some(victim) = self.entries.iter_mut().min_by_key(|e| e.lru) {
            *victim = e;
        }
    }

    /// Flushes every entry (`sfence.vma`).
    pub fn flush(&mut self) {
        self.entries.clear();
    }

    /// Current occupancy.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the TLB holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Misses per lookup, or 0 when idle.
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// A set-associative L2 TLB (the paper's 2048-entry, 4-way). Caches only
/// 4 KiB translations; superpages live in the L1 TLBs.
#[derive(Debug, Clone)]
pub struct L2Tlb {
    sets: usize,
    ways: usize,
    entries: Vec<Option<TlbEntry>>,
    tick: u64,
    lrus: Vec<u64>,
    /// Lookup hits.
    pub hits: u64,
    /// Lookup misses.
    pub misses: u64,
}

impl L2Tlb {
    /// Creates an L2 TLB with `entries` total entries and `ways`
    /// associativity.
    ///
    /// # Panics
    ///
    /// Panics unless `entries / ways` is a power of two.
    #[must_use]
    pub fn new(entries: usize, ways: usize) -> Self {
        let sets = entries / ways;
        assert!(sets.is_power_of_two(), "bad L2 TLB geometry");
        L2Tlb {
            sets,
            ways,
            entries: vec![None; entries],
            tick: 0,
            lrus: vec![0; entries],
            hits: 0,
            misses: 0,
        }
    }

    fn set_of(&self, va: u64) -> usize {
        ((va >> 12) as usize) & (self.sets - 1)
    }

    /// Looks up a 4 KiB translation.
    pub fn lookup(&mut self, va: u64) -> Option<TlbEntry> {
        self.tick += 1;
        let s = self.set_of(va);
        for w in 0..self.ways {
            let i = s * self.ways + w;
            if let Some(e) = &self.entries[i] {
                if e.matches(va) {
                    self.lrus[i] = self.tick;
                    self.hits += 1;
                    return Some(*e);
                }
            }
        }
        self.misses += 1;
        None
    }

    /// Inserts a 4 KiB translation; larger pages are ignored (held only in
    /// the L1 TLBs).
    pub fn fill(&mut self, va: u64, t: &Translation) {
        if t.level != 0 {
            return;
        }
        let s = self.set_of(va);
        self.tick += 1;
        let mut victim = s * self.ways;
        for w in 0..self.ways {
            let i = s * self.ways + w;
            match &self.entries[i] {
                None => {
                    victim = i;
                    break;
                }
                Some(e) if e.matches(va) => return,
                Some(_) if self.lrus[i] < self.lrus[victim] => victim = i,
                Some(_) => {}
            }
        }
        let mut e = TlbEntry::from_translation(va, t);
        e.lru = self.tick;
        self.entries[victim] = Some(e);
        self.lrus[victim] = self.tick;
    }

    /// Flushes every entry.
    pub fn flush(&mut self) {
        self.entries.iter_mut().for_each(|e| *e = None);
    }

    /// Misses per lookup, or 0 when idle.
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// Split translation cache: per-level pointer caches that let a walk skip
/// levels (Barr et al., cited by the paper for RiscyOO-T+).
#[derive(Debug, Clone)]
pub struct WalkCache {
    /// Maps vpn2 → level-1 table PPN.
    l1_ptrs: Vec<(u64, u64, u64)>, // (key, ppn, lru)
    /// Maps (vpn2, vpn1) → level-0 table PPN.
    l0_ptrs: Vec<(u64, u64, u64)>,
    capacity: usize,
    tick: u64,
}

impl WalkCache {
    /// Creates a walk cache with `capacity` entries per level (paper: 24).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        WalkCache {
            l1_ptrs: Vec::new(),
            l0_ptrs: Vec::new(),
            capacity,
            tick: 0,
        }
    }

    fn key1(va: u64) -> u64 {
        (va >> 30) & 0x1ff
    }
    fn key0(va: u64) -> u64 {
        (va >> 21) & 0x3_ffff
    }

    /// Deepest starting point for a walk of `va`: `(level, table_ppn)`.
    /// Level 2 means start from the root.
    pub fn best_start(&mut self, va: u64, root_ppn: u64) -> (usize, u64) {
        self.tick += 1;
        let t = self.tick;
        if let Some(e) = self.l0_ptrs.iter_mut().find(|e| e.0 == Self::key0(va)) {
            e.2 = t;
            return (0, e.1);
        }
        if let Some(e) = self.l1_ptrs.iter_mut().find(|e| e.0 == Self::key1(va)) {
            e.2 = t;
            return (1, e.1);
        }
        (2, root_ppn)
    }

    /// Records a pointer PTE discovered at `level` during a walk of `va`.
    pub fn record(&mut self, va: u64, level: usize, next_table_ppn: u64) {
        self.tick += 1;
        let t = self.tick;
        let (list, key) = match level {
            2 => (&mut self.l1_ptrs, Self::key1(va)),
            1 => (&mut self.l0_ptrs, Self::key0(va)),
            _ => return,
        };
        if let Some(e) = list.iter_mut().find(|e| e.0 == key) {
            e.1 = next_table_ppn;
            e.2 = t;
            return;
        }
        if list.len() >= self.capacity {
            if let Some(i) = (0..list.len()).min_by_key(|&i| list[i].2) {
                list.swap_remove(i);
            }
        }
        list.push((key, next_table_ppn, t));
    }

    /// Flushes both levels.
    pub fn flush(&mut self) {
        self.l1_ptrs.clear();
        self.l0_ptrs.clear();
    }
}

/// Result of a completed page walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkResult {
    /// Client tag.
    pub tag: u64,
    /// The walked VA.
    pub va: u64,
    /// Outcome.
    pub result: Result<Translation, PageFault>,
}

#[derive(Debug, Clone, Copy)]
struct WalkState {
    tag: u64,
    va: u64,
    access: Access,
    priv_mode: Priv,
    level: usize,
    table_ppn: u64,
    outstanding: bool,
}

/// The hardware page walker: issues uncached PTE loads to the L2 cache
/// (paper Fig. 11's page-walk crossbar) and supports configurable
/// concurrency.
#[derive(Debug)]
pub struct PageWalker {
    core: usize,
    max_walks: usize,
    walks: Vec<WalkState>,
    cache: Option<WalkCache>,
    results: VecDeque<WalkResult>,
    next_tag: u64,
    /// PTE loads to the L2 (drained by the crossbar).
    pub to_l2: VecDeque<UncachedReq>,
    /// PTE data from the L2 (filled by the crossbar).
    pub from_l2: VecDeque<UncachedResp>,
    /// Completed walks.
    pub walks_done: u64,
    /// Total PTE loads issued (walk-cache savings show up here).
    pub pte_loads: u64,
}

impl PageWalker {
    /// Creates a walker for `core` with at most `max_walks` concurrent walks
    /// and an optional translation cache.
    #[must_use]
    pub fn new(core: usize, max_walks: usize, cache: Option<WalkCache>) -> Self {
        PageWalker {
            core,
            max_walks,
            walks: Vec::new(),
            cache,
            results: VecDeque::new(),
            next_tag: 0,
            to_l2: VecDeque::new(),
            from_l2: VecDeque::new(),
            walks_done: 0,
            pte_loads: 0,
        }
    }

    /// Whether a new walk can start.
    #[must_use]
    pub fn can_start(&self) -> bool {
        self.walks.len() < self.max_walks
    }

    /// Begins a walk; `tag` identifies it to the client.
    ///
    /// # Errors
    ///
    /// Stalls when the walker is at its concurrency limit.
    pub fn start(
        &mut self,
        tag: u64,
        va: u64,
        root_ppn: u64,
        access: Access,
        priv_mode: Priv,
    ) -> Guarded<()> {
        if !self.can_start() {
            return Err(Stall::new("walker at concurrency limit"));
        }
        if !vm::va_canonical(va) {
            self.results.push_back(WalkResult {
                tag,
                va,
                result: Err(PageFault { va, access }),
            });
            return Ok(());
        }
        let (level, table_ppn) = match &mut self.cache {
            Some(c) => c.best_start(va, root_ppn),
            None => (2, root_ppn),
        };
        self.walks.push(WalkState {
            tag,
            va,
            access,
            priv_mode,
            level,
            table_ppn,
            outstanding: false,
        });
        Ok(())
    }

    /// One cycle: issue PTE loads and consume arrived PTEs.
    pub fn tick(&mut self) {
        // Consume responses.
        while let Some(resp) = self.from_l2.pop_front() {
            let Some(wi) = self
                .walks
                .iter()
                .position(|w| w.outstanding && w.tag == resp.tag)
            else {
                continue;
            };
            self.process_pte(wi, resp.data);
        }
        // Issue loads for walks without an outstanding PTE read.
        for i in 0..self.walks.len() {
            if !self.walks[i].outstanding {
                let w = self.walks[i];
                let vpn = vm::vpns(w.va);
                let pte_pa = (w.table_ppn << 12) + vpn[w.level] * 8;
                self.to_l2.push_back(UncachedReq {
                    core: self.core,
                    tag: w.tag,
                    addr: pte_pa,
                });
                self.pte_loads += 1;
                self.walks[i].outstanding = true;
            }
        }
    }

    fn process_pte(&mut self, wi: usize, pte_val: u64) {
        use riscy_isa::vm::pte;
        let w = self.walks[wi];
        let fault = PageFault {
            va: w.va,
            access: w.access,
        };
        let finish = |walker: &mut Self, wi: usize, result: Result<Translation, PageFault>| {
            let w = walker.walks.swap_remove(wi);
            walker.walks_done += 1;
            walker.results.push_back(WalkResult {
                tag: w.tag,
                va: w.va,
                result,
            });
        };
        if pte_val & pte::V == 0 {
            finish(self, wi, Err(fault));
            return;
        }
        let is_leaf = pte_val & (pte::R | pte::W | pte::X) != 0;
        if !is_leaf {
            if w.level == 0 {
                finish(self, wi, Err(fault));
                return;
            }
            let next = pte_val >> 10;
            if let Some(c) = &mut self.cache {
                c.record(w.va, w.level, next);
            }
            self.walks[wi].level -= 1;
            self.walks[wi].table_ppn = next;
            self.walks[wi].outstanding = false;
            return;
        }
        // Leaf: check alignment and permissions.
        if !permits(pte_val, w.access, w.priv_mode) {
            finish(self, wi, Err(fault));
            return;
        }
        let ppn = pte_val >> 10;
        let align_mask = (1u64 << (9 * w.level)) - 1;
        if ppn & align_mask != 0 {
            finish(self, wi, Err(fault));
            return;
        }
        let shift = 12 + 9 * w.level as u32;
        let pa = ((ppn >> (9 * w.level)) << shift) | (w.va & ((1 << shift) - 1));
        finish(
            self,
            wi,
            Ok(Translation {
                pa,
                pte: pte_val,
                level: w.level,
                steps: 3 - w.level,
            }),
        );
    }

    /// Pops a completed walk.
    pub fn pop_result(&mut self) -> Option<WalkResult> {
        self.results.pop_front()
    }

    /// Allocates a fresh client tag.
    pub fn alloc_tag(&mut self) -> u64 {
        self.next_tag += 1;
        self.next_tag
    }

    /// Flushes the translation cache (`sfence.vma`).
    pub fn flush(&mut self) {
        if let Some(c) = &mut self.cache {
            c.flush();
        }
    }
}

cmd_core::snap_struct!(TlbEntry {
    va_base,
    pa_base,
    page_shift,
    pte,
    lru,
});

impl cmd_core::snap::Snapshot for Tlb {
    fn snap_save(&self, w: &mut cmd_core::snap::SnapWriter) {
        use cmd_core::snap::Snap;
        self.entries.save(w);
        w.u64(self.tick);
        w.u64(self.hits);
        w.u64(self.misses);
    }

    fn snap_restore(
        &mut self,
        r: &mut cmd_core::snap::SnapReader<'_>,
    ) -> Result<(), cmd_core::snap::SnapError> {
        use cmd_core::snap::Snap;
        let entries: Vec<TlbEntry> = Snap::load(r)?;
        if entries.len() > self.capacity {
            return Err(cmd_core::snap::SnapError::Mismatch(format!(
                "snapshot TLB holds {} entries, capacity is {}",
                entries.len(),
                self.capacity
            )));
        }
        self.entries = entries;
        self.tick = r.u64()?;
        self.hits = r.u64()?;
        self.misses = r.u64()?;
        Ok(())
    }
}

impl cmd_core::snap::Snapshot for L2Tlb {
    fn snap_save(&self, w: &mut cmd_core::snap::SnapWriter) {
        use cmd_core::snap::Snap;
        self.entries.save(w);
        self.lrus.save(w);
        w.u64(self.tick);
        w.u64(self.hits);
        w.u64(self.misses);
    }

    fn snap_restore(
        &mut self,
        r: &mut cmd_core::snap::SnapReader<'_>,
    ) -> Result<(), cmd_core::snap::SnapError> {
        use cmd_core::snap::Snap;
        let entries: Vec<Option<TlbEntry>> = Snap::load(r)?;
        let lrus: Vec<u64> = Snap::load(r)?;
        if entries.len() != self.entries.len() || lrus.len() != self.lrus.len() {
            return Err(cmd_core::snap::SnapError::Mismatch(format!(
                "snapshot L2 TLB geometry ({} entries) differs from design ({})",
                entries.len(),
                self.entries.len()
            )));
        }
        self.entries = entries;
        self.lrus = lrus;
        self.tick = r.u64()?;
        self.hits = r.u64()?;
        self.misses = r.u64()?;
        Ok(())
    }
}

impl cmd_core::snap::Snapshot for WalkCache {
    fn snap_save(&self, w: &mut cmd_core::snap::SnapWriter) {
        use cmd_core::snap::Snap;
        self.l1_ptrs.save(w);
        self.l0_ptrs.save(w);
        w.u64(self.tick);
    }

    fn snap_restore(
        &mut self,
        r: &mut cmd_core::snap::SnapReader<'_>,
    ) -> Result<(), cmd_core::snap::SnapError> {
        use cmd_core::snap::Snap;
        let l1: Vec<(u64, u64, u64)> = Snap::load(r)?;
        let l0: Vec<(u64, u64, u64)> = Snap::load(r)?;
        if l1.len() > self.capacity || l0.len() > self.capacity {
            return Err(cmd_core::snap::SnapError::Mismatch(
                "snapshot walk cache exceeds capacity".into(),
            ));
        }
        self.l1_ptrs = l1;
        self.l0_ptrs = l0;
        self.tick = r.u64()?;
        Ok(())
    }
}

cmd_core::snap_struct!(WalkResult { tag, va, result });

cmd_core::snap_struct!(WalkState {
    tag,
    va,
    access,
    priv_mode,
    level,
    table_ppn,
    outstanding,
});

impl cmd_core::snap::Snapshot for PageWalker {
    fn snap_save(&self, w: &mut cmd_core::snap::SnapWriter) {
        use cmd_core::snap::Snap;
        self.walks.save(w);
        w.bool(self.cache.is_some());
        if let Some(c) = &self.cache {
            c.snap_save(w);
        }
        self.results.save(w);
        w.u64(self.next_tag);
        self.to_l2.save(w);
        self.from_l2.save(w);
        w.u64(self.walks_done);
        w.u64(self.pte_loads);
    }

    fn snap_restore(
        &mut self,
        r: &mut cmd_core::snap::SnapReader<'_>,
    ) -> Result<(), cmd_core::snap::SnapError> {
        use cmd_core::snap::Snap;
        let walks: Vec<WalkState> = Snap::load(r)?;
        if walks.len() > self.max_walks {
            return Err(cmd_core::snap::SnapError::Mismatch(
                "snapshot walker exceeds concurrency limit".into(),
            ));
        }
        self.walks = walks;
        let has_cache = r.bool()?;
        match (&mut self.cache, has_cache) {
            (Some(c), true) => c.snap_restore(r)?,
            (None, false) => {}
            _ => {
                return Err(cmd_core::snap::SnapError::Mismatch(
                    "walk-cache presence differs between snapshot and design".into(),
                ))
            }
        }
        self.results = Snap::load(r)?;
        self.next_tag = r.u64()?;
        self.to_l2 = Snap::load(r)?;
        self.from_l2 = Snap::load(r)?;
        self.walks_done = r.u64()?;
        self.pte_loads = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use riscy_isa::vm::{make_leaf, make_pointer, pte};

    const RWX: u64 = pte::R | pte::W | pte::X | pte::A | pte::D;

    fn translation_4k(va: u64, ppn: u64) -> Translation {
        Translation {
            pa: (ppn << 12) | (va & 0xfff),
            pte: make_leaf(ppn, RWX),
            level: 0,
            steps: 3,
        }
    }

    #[test]
    fn tlb_hit_after_fill() {
        let mut t = Tlb::new(4);
        assert!(t.lookup(0x5000, Access::Load, Priv::S).is_none());
        t.fill(0x5000, &translation_4k(0x5000, 0x80));
        let pa = t.lookup(0x5abc, Access::Load, Priv::S).unwrap().unwrap();
        assert_eq!(pa, (0x80 << 12) | 0xabc);
        assert_eq!(t.hits, 1);
        assert_eq!(t.misses, 1);
    }

    #[test]
    fn tlb_lru_eviction() {
        let mut t = Tlb::new(2);
        t.fill(0x1000, &translation_4k(0x1000, 1));
        t.fill(0x2000, &translation_4k(0x2000, 2));
        t.lookup(0x1000, Access::Load, Priv::S); // make 0x1000 MRU
        t.fill(0x3000, &translation_4k(0x3000, 3));
        assert!(t.probe(0x1000).is_some(), "MRU survives");
        assert!(t.probe(0x2000).is_none(), "LRU evicted");
    }

    #[test]
    fn tlb_permission_fault_on_hit() {
        let mut t = Tlb::new(2);
        let ro = Translation {
            pa: 0x8000,
            pte: make_leaf(8, pte::R | pte::A),
            level: 0,
            steps: 3,
        };
        t.fill(0x8000, &ro);
        assert!(t.lookup(0x8000, Access::Load, Priv::S).unwrap().is_ok());
        assert!(t.lookup(0x8000, Access::Store, Priv::S).unwrap().is_err());
    }

    #[test]
    fn superpage_entry_spans_2mb() {
        let mut t = Tlb::new(2);
        let two_mb = Translation {
            pa: 0x4000_0000,
            pte: make_leaf(0x4000_0000 >> 12, RWX),
            level: 1,
            steps: 2,
        };
        t.fill(0x4000_0000, &two_mb);
        assert!(t
            .lookup(0x4000_0000 + 0x12_3456, Access::Load, Priv::S)
            .is_some());
    }

    #[test]
    fn l2_tlb_set_associative_fill() {
        let mut l2 = L2Tlb::new(64, 4);
        for i in 0..5u64 {
            // All map to the same set (stride = sets * 4K = 16 * 4K).
            let va = i * 16 * 4096;
            l2.fill(va, &translation_4k(va, 0x100 + i));
        }
        // 4 ways: one of the five was evicted.
        let present = (0..5u64)
            .filter(|i| l2.lookup(i * 16 * 4096).is_some())
            .count();
        assert_eq!(present, 4);
    }

    #[test]
    fn walk_cache_skips_levels() {
        let mut wc = WalkCache::new(4);
        assert_eq!(wc.best_start(0x4000_0000, 99), (2, 99));
        wc.record(0x4000_0000, 2, 7); // level-2 pointer → level-1 table
        assert_eq!(wc.best_start(0x4000_0123, 99), (1, 7));
        wc.record(0x4000_0000, 1, 8); // level-1 pointer → level-0 table
        assert_eq!(wc.best_start(0x4000_0456, 99), (0, 8));
        // Different gigabyte region: no help.
        assert_eq!(wc.best_start(0x8000_0000, 99), (2, 99));
    }

    /// Drives the walker against an in-memory page table.
    fn run_walk(
        walker: &mut PageWalker,
        ptes: &std::collections::HashMap<u64, u64>,
        va: u64,
        root: u64,
    ) -> WalkResult {
        let tag = walker.alloc_tag();
        walker.start(tag, va, root, Access::Load, Priv::S).unwrap();
        for _ in 0..20 {
            walker.tick();
            while let Some(req) = walker.to_l2.pop_front() {
                let data = *ptes.get(&req.addr).unwrap_or(&0);
                walker
                    .from_l2
                    .push_back(UncachedResp { tag: req.tag, data });
            }
            if let Some(r) = walker.pop_result() {
                return r;
            }
        }
        panic!("walk did not complete");
    }

    #[test]
    fn walker_three_level_walk_and_cache_reuse() {
        let mut ptes = std::collections::HashMap::new();
        ptes.insert(1u64 << 12, make_pointer(2));
        ptes.insert(2u64 << 12, make_pointer(3));
        ptes.insert(3u64 << 12, make_leaf(0x80, RWX));
        ptes.insert((3u64 << 12) + 8, make_leaf(0x81, RWX));

        let mut w = PageWalker::new(0, 2, Some(WalkCache::new(8)));
        let r = run_walk(&mut w, &ptes, 0x0000_0123, 1);
        assert_eq!(r.result.unwrap().pa, (0x80 << 12) | 0x123);
        let first_loads = w.pte_loads;
        assert_eq!(first_loads, 3);

        // Second walk in the same 2 MiB region: walk cache skips to level 0.
        let r2 = run_walk(&mut w, &ptes, 0x0000_1040, 1);
        assert_eq!(r2.result.unwrap().pa, (0x81 << 12) | 0x40);
        assert_eq!(w.pte_loads - first_loads, 1, "only the leaf PTE is read");
    }

    #[test]
    fn walker_faults_on_invalid() {
        let ptes = std::collections::HashMap::new();
        let mut w = PageWalker::new(0, 1, None);
        let r = run_walk(&mut w, &ptes, 0x9000, 1);
        assert!(r.result.is_err());
    }

    #[test]
    fn walker_concurrency_limit() {
        let mut w = PageWalker::new(0, 2, None);
        assert!(w.start(1, 0x1000, 1, Access::Load, Priv::S).is_ok());
        assert!(w.start(2, 0x2000, 1, Access::Load, Priv::S).is_ok());
        assert!(w.start(3, 0x3000, 1, Access::Load, Priv::S).is_err());
    }

    #[test]
    fn walker_noncanonical_faults_immediately() {
        let mut w = PageWalker::new(0, 1, None);
        w.start(5, 1 << 45, 1, Access::Load, Priv::S).unwrap();
        let r = w.pop_result().unwrap();
        assert!(r.result.is_err());
        assert!(w.can_start(), "no walk slot consumed");
    }
}
