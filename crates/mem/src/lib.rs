//! # riscy-mem — the coherent memory substrate
//!
//! Everything below the core in the paper's SoC (Fig. 9 load-store unit
//! periphery and Fig. 11 multiprocessor): non-blocking L1 caches, a shared
//! inclusive L2 with a directory-based MSI protocol, crossbars, a DRAM
//! model, TLBs, and hardware page walkers with a split translation cache.
//!
//! * [`msg`] — protocol message types;
//! * [`queue`] — latency-modeling channels;
//! * [`cache`] — cache arrays and the non-blocking L1;
//! * [`l2`] — the shared L2 (line-blocked transactions, directory);
//! * [`dram`] — latency/bandwidth-limited DRAM;
//! * [`tlb`] — L1/L2 TLBs, page walker, walk cache;
//! * [`system`] — the assembled [`system::MemSystem`].
//!
//! Modeling level: these components expose latency-insensitive guarded
//! FIFO interfaces (the paper's composition style) and advance with a
//! per-cycle `tick`. The intra-cycle atomicity machinery of `cmd-core` is
//! reserved for the processor core, where cross-module atomicity is the
//! correctness problem the paper highlights.

pub mod cache;
pub mod dram;
pub mod l2;
pub mod msg;
pub mod queue;
pub mod system;
pub mod tlb;
