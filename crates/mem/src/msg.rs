//! Coherence-protocol and cache-interface message types.
//!
//! The protocol is the directory-based MSI of the paper (§V-D, the protocol
//! formally verified by Vijayaraghavan et al.): child L1 caches hold lines
//! in M/S/I; the inclusive shared L2 is the parent and keeps a directory of
//! sharers and owners.

/// A 64-byte cache line of data.
pub type Line = [u8; 64];

/// Bytes per cache line.
pub const LINE_BYTES: u64 = 64;

/// The line-aligned address containing `addr`.
#[must_use]
pub fn line_of(addr: u64) -> u64 {
    addr & !(LINE_BYTES - 1)
}

/// Stable states of a line in a child (L1) cache. `E` (exclusive-clean)
/// exists only when the parent runs the MESI extension (paper §V-D: "it
/// should not be difficult to extend the MSI protocol to a MESI
/// protocol"); under plain MSI it is never granted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Msi {
    /// Invalid.
    #[default]
    I,
    /// Shared (read-only).
    S,
    /// Exclusive (sole clean copy; may be silently upgraded to M).
    E,
    /// Modified (exclusive, dirty).
    M,
}

/// Requests from an L1 (child) to the L2 (parent).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChildReq {
    /// Request the line in S (read permission).
    GetS {
        /// requesting child id
        child: usize,
        /// line address
        line: u64,
    },
    /// Request the line in M (write permission).
    GetM {
        /// requesting child id
        child: usize,
        /// line address
        line: u64,
    },
}

impl ChildReq {
    /// The line this request concerns.
    #[must_use]
    pub fn line(&self) -> u64 {
        match *self {
            ChildReq::GetS { line, .. } | ChildReq::GetM { line, .. } => line,
        }
    }

    /// The requesting child.
    #[must_use]
    pub fn child(&self) -> usize {
        match *self {
            ChildReq::GetS { child, .. } | ChildReq::GetM { child, .. } => child,
        }
    }

    /// Whether this asks for M.
    #[must_use]
    pub fn wants_m(&self) -> bool {
        matches!(self, ChildReq::GetM { .. })
    }
}

/// Unsolicited messages from an L1 to the L2 (no response expected).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChildToParent {
    /// Voluntary writeback of a modified line (eviction).
    PutM {
        /// evicting child
        child: usize,
        /// line address
        line: u64,
        /// the dirty data
        data: Box<Line>,
    },
    /// Response to a downgrade request; carries data if the line was M.
    DownAck {
        /// acknowledging child
        child: usize,
        /// line address
        line: u64,
        /// dirty data when downgrading from M
        data: Option<Box<Line>>,
        /// the state the child now holds
        to: Msi,
    },
}

/// Downgrade requests from the L2 to an L1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DownReq {
    /// line address
    pub line: u64,
    /// the maximum state the child may keep (S or I)
    pub to: Msi,
}

/// Response from the L2 granting a child request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParentResp {
    /// line address
    pub line: u64,
    /// granted state (S or M)
    pub state: Msi,
    /// line data
    pub data: Box<Line>,
}

/// Core-side request to the L1 data cache (paper §V-B "L1 D Cache" methods).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreReq {
    /// Load `bytes` at `addr`; `tag` identifies the LQ entry.
    Ld {
        /// client tag (load-queue index)
        tag: u32,
        /// physical byte address
        addr: u64,
        /// access size in bytes (1/2/4/8)
        bytes: u8,
    },
    /// Acquire M for the line; `sb_idx` identifies the store-buffer entry.
    St {
        /// store-buffer index
        sb_idx: u32,
        /// line address
        line: u64,
    },
    /// Atomic op at commit: load-reserve, store-conditional, or AMO.
    Atomic {
        /// client tag
        tag: u32,
        /// physical byte address
        addr: u64,
        /// access size in bytes (4/8)
        bytes: u8,
        /// the operation
        op: AtomicOp,
    },
}

/// The atomic operations the L1 D executes at commit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AtomicOp {
    /// Load-reserve: load and set the reservation.
    Lr,
    /// Store-conditional of the value; responds 0 on success, 1 on failure.
    Sc(u64),
    /// Read-modify-write; the closure index selects the ALU op in the
    /// client (value computed by the cache using `riscy_isa::interp::amo_exec`).
    Amo(riscy_isa::inst::AmoOp, u64),
}

/// L1 D cache responses to the core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreResp {
    /// Load data (zero-extended raw bytes).
    Ld {
        /// client tag
        tag: u32,
        /// raw little-endian value
        data: u64,
    },
    /// The line for this store-buffer entry is now in M and locked until
    /// `write_data` (paper: `respSt`).
    St {
        /// store-buffer index
        sb_idx: u32,
    },
    /// Atomic op completed.
    Atomic {
        /// client tag
        tag: u32,
        /// result (old value for AMO/LR; 0/1 for SC)
        data: u64,
    },
}

/// Statistics kept by each cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests that hit.
    pub hits: u64,
    /// Requests that missed.
    pub misses: u64,
    /// Lines written back.
    pub writebacks: u64,
    /// Downgrades received (L1) or issued (L2).
    pub downgrades: u64,
}

impl CacheStats {
    /// Total requests observed (hits + misses).
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Misses per access, or 0 when idle.
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// Hits per access, or 0 when idle.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

cmd_core::snap_enum!(Msi {
    0 => I,
    1 => S,
    2 => E,
    3 => M,
});

cmd_core::snap_enum!(ChildReq {
    0 => GetS { child, line },
    1 => GetM { child, line },
});

cmd_core::snap_enum!(ChildToParent {
    0 => PutM { child, line, data },
    1 => DownAck { child, line, data, to },
});

cmd_core::snap_struct!(DownReq { line, to });

cmd_core::snap_struct!(ParentResp { line, state, data });

cmd_core::snap_enum!(CoreReq {
    0 => Ld { tag, addr, bytes },
    1 => St { sb_idx, line },
    2 => Atomic { tag, addr, bytes, op },
});

cmd_core::snap_enum!(AtomicOp {
    0 => Lr,
    1 => Sc(v),
    2 => Amo(op, v),
});

cmd_core::snap_enum!(CoreResp {
    0 => Ld { tag, data },
    1 => St { sb_idx },
    2 => Atomic { tag, data },
});

cmd_core::snap_struct!(CacheStats {
    hits,
    misses,
    writebacks,
    downgrades,
});

cmd_core::snap_enum!(ParentToChild {
    0 => Grant(g),
    1 => Down(d),
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_alignment() {
        assert_eq!(line_of(0x1234), 0x1200);
        assert_eq!(line_of(0x1240), 0x1240);
        assert_eq!(line_of(0x123f), 0x1200);
    }

    #[test]
    fn child_req_accessors() {
        let r = ChildReq::GetM {
            child: 2,
            line: 0x80,
        };
        assert_eq!(r.line(), 0x80);
        assert_eq!(r.child(), 2);
        assert!(r.wants_m());
        assert!(!ChildReq::GetS { child: 0, line: 0 }.wants_m());
    }

    #[test]
    fn miss_rate_computation() {
        let s = CacheStats {
            hits: 90,
            misses: 10,
            ..CacheStats::default()
        };
        assert!((s.miss_rate() - 0.1).abs() < 1e-12);
        assert_eq!(CacheStats::default().miss_rate(), 0.0);
    }
}

/// A message from the parent to a child, carried on a single *ordered*
/// channel per child: a downgrade sent after a grant must not overtake it,
/// or two children could transiently both hold M (the classic protocol
/// race the verified-protocol structure forbids).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParentToChild {
    /// A grant for an outstanding GetS/GetM.
    Grant(ParentResp),
    /// A downgrade request.
    Down(DownReq),
}
