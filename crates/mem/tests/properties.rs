//! Property-style tests of the memory substrate: TLB-vs-walk agreement,
//! queue timing, and cache-hierarchy equivalence with flat memory under
//! random request streams — randomized with the in-tree deterministic PRNG
//! (each loop iteration reproduces from its printed seed).

use cmd_core::rng::SplitMix64;
use riscy_isa::csr::Priv;
use riscy_isa::mem::{SparseMem, DRAM_BASE};
use riscy_isa::vm::{self, make_leaf, make_pointer, pte, Access};
use riscy_mem::msg::{CoreReq, CoreResp};
use riscy_mem::queue::TimedQueue;
use riscy_mem::system::{MemConfig, MemSystem};
use riscy_mem::tlb::Tlb;
use std::collections::HashMap;

/// A TLB filled from walks translates exactly as the walk does, for every
/// offset within a page.
#[test]
fn tlb_agrees_with_walk() {
    for seed in 0..60u64 {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let ppns: Vec<u64> = (0..rng.range_usize(4, 16))
            .map(|_| rng.range_u64(1, 0x1000))
            .collect();
        let probe_off = rng.below(4096);

        let mut mem: HashMap<u64, u64> = HashMap::new();
        mem.insert(1 << 12, make_pointer(2));
        mem.insert(2 << 12, make_pointer(3));
        let flags = pte::R | pte::W | pte::A | pte::D;
        for (i, ppn) in ppns.iter().enumerate() {
            mem.insert((3 << 12) + 8 * i as u64, make_leaf(*ppn, flags));
        }
        let mut tlb = Tlb::new(ppns.len());
        for (i, _) in ppns.iter().enumerate() {
            let va = (i as u64) << 12;
            let t = vm::walk_sv39(1, va, Access::Load, Priv::S, |pa| {
                *mem.get(&pa).unwrap_or(&0)
            })
            .expect("mapped");
            tlb.fill(va, &t);
        }
        for (i, ppn) in ppns.iter().enumerate() {
            let va = ((i as u64) << 12) | probe_off;
            let via_tlb = tlb
                .lookup(va, Access::Load, Priv::S)
                .expect("filled")
                .expect("permits loads");
            let via_walk = vm::walk_sv39(1, va, Access::Load, Priv::S, |pa| {
                *mem.get(&pa).unwrap_or(&0)
            })
            .unwrap()
            .pa;
            assert_eq!(via_tlb, via_walk, "seed {seed}");
            assert_eq!(via_tlb, (*ppn << 12) | probe_off, "seed {seed}");
        }
    }
}

/// TimedQueue delivers in FIFO order, never before `latency` cycles.
#[test]
fn timed_queue_orders_and_delays() {
    for seed in 0..100u64 {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let latency = rng.below(10);
        let pushes: Vec<u32> = (0..rng.range_usize(1, 32))
            .map(|_| rng.next_u64() as u32)
            .collect();

        let mut q = TimedQueue::new(latency, pushes.len());
        for (t, v) in pushes.iter().enumerate() {
            q.push(t as u64, *v).unwrap();
        }
        // Nothing may be delivered before the first entry's due time.
        if latency > 0 {
            assert!(
                q.pop_ready(latency.saturating_sub(1)).is_none(),
                "seed {seed}"
            );
        }
        let mut out = Vec::new();
        let mut now = 0;
        while out.len() < pushes.len() {
            while let Some(v) = q.pop_ready(now) {
                out.push(v);
            }
            now += 1;
            assert!(
                now < pushes.len() as u64 + latency + 2,
                "seed {seed}: delivery overdue"
            );
        }
        assert_eq!(out, pushes, "seed {seed}");
    }
}

/// One serialized random request stream through the full cache hierarchy
/// must behave exactly like flat memory.
#[derive(Debug, Clone, Copy)]
enum MemOp {
    Load { off: u64, bytes: u8 },
    Store { off: u64, val: u64 },
}

fn mem_op(rng: &mut SplitMix64) -> MemOp {
    if rng.chance(0.5) {
        let bytes = *rng.pick(&[1u8, 2, 4, 8]);
        let off = rng.below(0x4000);
        MemOp::Load {
            off: off & !(u64::from(bytes) - 1),
            bytes,
        }
    } else {
        MemOp::Store {
            off: rng.below(0x4000) & !7,
            val: rng.next_u64(),
        }
    }
}

#[test]
fn hierarchy_equals_flat_memory_serialized() {
    for seed in 0..24u64 {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let ops: Vec<MemOp> = (0..rng.range_usize(1, 60))
            .map(|_| mem_op(&mut rng))
            .collect();

        let mut flat = SparseMem::new();
        let mut sys = MemSystem::new(MemConfig::default(), 1, SparseMem::new());
        for (i, op) in ops.iter().enumerate() {
            match *op {
                MemOp::Load { off, bytes } => {
                    let addr = DRAM_BASE + off;
                    sys.dcache(0)
                        .request(CoreReq::Ld {
                            tag: i as u32,
                            addr,
                            bytes,
                        })
                        .unwrap();
                    let mut got = None;
                    for _ in 0..2000 {
                        let now = sys.now();
                        if let Some(CoreResp::Ld { data, .. }) = sys.dcache(0).pop_resp(now) {
                            got = Some(data);
                            break;
                        }
                        sys.tick();
                    }
                    let expect = flat.read_le(addr, u64::from(bytes));
                    assert_eq!(got, Some(expect), "seed {seed}: load @{addr:#x}");
                }
                MemOp::Store { off, val } => {
                    let addr = DRAM_BASE + off;
                    let line = addr & !63;
                    sys.dcache(0)
                        .request(CoreReq::St { sb_idx: 0, line })
                        .unwrap();
                    let mut granted = false;
                    for _ in 0..2000 {
                        let now = sys.now();
                        if let Some(CoreResp::St { .. }) = sys.dcache(0).pop_resp(now) {
                            granted = true;
                            break;
                        }
                        sys.tick();
                    }
                    assert!(granted, "seed {seed}");
                    let mut data = [0u8; 64];
                    let mut en = [false; 64];
                    let o = (addr - line) as usize;
                    for k in 0..8 {
                        data[o + k] = (val >> (8 * k)) as u8;
                        en[o + k] = true;
                    }
                    sys.dcache(0).write_data(line, &data, &en);
                    flat.write_le(addr, 8, val);
                }
            }
        }
    }
}
